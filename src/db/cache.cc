#include "db/cache.h"

namespace harmony::db {

void BucketCache::resize(double capacity_mb) {
  capacity_mb_ = capacity_mb;
  evict_until_fits(0.0);
}

bool BucketCache::lookup_or_insert(int relation, int32_t bucket,
                                   double bucket_mb) {
  Key key{relation, bucket};
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Move to front.
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return true;
  }
  ++misses_;
  if (bucket_mb > capacity_mb_) return false;  // cannot ever fit
  evict_until_fits(bucket_mb);
  lru_.emplace_front(key, bucket_mb);
  entries_[key] = lru_.begin();
  used_mb_ += bucket_mb;
  return false;
}

void BucketCache::evict_until_fits(double needed_mb) {
  while (!lru_.empty() && used_mb_ + needed_mb > capacity_mb_) {
    auto& [key, mb] = lru_.back();
    used_mb_ -= mb;
    entries_.erase(key);
    lru_.pop_back();
  }
  if (used_mb_ < 0) used_mb_ = 0;
}

void BucketCache::clear() {
  lru_.clear();
  entries_.clear();
  used_mb_ = 0;
}

}  // namespace harmony::db
