// Client-side transport over the Harmony TCP protocol. Synchronous
// request/response with pushed UPDATE frames collected along the way
// (and on explicit pump() calls), mirroring the prototype's I/O event
// handler + buffered variables design.
//
// Registrations use protocol v2, so the server issues a session token;
// when the connection later dies mid-call (server restart, network
// blip), the transport reconnects with bounded exponential backoff,
// RESUMEs the session — the server replays the current configuration,
// preserving harmony_wait_for_update semantics — and retries the
// failed request once.
#pragma once

#include <map>

#include "client/transport.h"
#include "common/rng.h"
#include "net/framing.h"
#include "net/protocol.h"
#include "net/tcp.h"

namespace harmony::net {

struct ReconnectPolicy {
  int max_attempts = 5;        // 0 disables reconnection entirely
  int initial_backoff_ms = 50; // grows per attempt (decorrelated)...
  int max_backoff_ms = 1000;   // ...up to this ceiling
  // Decorrelated jitter (sleep = min(cap, uniform[base, 3*prev])): a
  // swarm of clients orphaned by one failover spreads its reconnect
  // storm instead of hammering the new primary in lockstep. Off = the
  // old deterministic doubling (tests that count sleeps rely on it).
  bool jitter = true;
  // Jitter seed; 0 draws one from the system clock and this object's
  // address. Fixed seeds make backoff sequences reproducible.
  uint64_t jitter_seed = 0;
};

// One server address a transport may (re)connect to. With several
// endpoints the transport fails over: a refused or not_primary endpoint
// advances the cursor, so clients follow the lease across promotions.
struct Endpoint {
  std::string host;
  uint16_t port = 0;
};

class TcpTransport : public client::Transport {
 public:
  TcpTransport() = default;

  Status connect(const std::string& host, uint16_t port);
  // HA form: tries the endpoints in order until one accepts; later
  // reconnects resume from the endpoint that last worked.
  Status connect(std::vector<Endpoint> endpoints);
  bool connected() const { return fd_.valid(); }
  void set_reconnect_policy(ReconnectPolicy policy) { policy_ = policy; }

  // Token issued by the server at registration (empty before the first
  // register_app or against a v1-only server).
  const std::string& session_token() const { return session_token_; }

  // client::Transport:
  Result<core::InstanceId> register_app(const std::string& script) override;
  Status unregister(core::InstanceId id) override;
  Status subscribe(core::InstanceId id,
                   UpdateHandler handler) override;
  Result<std::string> get_variable(core::InstanceId id,
                                   const std::string& name) override;

  // Reads whatever frames are available without blocking and dispatches
  // UPDATEs; with wait=true blocks for at least one frame. Call this
  // from the application's polling loop.
  Status pump(bool wait = false);

  // Asks the server for an adaptation pass (demo/tooling).
  Status request_reevaluation();

  // Reports observed external load on a node ({LOAD}, §4.3); any
  // connected client or monitoring agent may call it.
  Status report_load(const std::string& hostname, int concurrent_tasks);

  // Operator steering ({SET}, §7): force `bundle` of instance `id`
  // onto `option`, bypassing the objective but not resource matching.
  Status set_option(core::InstanceId id, const std::string& bundle,
                    const std::string& option);

  // Live grow/shrink ({RESIZE}): move `bundle`'s parallelism variable
  // to `workers` — one of the application's declared degrees — while
  // the application runs. The new assignment arrives as ordinary
  // UPDATE frames.
  Status resize(core::InstanceId id, const std::string& bundle,
                double workers);

  // Drops the socket without any goodbye (crash-safe teardown; the
  // server synthesizes the DEPART or parks the session).
  void close();

 private:
  // Sends a request and reads until OK/ERR, dispatching UPDATE frames
  // encountered in between. With retry=true, a transport failure
  // triggers reconnect+RESUME and one retransmission; a REGISTER is
  // only retransmitted when the resumed session proves the server
  // never applied it.
  Result<Message> call(const Message& request, bool retry = true);
  Result<Message> call_once(const Message& request);
  Result<Message> read_message(bool wait);
  void dispatch_update(const Message& message);
  static bool transport_failure(ErrorCode code) {
    return code == ErrorCode::kTransport || code == ErrorCode::kClosed ||
           code == ErrorCode::kIo;
  }
  // {ERR not_primary <hint>}: the endpoint is a standby. Retryable —
  // the client advances to the next endpoint (adopting the hint when
  // given) instead of surfacing the error.
  static bool not_primary_error(const Message& reply) {
    return reply.verb == "ERR" && !reply.args.empty() &&
           reply.args[0] == "not_primary";
  }
  // Bounded-backoff reconnect followed by RESUME of the session.
  Status reconnect_and_resume();
  // Bounded-backoff reconnect with no session to resume (pre-REGISTER
  // failover to another endpoint).
  Status reconnect_fresh();
  // One backoff sleep; advances prev_backoff_ms_ (decorrelated jitter
  // or plain doubling per the policy).
  void backoff_sleep();
  void reset_backoff() { prev_backoff_ms_ = 0; }
  // Steers the endpoint cursor at a not_primary refusal: adopt the
  // hinted primary when the hint parses, else advance round-robin.
  void aim_at_hint(const Message& reply);
  const Endpoint& current_endpoint() const {
    return endpoints_[endpoint_cursor_ % endpoints_.size()];
  }

  Fd fd_;
  FrameBuffer inbound_;
  std::vector<Endpoint> endpoints_;
  size_t endpoint_cursor_ = 0;
  std::string session_token_;
  ReconnectPolicy policy_;
  Rng jitter_rng_;
  bool jitter_seeded_ = false;
  int prev_backoff_ms_ = 0;
  // Ids this transport saw a REGISTER reply for (minus unregisters).
  // Compared against the ids RESUME returns to detect a REGISTER that
  // the server applied but whose reply was lost with the connection —
  // retransmitting it would register a duplicate instance.
  std::vector<core::InstanceId> registered_ids_;
  // Instance ids of the session as reported by the last successful
  // RESUME reply.
  std::vector<core::InstanceId> resumed_ids_;
  std::map<core::InstanceId, UpdateHandler> handlers_;
  // True while a RESUME reply is being drained: UPDATE frames arriving
  // then are the server's configuration replay, counted separately.
  bool resuming_ = false;
  // Updates that arrived before any handler was installed (the server
  // pushes the initial snapshot during REGISTER, before the client
  // library subscribes). Replayed on the first subscribe().
  std::vector<std::pair<std::string, std::string>> undelivered_;
};

}  // namespace harmony::net
