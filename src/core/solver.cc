#include "core/solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "core/binding.h"
#include "core/optimizer.h"
#include "core/perf_model.h"
#include "metric/telemetry.h"

namespace harmony::core {

namespace {

// Relative acceptance epsilon: a move must beat the incumbent by more
// than accumulated float noise, or local search could cycle forever on
// ties.
double accept_margin(double objective) {
  return std::max(1e-12, std::fabs(objective) * 1e-12);
}

}  // namespace

// Working set for one improvement pass. Holds the candidate plan as a
// delta over live state: a PoolOverlay (capacity *and* contention view
// — trial allocations are installed on it before scoring, so its
// effective_load is the trial's planned contention) and per-entry
// (choice, allocation, prediction) mirrors. Live SystemState is only
// written by commit_live(), and only when at least one strictly
// improving move was accepted.
class SolverPass {
 public:
  SolverPass(Optimizer& opt, const SolverConfig& config, SolverStats& stats,
             SystemState& state, double now, uint64_t seed,
             std::chrono::steady_clock::time_point deadline,
             const std::vector<std::vector<Solver::Previous>>& previous)
      : opt_(opt),
        config_(config),
        stats_(stats),
        state_(state),
        now_(now),
        overlay_(state.pool.get()),
        rng_(seed) {
    // Reserve a slice of the budget for commit + bookkeeping so the
    // whole decision (solver included) lands within budget_ms.
    auto reserve = std::chrono::microseconds(static_cast<int64_t>(
        std::max(config_.budget_ms * 100.0, 1000.0)));
    deadline_ = deadline - reserve;
  }

  Status run(const std::vector<std::vector<Solver::Previous>>& previous,
             std::vector<Decision>& decisions, double* improvement,
             double* improvement_bp, bool* budget_exhausted, uint64_t* rounds);

 private:
  // One bundle of the plan. Starts as a mirror of the live (greedy)
  // configuration and drifts as moves are accepted.
  struct Entry {
    InstanceState* instance = nullptr;
    BundleState* bundle = nullptr;
    size_t inst_idx = 0;
    bool movable = false;    // eligible for moves (not granularity-held)
    bool uses_load = false;  // current option's model reads contention
    bool prev_configured = false;
    OptionChoice prev_choice;  // pre-pass config, prices friction
    OptionChoice choice;
    cluster::Allocation allocation;
    double pred = 0.0;      // predicted time under the plan
    double friction = 0.0;  // friction vs prev_choice under the plan
    std::vector<OptionChoice> candidates;
  };

  // A proposed reconfiguration of one entry within a trial.
  struct Change {
    size_t entry = 0;
    const OptionChoice* choice = nullptr;
    const cluster::Allocation* alloc = nullptr;
  };

  Status init(const std::vector<std::vector<Solver::Previous>>& previous);
  bool deadline_passed() const {
    return std::chrono::steady_clock::now() >= deadline_;
  }
  double friction_for(const Entry& entry, const OptionChoice& choice) const;
  Result<double> predict_entry(const Entry& entry, const OptionChoice& choice,
                               const cluster::Allocation& alloc) const;
  Result<cluster::Allocation> match_entry(const Entry& entry,
                                          const OptionChoice& choice,
                                          cluster::MatchPolicy policy);
  // Scores the plan with `changes` applied; nullopt when any prediction
  // fails (the trial is infeasible). With commit, the plan absorbs the
  // changes.
  std::optional<double> score(const std::vector<Change>& changes, bool commit);
  // Objective of times_ with the deadline terms implied by the plan's
  // (or the trial's) option choices. When no spec in the pass declares
  // a deadline this is exactly objective->evaluate(times_) — the
  // deadline-free decision path stays bit-identical.
  double evaluate_times(const std::vector<Change>& changes) const;
  // Overlay bookkeeping for an accepted move. Callers must release
  // every outgoing allocation before reserving any incoming one — a
  // pairwise swap can otherwise transiently exceed a full node.
  void release_on_overlay(const cluster::Allocation& alloc);
  void reserve_on_overlay(const cluster::Allocation& alloc);
  bool try_reassign(size_t slot);
  bool try_swap(size_t slot_a, size_t slot_b);
  // Picks a swap partner for `slot`, biased toward entries sharing its
  // allocation's nodes (where the packing interaction lives).
  std::optional<size_t> pick_partner(size_t slot);
  void rebuild_node_entries();
  void commit_live(std::vector<Decision>& decisions);

  Optimizer& opt_;
  const SolverConfig& config_;
  SolverStats& stats_;
  SystemState& state_;
  double now_;
  std::chrono::steady_clock::time_point deadline_;
  cluster::PoolOverlay overlay_;
  Rng rng_;

  std::vector<Entry> entries_;
  std::vector<size_t> slots_;  // indices of movable entries
  std::vector<cluster::MatchPolicy> policies_;
  std::unordered_map<cluster::NodeId, std::vector<size_t>> node_entries_;
  // One time per participating instance, state order — the exact vector
  // shape Optimizer::plan_objective feeds the objective.
  std::vector<double> times_;
  std::vector<size_t> time_index_;  // inst_idx -> slot in times_, or npos
  // Any bundle spec in the pass declares a deadline/period; false keeps
  // every evaluation on the plain (bit-identical) objective.
  bool has_deadlines_ = false;
  double current_objective_ = 0.0;
  size_t accepted_moves_ = 0;

  // Trial scratch, reused across candidates.
  struct TrialPred {
    size_t entry;
    double pred;
    double friction;
  };
  std::vector<TrialPred> trial_preds_;
  // Nonzero contention deltas of the trial (marking only; the overlay
  // itself carries the trial's load).
  std::vector<std::pair<cluster::NodeId, int>> applied_load_;
  std::vector<std::pair<size_t, double>> saved_times_;
  std::vector<size_t> affected_;
  std::vector<uint32_t> affected_stamp_;
  uint32_t stamp_ = 0;

  static constexpr size_t kNpos = static_cast<size_t>(-1);
};

double SolverPass::friction_for(const Entry& entry,
                                const OptionChoice& choice) const {
  if (!opt_.config_.respect_friction || !entry.prev_configured) return 0.0;
  if (choice == entry.prev_choice) return 0.0;
  const rsl::OptionSpec* option =
      entry.bundle->spec.find_option(choice.option);
  return option != nullptr ? option->friction_s : 0.0;
}

Result<double> SolverPass::predict_entry(
    const Entry& entry, const OptionChoice& choice,
    const cluster::Allocation& alloc) const {
  const rsl::OptionSpec* option =
      entry.bundle->spec.find_option(choice.option);
  if (option == nullptr) {
    return Err<double>(ErrorCode::kNotFound,
                       "no such option: " + choice.option);
  }
  // The overlay holds the trial plan at every call site (candidates are
  // installed on it before scoring; accepted moves are absorbed before
  // the commit re-score), so its effective_load *is* the plan's
  // contention — no materialized load map.
  return opt_.predict_cached(
      entry.instance->id, *entry.bundle, *option, choice, alloc,
      LoadView(static_cast<const cluster::ResourceView*>(&overlay_)),
      state_.topology());
}

Result<cluster::Allocation> SolverPass::match_entry(
    const Entry& entry, const OptionChoice& choice,
    cluster::MatchPolicy policy) {
  const rsl::OptionSpec* option =
      entry.bundle->spec.find_option(choice.option);
  if (option == nullptr) {
    return Err<cluster::Allocation>(ErrorCode::kNotFound,
                                    "no such option: " + choice.option);
  }
  auto bound = bind_option(*option, choice, opt_.names_);
  if (!bound.ok()) {
    return Err<cluster::Allocation>(bound.error().code, bound.error().message);
  }
  cluster::Matcher matcher(policy, config_.norm);
  return matcher.match(bound.value().node_requirements,
                       bound.value().link_requirements, overlay_);
}

Status SolverPass::init(
    const std::vector<std::vector<Solver::Previous>>& previous) {
  // Placement policies: the optimizer's own first, then the configured
  // vector heuristics, deduplicated preserving order.
  policies_.push_back(opt_.config_.match_policy);
  for (cluster::MatchPolicy policy : config_.placement_policies) {
    if (std::find(policies_.begin(), policies_.end(), policy) ==
        policies_.end()) {
      policies_.push_back(policy);
    }
  }

  for (size_t i = 0; i < state_.instances.size(); ++i) {
    InstanceState& instance = state_.instances[i];
    for (size_t b = 0; b < instance.bundles.size(); ++b) {
      BundleState& bundle = instance.bundles[b];
      if (!bundle.configured) continue;  // greedy found nothing feasible
      Entry entry;
      entry.instance = &instance;
      entry.bundle = &bundle;
      entry.inst_idx = i;
      entry.choice = bundle.choice;
      entry.allocation = bundle.allocation;
      if (i < previous.size() && b < previous[i].size()) {
        entry.prev_configured = previous[i][b].configured;
        entry.prev_choice = previous[i][b].choice;
      }
      const rsl::OptionSpec* option =
          bundle.spec.find_option(bundle.choice.option);
      if (option == nullptr) {
        return Status(ErrorCode::kNotFound,
                      "configured option vanished: " + bundle.choice.option);
      }
      entry.uses_load = model_reads(*option).uses_load;
      for (const auto& opt_spec : bundle.spec.options) {
        if (opt_spec.effective_deadline_s() > 0) has_deadlines_ = true;
      }
      // Granularity: a bundle switched in an *earlier* epoch whose
      // window has not elapsed is held exactly as the greedy gate holds
      // it. A bundle greedy switched this very epoch stays movable —
      // the application only ever sees the epoch's final decision, so
      // refining it is not a second reconfiguration.
      entry.movable = true;
      if (opt_.config_.respect_granularity && option->granularity_s > 0 &&
          bundle.last_switch_time != now_ &&
          now_ - bundle.last_switch_time < option->granularity_s) {
        entry.movable = false;
      }
      if (entry.movable) {
        entry.candidates = expand_option_choices(
            bundle.spec, opt_.config_.memory_grant_levels);
        if (entry.candidates.empty()) entry.movable = false;
      }
      entries_.push_back(std::move(entry));
    }
  }
  for (size_t e = 0; e < entries_.size(); ++e) {
    if (entries_[e].movable) slots_.push_back(e);
  }

  // Per-entry predictions for the greedy plan (the clean overlay reads
  // through to the live pool, whose effective_load is the plan's
  // contention).
  time_index_.assign(state_.instances.size(), kNpos);
  std::vector<double> inst_time(state_.instances.size(), 0.0);
  std::vector<bool> participates(state_.instances.size(), false);
  for (Entry& entry : entries_) {
    auto predicted = predict_entry(entry, entry.choice, entry.allocation);
    if (!predicted.ok()) {
      return Status(predicted.error().code, predicted.error().message);
    }
    entry.pred = predicted.value();
    entry.friction = friction_for(entry, entry.choice);
    inst_time[entry.inst_idx] += entry.pred + entry.friction;
    participates[entry.inst_idx] = true;
  }
  for (size_t i = 0; i < state_.instances.size(); ++i) {
    if (!participates[i]) continue;
    time_index_[i] = times_.size();
    times_.push_back(inst_time[i]);
  }
  current_objective_ = evaluate_times({});
  if (!std::isfinite(current_objective_)) {
    return Status(ErrorCode::kEvalError, "greedy plan objective not finite");
  }
  rebuild_node_entries();
  affected_stamp_.assign(entries_.size(), 0);
  return Status::Ok();
}

double SolverPass::evaluate_times(const std::vector<Change>& changes) const {
  if (!has_deadlines_) return opt_.objective_->evaluate(times_);
  // Tightest effective deadline per instance under the trial's choices
  // (a Change can swap an entry onto — or off of — a deadline-carrying
  // option). O(entries), only paid in deadline scenarios.
  std::vector<double> inst_deadline(state_.instances.size(), 0.0);
  std::vector<double> inst_weight(state_.instances.size(), 1.0);
  for (size_t e = 0; e < entries_.size(); ++e) {
    const Entry& entry = entries_[e];
    const OptionChoice* choice = &entry.choice;
    for (const Change& change : changes) {
      if (change.entry == e) {
        choice = change.choice;
        break;
      }
    }
    const rsl::OptionSpec* option =
        entry.bundle->spec.find_option(choice->option);
    if (option == nullptr) continue;
    const double d = option->effective_deadline_s();
    if (d <= 0) continue;
    if (inst_deadline[entry.inst_idx] == 0 ||
        d < inst_deadline[entry.inst_idx]) {
      inst_deadline[entry.inst_idx] = d;
      inst_weight[entry.inst_idx] = option->tardiness_weight;
    }
  }
  std::vector<DeadlineTerm> terms;
  for (size_t i = 0; i < inst_deadline.size(); ++i) {
    if (inst_deadline[i] <= 0 || time_index_[i] == kNpos) continue;
    terms.push_back({times_[time_index_[i]], inst_deadline[i], inst_weight[i]});
  }
  return opt_.objective_->evaluate_with_deadlines(times_, terms);
}

void SolverPass::rebuild_node_entries() {
  node_entries_.clear();
  for (size_t e = 0; e < entries_.size(); ++e) {
    for (const auto& ae : entries_[e].allocation.entries) {
      node_entries_[ae.node].push_back(e);
    }
  }
}

std::optional<double> SolverPass::score(const std::vector<Change>& changes,
                                        bool commit) {
  // 1. Net contention delta of the proposed moves — marking input only;
  // the overlay already carries the trial's actual load.
  std::map<cluster::NodeId, int> delta;
  for (const Change& change : changes) {
    for (const auto& ae : entries_[change.entry].allocation.entries) {
      --delta[ae.node];
    }
    for (const auto& ae : change.alloc->entries) ++delta[ae.node];
  }
  applied_load_.clear();
  for (const auto& [node, d] : delta) {
    if (d != 0) applied_load_.emplace_back(node, d);
  }

  // 2. Entries whose predictions can shift: the moved ones, plus every
  // load-reading entry allocated on a node whose contention changed.
  ++stamp_;
  affected_.clear();
  auto mark = [&](size_t e) {
    if (affected_stamp_[e] == stamp_) return;
    affected_stamp_[e] = stamp_;
    affected_.push_back(e);
  };
  for (const Change& change : changes) mark(change.entry);
  for (const auto& [node, d] : applied_load_) {
    auto it = node_entries_.find(node);
    if (it == node_entries_.end()) continue;
    for (size_t e : it->second) {
      if (entries_[e].uses_load) mark(e);
    }
  }

  // 3. Re-predict the affected entries under the trial contention.
  auto change_for = [&](size_t e) -> const Change* {
    for (const Change& change : changes) {
      if (change.entry == e) return &change;
    }
    return nullptr;
  };
  trial_preds_.clear();
  for (size_t e : affected_) {
    const Entry& entry = entries_[e];
    const Change* change = change_for(e);
    const OptionChoice& choice = change ? *change->choice : entry.choice;
    const cluster::Allocation& alloc =
        change ? *change->alloc : entry.allocation;
    auto predicted = predict_entry(entry, choice, alloc);
    if (!predicted.ok() || !std::isfinite(predicted.value())) {
      return std::nullopt;  // e.g. prediction diverged: infeasible trial
    }
    double friction = change ? friction_for(entry, choice) : entry.friction;
    trial_preds_.push_back(TrialPred{e, predicted.value(), friction});
  }

  // 4. Fold the per-entry deltas into the instance times and evaluate.
  saved_times_.clear();
  for (const TrialPred& tp : trial_preds_) {
    const Entry& entry = entries_[tp.entry];
    size_t ti = time_index_[entry.inst_idx];
    bool seen = false;
    for (auto& [idx, old] : saved_times_) {
      if (idx == ti) seen = true;
    }
    if (!seen) saved_times_.emplace_back(ti, times_[ti]);
    times_[ti] += (tp.pred + tp.friction) - (entry.pred + entry.friction);
  }
  double objective = evaluate_times(changes);

  if (!commit) {
    for (const auto& [ti, old] : saved_times_) times_[ti] = old;
    return objective;
  }

  // 5. Commit: the plan absorbs predictions, choices, allocations.
  for (const TrialPred& tp : trial_preds_) {
    entries_[tp.entry].pred = tp.pred;
    entries_[tp.entry].friction = tp.friction;
  }
  for (const Change& change : changes) {
    Entry& entry = entries_[change.entry];
    entry.choice = *change.choice;
    entry.allocation = *change.alloc;
    const rsl::OptionSpec* option =
        entry.bundle->spec.find_option(entry.choice.option);
    entry.uses_load = option == nullptr || model_reads(*option).uses_load;
  }
  rebuild_node_entries();
  current_objective_ = objective;
  return objective;
}

void SolverPass::release_on_overlay(const cluster::Allocation& alloc) {
  auto released = cluster::Matcher::release(alloc, overlay_);
  HARMONY_ASSERT_MSG(released.ok(), "solver overlay release failed");
}

void SolverPass::reserve_on_overlay(const cluster::Allocation& alloc) {
  for (const auto& ae : alloc.entries) {
    auto reserved =
        overlay_.reserve_memory(ae.node, ae.requirement.memory_mb);
    HARMONY_ASSERT_MSG(reserved.ok(), "solver overlay reserve failed");
    overlay_.add_process(ae.node);
  }
}

bool SolverPass::try_reassign(size_t slot) {
  Entry& entry = entries_[slot];
  const double threshold =
      current_objective_ - accept_margin(current_objective_);

  struct Best {
    OptionChoice choice;
    cluster::Allocation alloc;
    double objective;
  };
  std::optional<Best> best;

  auto outer = overlay_.mark();
  auto released = cluster::Matcher::release(entry.allocation, overlay_);
  HARMONY_ASSERT_MSG(released.ok(), "solver overlay release failed");
  for (const OptionChoice& candidate : entry.candidates) {
    if (deadline_passed()) break;
    for (cluster::MatchPolicy policy : policies_) {
      auto inner = overlay_.mark();
      auto alloc = match_entry(entry, candidate, policy);
      if (alloc.ok()) {
        const bool noop = candidate == entry.choice &&
                          alloc.value().same_placement(entry.allocation);
        if (!noop) {
          ++stats_.candidates;
          auto objective = score({Change{slot, &candidate, &alloc.value()}},
                                 /*commit=*/false);
          if (objective && *objective < threshold &&
              (!best || *objective < best->objective)) {
            best = Best{candidate, std::move(alloc).value(), *objective};
          }
        }
      }
      overlay_.rewind(inner);
    }
  }
  overlay_.rewind(outer);
  if (!best) return false;

  release_on_overlay(entry.allocation);
  reserve_on_overlay(best->alloc);
  auto committed =
      score({Change{slot, &best->choice, &best->alloc}}, /*commit=*/true);
  HARMONY_ASSERT_MSG(committed.has_value(), "re-scoring accepted move failed");
  ++stats_.moves_accepted;
  ++accepted_moves_;
  return true;
}

std::optional<size_t> SolverPass::pick_partner(size_t slot) {
  if (slots_.size() < 2) return std::nullopt;
  const Entry& entry = entries_[slot];
  // Prefer a partner colocated with this entry — swaps only beat two
  // independent reassigns when the pair contends for the same bins.
  std::vector<size_t> shared;
  for (const auto& ae : entry.allocation.entries) {
    auto it = node_entries_.find(ae.node);
    if (it == node_entries_.end()) continue;
    for (size_t e : it->second) {
      if (e != slot && entries_[e].movable &&
          std::find(shared.begin(), shared.end(), e) == shared.end()) {
        shared.push_back(e);
      }
    }
  }
  if (!shared.empty()) return shared[rng_.next_below(shared.size())];
  size_t other = slots_[rng_.next_below(slots_.size())];
  if (other == slot) return std::nullopt;
  return other;
}

bool SolverPass::try_swap(size_t slot_a, size_t slot_b) {
  Entry& a = entries_[slot_a];
  Entry& b = entries_[slot_b];
  const double threshold =
      current_objective_ - accept_margin(current_objective_);

  // The current choice plus the first swap_choices - 1 alternatives.
  auto shortlist = [&](const Entry& entry) {
    std::vector<const OptionChoice*> list = {&entry.choice};
    for (const OptionChoice& candidate : entry.candidates) {
      if (static_cast<int>(list.size()) >= std::max(config_.swap_choices, 1)) {
        break;
      }
      if (candidate == entry.choice) continue;
      list.push_back(&candidate);
    }
    return list;
  };
  std::vector<const OptionChoice*> list_a = shortlist(a);
  std::vector<const OptionChoice*> list_b = shortlist(b);

  struct Best {
    OptionChoice choice_a, choice_b;
    cluster::Allocation alloc_a, alloc_b;
    double objective;
  };
  std::optional<Best> best;

  auto outer = overlay_.mark();
  auto released_a = cluster::Matcher::release(a.allocation, overlay_);
  auto released_b = cluster::Matcher::release(b.allocation, overlay_);
  HARMONY_ASSERT_MSG(released_a.ok() && released_b.ok(),
                     "solver overlay release failed");
  for (const OptionChoice* ca : list_a) {
    if (deadline_passed()) break;
    for (const OptionChoice* cb : list_b) {
      for (cluster::MatchPolicy policy : policies_) {
        auto inner = overlay_.mark();
        auto alloc_a = match_entry(a, *ca, policy);
        if (!alloc_a.ok()) {
          overlay_.rewind(inner);
          continue;
        }
        auto alloc_b = match_entry(b, *cb, policy);
        if (!alloc_b.ok()) {
          overlay_.rewind(inner);
          continue;
        }
        const bool noop = *ca == a.choice && *cb == b.choice &&
                          alloc_a.value().same_placement(a.allocation) &&
                          alloc_b.value().same_placement(b.allocation);
        if (!noop) {
          ++stats_.candidates;
          auto objective =
              score({Change{slot_a, ca, &alloc_a.value()},
                     Change{slot_b, cb, &alloc_b.value()}},
                    /*commit=*/false);
          if (objective && *objective < threshold &&
              (!best || *objective < best->objective)) {
            best = Best{*ca, *cb, std::move(alloc_a).value(),
                        std::move(alloc_b).value(), *objective};
          }
        }
        overlay_.rewind(inner);
      }
    }
  }
  overlay_.rewind(outer);
  if (!best) return false;

  release_on_overlay(a.allocation);
  release_on_overlay(b.allocation);
  reserve_on_overlay(best->alloc_a);
  reserve_on_overlay(best->alloc_b);
  auto committed = score({Change{slot_a, &best->choice_a, &best->alloc_a},
                          Change{slot_b, &best->choice_b, &best->alloc_b}},
                         /*commit=*/true);
  HARMONY_ASSERT_MSG(committed.has_value(), "re-scoring accepted swap failed");
  ++stats_.moves_accepted;
  ++accepted_moves_;
  return true;
}

void SolverPass::commit_live(std::vector<Decision>& decisions) {
  std::vector<size_t> changed;
  for (size_t e = 0; e < entries_.size(); ++e) {
    const Entry& entry = entries_[e];
    if (entry.choice == entry.bundle->choice &&
        entry.allocation.same_placement(entry.bundle->allocation)) {
      continue;
    }
    changed.push_back(e);
  }
  if (changed.empty()) return;
  // Release every changed live allocation first, then install the
  // planned ones directly (no re-matching — the committed placement is
  // exactly the planned one, which a partial re-match could not
  // guarantee under a different intermediate pool state).
  for (size_t e : changed) {
    auto released =
        cluster::Matcher::release(entries_[e].bundle->allocation, *state_.pool);
    HARMONY_ASSERT_MSG(released.ok(), "solver live release failed");
  }
  for (size_t e : changed) {
    Entry& entry = entries_[e];
    for (const auto& ae : entry.allocation.entries) {
      auto reserved =
          state_.pool->reserve_memory(ae.node, ae.requirement.memory_mb);
      HARMONY_ASSERT_MSG(reserved.ok(), "solver live reserve failed");
      state_.pool->add_process(ae.node);
    }
    cluster::Allocation old_allocation = entry.bundle->allocation;
    entry.bundle->choice = entry.choice;
    entry.bundle->allocation = entry.allocation;
    entry.bundle->configured = true;
    entry.bundle->last_switch_time = now_;
    state_.touch_allocation(old_allocation);
    state_.touch_allocation(entry.bundle->allocation);
  }
  // Stamp after every touch: the solver's joint plan is the epoch's
  // argmin as far as the next incremental pass is concerned — leaving
  // these dirty would let the next greedy pass immediately unwind the
  // improvement (thrash).
  for (size_t e : changed) {
    entries_[e].bundle->evaluated_version = state_.version;
  }
  for (size_t e : changed) {
    const Entry& entry = entries_[e];
    bool found = false;
    for (Decision& decision : decisions) {
      if (decision.instance == entry.instance->id &&
          decision.bundle == entry.bundle->spec.bundle) {
        decision.choice = entry.choice;
        decision.changed = true;
        found = true;
      }
    }
    if (!found) {
      decisions.push_back(
          Decision{entry.instance->id, entry.bundle->spec.bundle, entry.choice,
                   true});
    }
  }
}

Status SolverPass::run(
    const std::vector<std::vector<Solver::Previous>>& previous,
    std::vector<Decision>& decisions, double* improvement,
    double* improvement_bp, bool* budget_exhausted, uint64_t* rounds) {
  *improvement = 0.0;
  *improvement_bp = 0.0;
  *budget_exhausted = false;
  *rounds = 0;
  if (deadline_passed()) {
    // Greedy consumed the whole budget; degrade gracefully.
    *budget_exhausted = true;
    return Status::Ok();
  }
  auto status = init(previous);
  if (!status.ok()) return status;
  if (slots_.empty()) return Status::Ok();
  const double greedy_objective = current_objective_;

  std::vector<size_t> order = slots_;
  while (true) {
    if (config_.max_rounds > 0 &&
        *rounds >= static_cast<uint64_t>(config_.max_rounds)) {
      break;
    }
    bool improved = false;
    // Deterministic Fisher-Yates round order: seeded, so a fixed
    // max_rounds run is reproducible regardless of wall clock.
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng_.next_below(i)]);
    }
    // Swap attempts are interleaved through the reassign sweep: on a
    // tightly packed domain the sweep alone can exhaust the budget,
    // and single reassigns can never fix a pairwise packing wedge —
    // running swaps only after the sweep would starve the one
    // neighborhood that can. Interleaving keeps the budget split
    // between both neighborhoods no matter where it runs out.
    int swaps_left = std::max(config_.swap_pairs_per_round, 0);
    const size_t swap_cadence =
        swaps_left > 0 ? std::max<size_t>(1, order.size() / swaps_left)
                       : order.size() + 1;
    auto attempt_swap = [&] {
      --swaps_left;
      size_t slot = slots_[rng_.next_below(slots_.size())];
      auto partner = pick_partner(slot);
      if (partner && try_swap(slot, *partner)) improved = true;
    };
    for (size_t i = 0; i < order.size(); ++i) {
      if (deadline_passed()) {
        *budget_exhausted = true;
        break;
      }
      if (try_reassign(order[i])) improved = true;
      if (swaps_left > 0 && (i + 1) % swap_cadence == 0) {
        if (deadline_passed()) {
          *budget_exhausted = true;
          break;
        }
        attempt_swap();
      }
    }
    while (!*budget_exhausted && swaps_left > 0) {
      if (deadline_passed()) {
        *budget_exhausted = true;
        break;
      }
      attempt_swap();
    }
    ++*rounds;
    if (*budget_exhausted || !improved) break;
  }

  if (accepted_moves_ > 0) {
    commit_live(decisions);
    *improvement = greedy_objective - current_objective_;
    if (std::fabs(greedy_objective) > 0) {
      *improvement_bp = *improvement / std::fabs(greedy_objective) * 1e4;
    }
  }
  return Status::Ok();
}

Solver::Solver(Optimizer& optimizer, const SolverConfig& config)
    : opt_(optimizer), config_(config) {}

Solver::~Solver() = default;

Status Solver::improve(SystemState& state, double now,
                       std::chrono::steady_clock::time_point deadline,
                       const std::vector<std::vector<Previous>>& previous,
                       std::vector<Decision>& decisions) {
  ++stats_.passes;
  metric::telemetry_counter("solver.passes_total").increment();
  const auto start = std::chrono::steady_clock::now();
  const uint64_t candidates_before = stats_.candidates;
  const uint64_t moves_before = stats_.moves_accepted;

  double improvement = 0.0;
  double improvement_bp = 0.0;
  bool budget_exhausted = false;
  uint64_t rounds = 0;
  // Each pass explores from a different deterministic stream: reseeding
  // every pass with the bare config seed would make a short-budget pass
  // resample the exact same move candidates forever (a fixed 16-pair
  // sample that happens to contain no improving swap stays empty on
  // every later pass — the anytime property dies). Mixing the pass
  // counter in (splitmix64 finalizer) keeps runs reproducible for a
  // given event sequence while making successive passes cover fresh
  // neighborhoods.
  uint64_t mixed = config_.seed + 0x9e3779b97f4a7c15ULL * stats_.passes;
  mixed ^= mixed >> 30;
  mixed *= 0xbf58476d1ce4e5b9ULL;
  mixed ^= mixed >> 27;
  mixed *= 0x94d049bb133111ebULL;
  mixed ^= mixed >> 31;
  {
    SolverPass pass(opt_, config_, stats_, state, now, mixed, deadline,
                    previous);
    auto status = pass.run(previous, decisions, &improvement, &improvement_bp,
                           &budget_exhausted, &rounds);
    if (!status.ok()) return status;
  }

  stats_.rounds += rounds;
  metric::telemetry_counter("solver.rounds_total").add(rounds);
  metric::telemetry_counter("solver.candidates_total")
      .add(stats_.candidates - candidates_before);
  metric::telemetry_counter("solver.moves_accepted_total")
      .add(stats_.moves_accepted - moves_before);
  if (budget_exhausted) {
    ++stats_.budget_exhausted;
    metric::telemetry_counter("solver.budget_exhausted_total").increment();
  }
  stats_.last_improvement = improvement;
  if (improvement > 0) {
    ++stats_.improved_passes;
    stats_.total_improvement += improvement;
    metric::telemetry_counter("solver.improved_passes_total").increment();
    // Improvement over greedy, in basis points of the greedy objective.
    metric::telemetry_histogram("solver.improvement_bp")
        .record(static_cast<uint64_t>(std::max(0.0, improvement_bp)));
  }
  auto used = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - start);
  stats_.last_budget_used_ms = used.count();
  metric::telemetry_histogram("solver.budget_used_us")
      .record(static_cast<uint64_t>(std::max(0.0, used.count() * 1000.0)));
  return Status::Ok();
}

}  // namespace harmony::core
