// Partitioned decision core: the namespace is decomposed into
// *optimization domains* — connected components of instances whose
// bundles' admissible node sets overlap — and each domain runs on its
// own worker with a private Controller, epoch batching, pending-var
// flush and journal event stream.
//
// Why this preserves decision identity. For separable objectives
// (mean, throughput) every instance outside a bundle's domain
// contributes the same predicted time to every candidate the optimizer
// scores for that bundle: the bundle cannot be placed on (or contend
// with) any node those instances touch, so their terms are constant
// across candidates and cannot move the argmin. Within a domain the
// optimizer sees exactly the instances, pool occupancy and external
// load the global pass would consult, in the same registration order —
// so each domain's decision sequence is bit-identical to the slice of
// the global sequence that touches it (core_domain_test is the proof
// obligation). Non-separable objectives (makespan) couple every
// instance to every other; the router detects this and collapses to a
// single domain, as does the explicit --single-domain reference mode.
//
// Topology of the implementation:
//   DomainRouter   — the single-caller front end. Owns the membership
//                    index (instance -> domain, node -> domain), the
//                    master node state (external load, online flags),
//                    the cluster definition, and the worker pool. All
//                    public methods must be called from one thread (the
//                    drain thread under the TCP server, the test body
//                    in tests).
//   domain worker  — fixed pool of threads; domain ops are posted to
//                    worker[domain.id % workers] and run against that
//                    domain's Controller with the owner-thread binding
//                    held for the duration of the op.
//   merge/split    — a registration whose footprint overlaps several
//                    domains merges them (ascending domain id, lowest
//                    id survives, absorbed instances move via the
//                    restore path); a departure that disconnects a
//                    domain splits it (the component holding the lowest
//                    instance id keeps the domain id and its journal
//                    sequence, the rest rebuild under fresh ids).
//                    Both quiesce the involved workers first, so every
//                    event queued before the membership change drains
//                    against the old owner and every event after routes
//                    to the new owner — nothing is ever dropped.
//   journal        — per-domain sequence numbers layered on the shared
//                    WAL: each event is tagged (domain, dseq) and
//                    appended in commit order, so the file preserves a
//                    merged total order (for snapshot compaction) while
//                    recovery can validate each domain's stream is
//                    gap-free. Router-level events on nodes no domain
//                    owns are tagged domain 0.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/controller.h"
#include "core/objective.h"

namespace harmony::core {

// Sink for domain-tagged journal records. persist::Persistence
// implements this next to core::EventSink; methods are called from
// domain worker threads and from the router thread and must be
// internally synchronized.
class DomainJournal {
 public:
  virtual ~DomainJournal() = default;
  virtual void on_domain_event(uint32_t domain, uint64_t dseq,
                               const ControllerEvent& event) = 0;
  virtual void on_domain_epoch_commit(uint32_t domain) = 0;
};

struct DomainRouterConfig {
  // Template configuration applied to every per-domain controller.
  ControllerConfig controller;
  // Worker threads. Domains are assigned round-robin by id.
  int workers = 4;
  // Reference mode: disable partitioning, every instance lands in one
  // domain on one worker — the old single-threaded decision path.
  bool single_domain = false;
};

class DomainRouter {
 public:
  explicit DomainRouter(DomainRouterConfig config = {});
  ~DomainRouter();

  DomainRouter(const DomainRouter&) = delete;
  DomainRouter& operator=(const DomainRouter&) = delete;

  // --- cluster setup (mirrors Controller; fixed once finalized) -----------
  Status add_node(const rsl::NodeAd& ad);
  Status add_nodes_script(const std::string& rsl_script);
  Status link_hosts(const std::string& host_a, const std::string& host_b,
                    double bandwidth_mbps, double latency_ms);
  Status finalize_cluster();
  bool cluster_finalized() const;
  const cluster::Topology& topology() const;

  // Sampled on the router thread at each operation; domain controllers
  // observe the value sampled when their event was posted, so decision
  // times are independent of worker scheduling.
  void set_time_source(std::function<double()> source);

  // Attach the domain-tagged journal sink. Must be called before the
  // first registration; the sink must outlive the router.
  void attach_journal(DomainJournal* journal);

  // --- decision operations (single caller; see class comment) -------------
  Result<InstanceId> register_script(const std::string& rsl_script);
  Status unregister(InstanceId id);
  Status report_external_load(const std::string& hostname,
                              int concurrent_tasks);
  // Fire-and-forget variant: validated and timestamped here, applied on
  // the owning domain's worker. quiesce() to observe the result.
  Status post_external_load(const std::string& hostname,
                            int concurrent_tasks);
  Status set_node_online(const std::string& hostname, bool online);
  Status reevaluate();
  Status set_option(InstanceId id, const std::string& bundle,
                    const OptionChoice& choice);
  // Live grow/shrink: routed to the owning domain's controller (see
  // Controller::resize).
  Status resize(InstanceId id, const std::string& bundle, double workers);
  // The handler is retained by the router and re-attached when the
  // instance's domain merges or splits (the new controller replays the
  // current configuration, like a RESUME). Called on worker threads.
  Status subscribe(InstanceId id, Controller::UpdateHandler handler);
  Result<std::string> get_variable(InstanceId id, const std::string& name);

  // Blocks until every queued (posted) operation has been applied.
  void quiesce();

  // --- merged introspection (router thread, implicitly quiesces) ----------
  size_t domain_count() const { return domains_.size(); }
  // Live domain controllers ordered by domain id.
  std::vector<const Controller*> domain_controllers() const;
  // Reconfigurations across all domains, including retired ones.
  uint64_t reconfigurations() const;
  // Objective over the union of all domains' predicted times — equal to
  // what a single global controller would report.
  Result<double> objective_value() const;
  Result<std::vector<std::pair<InstanceId, double>>> predictions() const;
  size_t live_instances() const { return instance_domain_.size(); }
  InstanceId next_instance_id() const { return next_instance_id_; }
  bool partitioned() const { return partitioned_; }

  // --- wire/console introspection (any thread) -----------------------------
  struct DomainInfo {
    uint32_t id = 0;
    size_t worker = 0;
    std::vector<std::string> members;  // instance paths
    size_t instances = 0;
    uint64_t epochs = 0;             // decision ops applied
    double last_decision_ms = 0;     // latency of the most recent op
    // Anytime-solver mirror (all zero when the solver is disabled).
    uint64_t solver_passes = 0;
    uint64_t solver_moves = 0;        // accepted improving moves
    double solver_improvement = 0;    // total objective improvement
  };
  // Thread-safe snapshot of per-domain stats, safe to call from net
  // shards while workers are mid-decision.
  std::vector<DomainInfo> snapshot() const;

 private:
  struct Domain;
  class Tap;
  struct Worker;

  // Creates a domain whose controller shares the template's finalized
  // topology and allocates pool/version state only over `scope` (the
  // domain footprint) — O(|scope|), never O(cluster).
  Domain& create_domain(uint32_t id, size_t worker_hint,
                        std::vector<cluster::NodeId> scope);
  // Reconciles exactly the `annexed` nodes (sorted) of the controller's
  // pool against the master node state, walking the master maps in
  // lockstep — O(|annexed| + master entries in range), independent of
  // cluster size. Owned nodes are never stale (their events route to
  // the owning domain), so only annexed nodes ever need this.
  void sync_node_state(Controller& controller,
                       const std::vector<cluster::NodeId>& annexed) const;
  uint32_t domain_for_footprint(const std::vector<cluster::NodeId>& nodes);
  uint32_t merge_domains(std::vector<uint32_t> ids);
  void rebalance_after_departure(uint32_t domain_id);
  void retire_domain(uint32_t domain_id);
  void index_instance(InstanceId id, uint32_t domain_id,
                      std::vector<cluster::NodeId> nodes);
  void restore_into(Domain& target, const Controller& source, InstanceId id);
  void refresh_info(const Domain& domain);
  void drop_info(uint32_t domain_id);
  void journal_router_event(ControllerEvent event, double time);
  double sample_now();
  // Runs `op` on the domain's worker with the sampled time installed
  // and the controller's owner-thread binding held; blocks for the
  // result. R must be default-constructible (Status / Result<...>).
  template <typename R>
  R run_on_domain(Domain& domain, double time,
                  std::function<R(Controller&)> op);
  void post_on_domain(Domain& domain, double time,
                      std::function<void(Controller&)> op);
  // Worker-side epilogue of every domain op: per-domain epoch/latency
  // telemetry, trace span, and the stats mirror for snapshot().
  void note_op_applied(Domain& domain, uint64_t start_us);
  void wait_idle(size_t worker) const;

  DomainRouterConfig config_;
  bool partitioned_ = false;  // false: every instance shares domain 1
  std::function<double()> time_source_;
  DomainJournal* journal_ = nullptr;
  // For the merged objective_value(); same objective every domain uses.
  std::unique_ptr<Objective> objective_;

  // Template controller holding the finalized topology (never hosts an
  // instance); source of truth for hostname lookup and footprints. Its
  // topology is *shared* (by shared_ptr) with every domain controller
  // — domains adopt it instead of replaying the cluster definition —
  // and its namespace serves the immutable cluster.* names to every
  // domain through the namespace fallback chain.
  Controller template_;

  // Master node state, updated on every routed/unowned event so a new
  // or merged domain can reconcile nodes it has not seen events for.
  std::map<cluster::NodeId, int> external_load_;   // != 0 only
  std::map<cluster::NodeId, bool> node_offline_;   // present = offline

  // Membership index (router thread only).
  std::map<uint32_t, std::unique_ptr<Domain>> domains_;
  std::map<InstanceId, uint32_t> instance_domain_;
  std::map<InstanceId, std::vector<cluster::NodeId>> instance_nodes_;
  std::vector<uint32_t> node_domain_;  // node id -> domain id, 0 = unowned
  std::map<InstanceId, Controller::UpdateHandler> subscriptions_;

  InstanceId next_instance_id_ = 1;
  uint32_t next_domain_id_ = 1;
  uint64_t retired_reconfigurations_ = 0;
  uint64_t router_dseq_ = 0;  // journal stream for unowned-node events

  std::vector<std::unique_ptr<Worker>> workers_;

  // Stats mirror read by snapshot() from arbitrary threads.
  mutable std::mutex stats_mutex_;
  std::map<uint32_t, DomainInfo> info_;  // guarded by stats_mutex_
};

// Process-global publication point for the {DOMAINS} wire verb and the
// console command: at most one router is published at a time; the
// publisher must unpublish (or be destroyed) before the router dies.
void publish_domain_router(DomainRouter* router);
// Snapshot of the published router's domains; sets *published to false
// and returns empty when none is published. Safe from any thread.
std::vector<DomainRouter::DomainInfo> published_domains(bool* published);

}  // namespace harmony::core
