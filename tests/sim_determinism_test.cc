// Determinism property: the whole stack — RSL, controller, optimizer,
// discrete-event simulator, database engine, applications — must
// produce bit-identical traces across runs. This is what makes every
// figure in EXPERIMENTS.md regenerable.
#include <gtest/gtest.h>

#include "apps/bag_app.h"
#include "apps/db_app.h"
#include "apps/scenarios.h"
#include "apps/simple_app.h"

namespace harmony::apps {
namespace {

// A condensed Figure 7 run; returns the full response-time series of
// every client plus the decision trace.
std::vector<metric::Sample> run_db_scenario() {
  SimHarness harness;
  EXPECT_TRUE(
      harness.controller().add_nodes_script(db_cluster_script(3)).ok());
  EXPECT_TRUE(harness.finalize().ok());
  db::DbEngine engine(5000, 42);
  std::vector<std::unique_ptr<DbClientApp>> clients;
  for (int i = 1; i <= 3; ++i) {
    DbClientConfig config;
    config.client_host = str_format("sp2-%02d", i - 1);
    config.instance = i;
    config.seed = 10 + i;
    clients.push_back(
        std::make_unique<DbClientApp>(harness.context(), &engine, config));
  }
  auto& sim = harness.engine();
  EXPECT_TRUE(clients[0]->start().ok());
  sim.schedule(50, [&] { EXPECT_TRUE(clients[1]->start().ok()); });
  sim.schedule(100, [&] { EXPECT_TRUE(clients[2]->start().ok()); });
  sim.run_until(300);

  std::vector<metric::Sample> trace;
  for (int i = 1; i <= 3; ++i) {
    const auto* series =
        harness.metrics().find(str_format("db.client%d.response", i));
    if (series != nullptr) {
      trace.insert(trace.end(), series->samples().begin(),
                   series->samples().end());
    }
  }
  for (auto& client : clients) client->stop();
  sim.run_until(400);
  return trace;
}

std::vector<metric::Sample> run_bag_scenario() {
  SimHarness harness;
  EXPECT_TRUE(
      harness.controller().add_nodes_script(worker_cluster_script(8)).ok());
  EXPECT_TRUE(harness.finalize().ok());
  BagConfig bag_config;
  bag_config.seed = 77;
  BagApp bag(harness.context(), bag_config);
  EXPECT_TRUE(bag.start().ok());
  SimpleConfig rigid;
  rigid.workers = 3;
  rigid.max_iterations = 1;
  SimpleApp simple(harness.context(), rigid);
  harness.engine().schedule(100, [&] { EXPECT_TRUE(simple.start().ok()); });
  harness.engine().run_until(1500);
  bag.stop();
  harness.engine().run_until(2500);
  std::vector<metric::Sample> trace;
  for (const char* name : {"bag.1.iteration_time", "bag.1.workers"}) {
    const auto* series = harness.metrics().find(name);
    if (series != nullptr) {
      trace.insert(trace.end(), series->samples().begin(),
                   series->samples().end());
    }
  }
  return trace;
}

void expect_identical(const std::vector<metric::Sample>& a,
                      const std::vector<metric::Sample>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time) << "sample " << i;    // bit-exact
    EXPECT_EQ(a[i].value, b[i].value) << "sample " << i;  // bit-exact
  }
}

TEST(Determinism, DbScenarioIsBitExactAcrossRuns) {
  auto first = run_db_scenario();
  auto second = run_db_scenario();
  ASSERT_GT(first.size(), 50u) << "scenario must actually run queries";
  expect_identical(first, second);
}

TEST(Determinism, BagScenarioIsBitExactAcrossRuns) {
  auto first = run_bag_scenario();
  auto second = run_bag_scenario();
  ASSERT_GE(first.size(), 5u);
  expect_identical(first, second);
}

TEST(Determinism, DifferentSeedsDiverge) {
  SimHarness h1, h2;
  for (SimHarness* h : {&h1, &h2}) {
    ASSERT_TRUE(h->controller().add_nodes_script(db_cluster_script(1)).ok());
    ASSERT_TRUE(h->finalize().ok());
  }
  db::DbEngine engine(5000, 42);
  DbClientConfig c1, c2;
  c1.client_host = c2.client_host = "sp2-00";
  c1.instance = c2.instance = 1;
  c1.seed = 1;
  c2.seed = 2;
  DbClientApp a1(h1.context(), &engine, c1);
  DbClientApp a2(h2.context(), &engine, c2);
  ASSERT_TRUE(a1.start().ok());
  ASSERT_TRUE(a2.start().ok());
  h1.engine().run_until(100);
  h2.engine().run_until(100);
  // Different query streams -> different per-query responses (the work
  // depends on which buckets each query touches).
  const auto* s1 = h1.metrics().find("db.client1.response");
  const auto* s2 = h2.metrics().find("db.client1.response");
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s2, nullptr);
  bool any_difference = s1->size() != s2->size();
  for (size_t i = 0; !any_difference && i < s1->size(); ++i) {
    if (s1->samples()[i].value != s2->samples()[i].value) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
  a1.stop();
  a2.stop();
  h1.engine().run_until(200);
  h2.engine().run_until(200);
}

}  // namespace
}  // namespace harmony::apps
