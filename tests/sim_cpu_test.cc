#include "sim/cpu.h"

#include <gtest/gtest.h>

namespace harmony::sim {
namespace {

class CpuTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(topo_.add_node("ref", 1.0, 128).ok());    // reference speed
    ASSERT_TRUE(topo_.add_node("fast", 2.0, 128).ok());   // 2x reference
    cpu_ = std::make_unique<CpuModel>(&engine_, &topo_);
  }
  SimEngine engine_;
  cluster::Topology topo_;
  std::unique_ptr<CpuModel> cpu_;
};

TEST_F(CpuTest, SingleTaskRunsAtNodeSpeed) {
  double done_at = -1;
  cpu_->submit(0, 10.0, [&] { done_at = engine_.now(); });
  engine_.run();
  EXPECT_DOUBLE_EQ(done_at, 10.0);
}

TEST_F(CpuTest, FastNodeFinishesSooner) {
  double done_at = -1;
  cpu_->submit(1, 10.0, [&] { done_at = engine_.now(); });
  engine_.run();
  EXPECT_DOUBLE_EQ(done_at, 5.0) << "speed 2.0 halves wall time";
}

TEST_F(CpuTest, ProcessorSharingDoublesTime) {
  // Two equal tasks sharing one node: both finish at 2x solo time.
  std::vector<double> done;
  cpu_->submit(0, 10.0, [&] { done.push_back(engine_.now()); });
  cpu_->submit(0, 10.0, [&] { done.push_back(engine_.now()); });
  engine_.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 20.0);
  EXPECT_DOUBLE_EQ(done[1], 20.0);
}

TEST_F(CpuTest, ShorterTaskFinishesFirstThenRatesRecover) {
  // Task A: 10s, task B: 2s. Shared until B done at t=4 (2s work at
  // rate 1/2). A then has 8 remaining, solo rate: done at 4 + 8 = 12.
  double done_a = -1, done_b = -1;
  cpu_->submit(0, 10.0, [&] { done_a = engine_.now(); });
  cpu_->submit(0, 2.0, [&] { done_b = engine_.now(); });
  engine_.run();
  EXPECT_DOUBLE_EQ(done_b, 4.0);
  EXPECT_DOUBLE_EQ(done_a, 12.0);
}

TEST_F(CpuTest, LateArrivalSlowsExisting) {
  // A (10s) runs alone for 5s (5 done). B (5s) arrives at t=5.
  // Shared rate 1/2: B needs 10s -> done at 15; A needs 10s -> done at 15.
  double done_a = -1, done_b = -1;
  cpu_->submit(0, 10.0, [&] { done_a = engine_.now(); });
  engine_.schedule(5.0, [&] {
    cpu_->submit(0, 5.0, [&] { done_b = engine_.now(); });
  });
  engine_.run();
  EXPECT_DOUBLE_EQ(done_a, 15.0);
  EXPECT_DOUBLE_EQ(done_b, 15.0);
}

TEST_F(CpuTest, NodesAreIndependent) {
  double done_a = -1, done_b = -1;
  cpu_->submit(0, 10.0, [&] { done_a = engine_.now(); });
  cpu_->submit(1, 10.0, [&] { done_b = engine_.now(); });
  engine_.run();
  EXPECT_DOUBLE_EQ(done_a, 10.0);
  EXPECT_DOUBLE_EQ(done_b, 5.0);
}

TEST_F(CpuTest, CancelPreventsCompletion) {
  bool fired = false;
  TaskId id = cpu_->submit(0, 10.0, [&] { fired = true; });
  double other_done = -1;
  cpu_->submit(0, 10.0, [&] { other_done = engine_.now(); });
  engine_.schedule(5.0, [&] { ASSERT_TRUE(cpu_->cancel(id).ok()); });
  engine_.run();
  EXPECT_FALSE(fired);
  // Other task: 2.5 done by t=5 (shared), then solo: 5 + 7.5 = 12.5.
  EXPECT_DOUBLE_EQ(other_done, 12.5);
  EXPECT_FALSE(cpu_->cancel(id).ok()) << "double cancel";
}

TEST_F(CpuTest, ZeroWorkCompletesImmediately) {
  double done_at = -1;
  cpu_->submit(0, 0.0, [&] { done_at = engine_.now(); });
  engine_.run();
  EXPECT_DOUBLE_EQ(done_at, 0.0);
}

TEST_F(CpuTest, RemainingTracksProgress) {
  TaskId id = cpu_->submit(0, 10.0, nullptr);
  engine_.run_until(4.0);
  EXPECT_NEAR(cpu_->remaining(id).value(), 6.0, 1e-9);
  EXPECT_FALSE(cpu_->remaining(9999).ok());
}

TEST_F(CpuTest, ActiveCounts) {
  cpu_->submit(0, 10.0, nullptr);
  cpu_->submit(0, 10.0, nullptr);
  cpu_->submit(1, 10.0, nullptr);
  EXPECT_EQ(cpu_->active_on(0), 2);
  EXPECT_EQ(cpu_->active_on(1), 1);
  EXPECT_EQ(cpu_->active_total(), 3);
  engine_.run();
  EXPECT_EQ(cpu_->active_total(), 0);
}

TEST_F(CpuTest, CompletionCallbackCanResubmit) {
  // A task chain: each completion submits the next, 3 deep.
  int completed = 0;
  std::function<void()> resubmit = [&] {
    ++completed;
    if (completed < 3) cpu_->submit(0, 1.0, resubmit);
  };
  cpu_->submit(0, 1.0, resubmit);
  engine_.run();
  EXPECT_EQ(completed, 3);
  EXPECT_DOUBLE_EQ(engine_.now(), 3.0);
}

TEST_F(CpuTest, SimultaneousCompletions) {
  std::vector<int> order;
  cpu_->submit(0, 10.0, [&] { order.push_back(1); });
  cpu_->submit(0, 10.0, [&] { order.push_back(2); });
  cpu_->submit(0, 10.0, [&] { order.push_back(3); });
  engine_.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine_.now(), 30.0);
}

// Property: total completion time of n equal tasks under processor
// sharing equals n * solo time, regardless of n (work conservation).
class SharingSweep : public ::testing::TestWithParam<int> {};

TEST_P(SharingSweep, WorkConservation) {
  SimEngine engine;
  cluster::Topology topo;
  ASSERT_TRUE(topo.add_node("n", 1.0, 64).ok());
  CpuModel cpu(&engine, &topo);
  const int n = GetParam();
  const double work = 7.0;
  std::vector<double> done;
  for (int i = 0; i < n; ++i) {
    cpu.submit(0, work, [&] { done.push_back(engine.now()); });
  }
  engine.run();
  ASSERT_EQ(done.size(), static_cast<size_t>(n));
  for (double t : done) EXPECT_NEAR(t, n * work, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Counts, SharingSweep, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace harmony::sim
