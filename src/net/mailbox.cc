#include "net/mailbox.h"

#include <chrono>

namespace harmony::net {

Mailbox::Mailbox(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      depth_high_water_(
          &metric::telemetry_gauge("net.mailbox_depth_high_water")) {}

bool Mailbox::push(NetEvent event) {
  if (metric::telemetry_enabled()) {
    event.enqueued_us = metric::telemetry_now_us();
  }
  size_t depth;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    queue_.push_back(std::move(event));
    depth = queue_.size();
  }
  not_empty_.notify_one();
  depth_high_water_->record_max(static_cast<int64_t>(depth));
  return true;
}

size_t Mailbox::drain(std::vector<NetEvent>& out, int timeout_ms) {
  out.clear();
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                      [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return 0;
  out.reserve(queue_.size());
  while (!queue_.empty()) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  lock.unlock();
  not_full_.notify_all();
  return out.size();
}

void Mailbox::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

}  // namespace harmony::net
