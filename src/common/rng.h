// Deterministic random number generation for reproducible experiments.
// SplitMix64 seeds Xoshiro256**; both are public-domain algorithms
// (Blackman & Vigna). std::mt19937 is avoided because its stream is not
// guaranteed identical across standard-library implementations for the
// distribution adaptors we need.
#pragma once

#include <cstdint>

#include "common/assert.h"

namespace harmony {

class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853C49E6748FEA9BULL) { reseed(seed); }

  void reseed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0. Uses Lemire's method.
  uint64_t next_below(uint64_t bound) {
    HARMONY_ASSERT(bound > 0);
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  long long next_int(long long lo, long long hi) {
    HARMONY_ASSERT(lo <= hi);
    return lo + static_cast<long long>(
                    next_below(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  // Standard normal via Marsaglia polar method (deterministic given the
  // stream position).
  double next_normal() {
    while (true) {
      double u = next_double(-1.0, 1.0);
      double v = next_double(-1.0, 1.0);
      double s = u * u + v * v;
      if (s > 0.0 && s < 1.0) {
        return u * __builtin_sqrt(-2.0 * __builtin_log(s) / s);
      }
    }
  }

  double next_normal(double mean, double stddev) {
    return mean + stddev * next_normal();
  }

  // Exponential with the given rate (events per unit time).
  double next_exponential(double rate) {
    HARMONY_ASSERT(rate > 0);
    double u = 1.0 - next_double();  // in (0, 1]
    return -__builtin_log(u) / rate;
  }

  bool next_bool(double p_true = 0.5) { return next_double() < p_true; }

  // Derives an independent child stream; used to give each simulated
  // client its own stream so adding clients never perturbs others.
  Rng fork() { return Rng(next_u64() ^ 0xD1B54A32D192ED03ULL); }

 private:
  static uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
};

}  // namespace harmony
