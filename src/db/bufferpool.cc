#include "db/bufferpool.h"

#include "common/assert.h"

namespace harmony::db {

BufferPool::BufferPool(size_t capacity_pages, size_t tuples_per_page)
    : capacity_(capacity_pages), tuples_per_page_(tuples_per_page) {
  HARMONY_ASSERT(capacity_pages > 0 && tuples_per_page > 0);
}

double BufferPool::hit_rate() const {
  uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
}

bool BufferPool::touch(int table, RowId row) {
  PageKey page = key(table, row);
  auto it = entries_.find(page);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return true;
  }
  ++misses_;
  if (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(page);
  entries_[page] = lru_.begin();
  return false;
}

BufferPool::Touch BufferPool::touch_rows(int table,
                                         const std::vector<RowId>& rows) {
  Touch result;
  for (RowId row : rows) {
    if (touch(table, row)) {
      ++result.hits;
    } else {
      ++result.misses;
    }
  }
  return result;
}

void BufferPool::clear() {
  lru_.clear();
  entries_.clear();
}

}  // namespace harmony::db
