// Client runtime library — the C++ face of the paper's Figure 5 API:
//
//   harmony_startup(<unique id>, <use interrupts>)
//   harmony_bundle_setup("<bundle definition>")
//   harmony_add_variable("name", <default>, <type>)
//   harmony_wait_for_update()
//   harmony_end()
//
// Variable updates from the Harmony process are buffered and applied at
// poll_updates() — the polling discipline §5 describes: applications
// re-read Harmony variables at natural phase boundaries (end of a
// query, end of an outer iteration) and reconfigure themselves.
// A C-style shim with the literal Figure 5 signatures is in capi.h.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/transport.h"
#include "common/result.h"

namespace harmony::client {

class HarmonyClient {
 public:
  explicit HarmonyClient(Transport* transport);
  ~HarmonyClient();
  HarmonyClient(const HarmonyClient&) = delete;
  HarmonyClient& operator=(const HarmonyClient&) = delete;

  // harmony_startup: names the application; must precede bundle_setup.
  Status startup(const std::string& unique_id, bool use_interrupts = false);
  // harmony_bundle_setup: accumulates harmonyBundle definitions. The
  // whole set registers as one application instance at commit().
  Status bundle_setup(const std::string& bundle_definition);
  // harmony_add_variable: declares a variable the application will
  // poll. Returns stable storage for its current value.
  const std::string* add_variable(const std::string& name,
                                  std::string default_value);
  // Sends the accumulated bundles to Harmony and subscribes for
  // updates. Implied by the first poll_updates()/wait_for_update().
  Status commit();

  // Applies buffered updates to declared variables; returns true if any
  // variable changed. (The polling half of harmony_wait_for_update.)
  bool poll_updates();

  // Interrupt mode (harmony_startup's <use interrupts>): when enabled,
  // updates are applied the moment they arrive and the callback fires —
  // the prototype's "I/O event handler function is called when the
  // Harmony process sends variable updates". Without a callback set,
  // interrupt mode still applies updates eagerly.
  using InterruptHandler = std::function<void(const std::string& name,
                                              const std::string& value)>;
  void set_interrupt_handler(InterruptHandler handler) {
    interrupt_handler_ = std::move(handler);
  }
  bool use_interrupts() const { return use_interrupts_; }
  // harmony_wait_for_update: commits if needed, then applies buffered
  // updates; with an in-process controller updates are already pushed,
  // so this is poll_updates() plus registration.
  Status wait_for_update();

  // harmony_end.
  Status end();

  bool registered() const { return registered_; }
  core::InstanceId instance_id() const { return instance_id_; }

  // Typed variable reads (current applied value).
  std::string var(const std::string& name) const;
  double var_number(const std::string& name, double fallback = 0.0) const;
  // Whole-list variable helper ("<bundle>.<role>.nodes").
  std::vector<std::string> var_list(const std::string& name) const;

  // Pull a value straight from the server's namespace (bypasses the
  // variable registry).
  Result<std::string> fetch(const std::string& name);

 private:
  void apply_update(const std::string& name, const std::string& value);

  Transport* transport_;
  std::string unique_id_;
  std::vector<std::string> bundle_scripts_;
  bool registered_ = false;
  bool ended_ = false;
  bool use_interrupts_ = false;
  InterruptHandler interrupt_handler_;
  core::InstanceId instance_id_ = 0;

  // Declared variables: applied values (stable addresses for the
  // Figure 5 pointer contract) and the pending-update buffer.
  std::map<std::string, std::unique_ptr<std::string>> variables_;
  std::vector<std::pair<std::string, std::string>> pending_;
};

}  // namespace harmony::client
