// The "Bag" application of §3.4: an iterative bag-of-tasks computation.
// Each iteration has a sequential master phase followed by a pool of
// unevenly-sized tasks that idle workers pull, compute, and return —
// "relatively crude load-balancing on arbitrarily-shaped tasks". The
// worker count is a Harmony variable; by default the app re-reads it at
// the end of each iteration (its natural reconfiguration granularity,
// like the paper's outer-loop HPF example). With `malleable` set, the
// app runs in interrupt mode instead and applies assignment changes
// *mid-iteration*: newly assigned workers join the pull loop
// immediately, de-assigned workers finish their in-flight task and
// retire — the DMR-style worker join/retire protocol.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/sim_context.h"
#include "client/client.h"
#include "common/rng.h"

namespace harmony::apps {

struct BagConfig {
  int instance = 1;
  uint64_t seed = 2;
  // Per-iteration work: sequential master phase + task pool.
  double sequential_ref_s = 100.0;
  double parallel_ref_s = 1000.0;
  int tasks_per_iteration = 100;
  double task_jitter = 0.3;      // task sizes vary +-30%
  double task_message_mb = 0.05; // fetch + return messages
  std::string workers = "1 2 3 4 5 6 7 8";
  double granularity_s = 0.0;
  int max_iterations = 0;  // 0 = run until stop()
  // Live malleability: run in interrupt mode and apply worker
  // assignment changes mid-iteration (join/retire) instead of only at
  // iteration boundaries.
  bool malleable = false;
};

// Figure 2(b)-style bundle whose performance points match what this
// app measurably does: t(w) ~= sequential + parallel/w. Fails with
// kInvalidArgument when `config.workers` is empty or contains a
// non-numeric or nonpositive count (which would otherwise emit a
// division-by-zero performance point).
Result<std::string> bag_bundle_script(const BagConfig& config);

class BagApp {
 public:
  BagApp(SimContext ctx, BagConfig config);

  Status start();
  // Finishes the current iteration, then deregisters.
  void stop();
  bool finished() const { return finished_; }

  int iterations_completed() const { return iterations_completed_; }
  int current_workers() const { return static_cast<int>(worker_nodes_.size()); }
  const std::string& metric_name() const { return metric_name_; }
  core::InstanceId instance_id() const { return client_->instance_id(); }

 private:
  void begin_iteration();
  void run_parallel_phase();
  // One worker's pull loop, keyed by node identity so the loop stays
  // attached to its node while the assignment list changes underneath.
  void worker_pull(cluster::NodeId worker);
  void start_pull_loop(cluster::NodeId worker);
  void retire_pull_loop(cluster::NodeId worker);
  void end_iteration();
  // True while `worker` appears in the current assignment.
  bool is_active(cluster::NodeId worker) const;
  // Re-reads the assignment variable into worker_nodes_.
  Status apply_worker_list();
  Status refresh_workers();
  // Interrupt-mode reaction to a mid-iteration assignment change.
  void on_workers_changed();

  SimContext ctx_;
  BagConfig config_;
  std::unique_ptr<client::InProcTransport> transport_;
  std::unique_ptr<client::HarmonyClient> client_;
  Rng rng_;
  std::vector<cluster::NodeId> worker_nodes_;
  cluster::NodeId master_node_ = 0;  // fixed for the iteration in flight
  std::vector<double> task_pool_;  // remaining task sizes (ref seconds)
  int tasks_outstanding_ = 0;
  // Running pull loops per node; a grow only starts loops the node does
  // not already have, a shrink retires loops lazily at their next pull.
  std::map<cluster::NodeId, int> active_loops_;
  bool in_parallel_phase_ = false;
  // Malleable mode, zero workers assigned: the app idles until the next
  // assignment interrupt instead of crashing or giving up.
  bool waiting_for_workers_ = false;
  double iteration_started_ = 0;
  int iterations_completed_ = 0;
  bool stop_requested_ = false;
  bool finished_ = false;
  std::string metric_name_;
};

}  // namespace harmony::apps
