#include "rsl/spec.h"

#include <gtest/gtest.h>

namespace harmony::rsl {
namespace {

// --- Constraint ---------------------------------------------------------------

TEST(Constraint, ParseForms) {
  auto any = Constraint::parse("*");
  ASSERT_TRUE(any.ok());
  EXPECT_EQ(any.value().op, Constraint::Op::kAny);

  auto eq = Constraint::parse("32");
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq.value().op, Constraint::Op::kEq);
  EXPECT_DOUBLE_EQ(eq.value().value, 32);

  auto ge = Constraint::parse(">=17");
  ASSERT_TRUE(ge.ok());
  EXPECT_EQ(ge.value().op, Constraint::Op::kGe);
  EXPECT_DOUBLE_EQ(ge.value().value, 17);

  auto le = Constraint::parse("<= 8");
  ASSERT_TRUE(le.ok());
  EXPECT_EQ(le.value().op, Constraint::Op::kLe);

  EXPECT_FALSE(Constraint::parse(">=x").ok());
  EXPECT_FALSE(Constraint::parse("abc").ok());
}

TEST(Constraint, Satisfaction) {
  auto ge = Constraint::parse(">=17").value();
  EXPECT_TRUE(ge.satisfied_by(17));
  EXPECT_TRUE(ge.satisfied_by(64));
  EXPECT_FALSE(ge.satisfied_by(16));
  EXPECT_DOUBLE_EQ(ge.minimum(), 17);

  // Paper semantics: an exact memory requirement is a minimum the node
  // must meet; more memory is acceptable.
  auto eq = Constraint::parse("32").value();
  EXPECT_TRUE(eq.satisfied_by(32));
  EXPECT_TRUE(eq.satisfied_by(128));
  EXPECT_FALSE(eq.satisfied_by(16));

  auto any = Constraint::parse("*").value();
  EXPECT_TRUE(any.satisfied_by(0));
  EXPECT_DOUBLE_EQ(any.minimum(), 0);
}

TEST(Constraint, RoundTripToString) {
  for (const char* text : {"*", "32", ">=17", "<=8"}) {
    auto c = Constraint::parse(text).value();
    auto again = Constraint::parse(c.to_string()).value();
    EXPECT_EQ(again.op, c.op) << text;
    EXPECT_DOUBLE_EQ(again.value, c.value) << text;
  }
}

// --- Expr ---------------------------------------------------------------------

TEST(SpecExpr, ConstantDetection) {
  EXPECT_TRUE(Expr{"42"}.is_constant());
  EXPECT_TRUE(Expr{"3.5"}.is_constant());
  EXPECT_FALSE(Expr{"a + 1"}.is_constant());
  EXPECT_FALSE(Expr{""}.is_constant());
}

TEST(SpecExpr, EmptyEvaluatesToZero) {
  EXPECT_DOUBLE_EQ(Expr{}.eval_constant().value(), 0.0);
}

TEST(SpecExpr, EvaluatesWithContext) {
  ExprContext ctx;
  ctx.name_lookup = [](const std::string& name, double* out) {
    if (name != "workerNodes") return false;
    *out = 4;
    return true;
  };
  EXPECT_DOUBLE_EQ(Expr{"1200.0 / workerNodes"}.eval(ctx).value(), 300.0);
}

// --- app:instance --------------------------------------------------------------

TEST(AppInstance, Parsing) {
  auto r = parse_app_instance("DBclient:1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().first, "DBclient");
  EXPECT_EQ(r.value().second, "1");

  r = parse_app_instance("Bag");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().first, "Bag");
  EXPECT_EQ(r.value().second, "0");

  EXPECT_FALSE(parse_app_instance(":1").ok());
  EXPECT_FALSE(parse_app_instance("a:b:c").ok());
}

// --- Bundles -------------------------------------------------------------------

// The paper's Figure 3 client-server database bundle.
constexpr const char* kDbBundle = R"(
  {QS
    {node server {hostname harmony.cs.umd.edu} {seconds 42} {memory 20}}
    {node client {hostname *} {os linux} {seconds 1} {memory 2}}
    {link client server 10}}
  {DS
    {node server {hostname harmony.cs.umd.edu} {seconds 1} {memory 20}}
    {node client {hostname *} {os linux} {memory >=17} {seconds 9}}
    {link client server {44 + (client.memory > 24 ? 24 : client.memory) - 17}}}
)";

TEST(ParseBundle, PaperDatabaseBundle) {
  auto r = parse_bundle("DBclient:1", "where", kDbBundle);
  ASSERT_TRUE(r.ok()) << r.ok() << (r.ok() ? "" : r.error().message);
  const BundleSpec& b = r.value();
  EXPECT_EQ(b.application, "DBclient");
  EXPECT_EQ(b.instance, "1");
  EXPECT_EQ(b.bundle, "where");
  ASSERT_EQ(b.options.size(), 2u);

  const OptionSpec* qs = b.find_option("QS");
  ASSERT_NE(qs, nullptr);
  ASSERT_EQ(qs->nodes.size(), 2u);
  EXPECT_EQ(qs->nodes[0].role, "server");
  EXPECT_EQ(qs->nodes[0].hostname, "harmony.cs.umd.edu");
  EXPECT_DOUBLE_EQ(qs->nodes[0].seconds.eval_constant().value(), 42.0);
  EXPECT_DOUBLE_EQ(qs->nodes[0].memory.minimum(), 20.0);
  EXPECT_EQ(qs->nodes[1].os, "linux");
  ASSERT_EQ(qs->links.size(), 1u);
  EXPECT_EQ(qs->links[0].from, "client");
  EXPECT_EQ(qs->links[0].to, "server");
  EXPECT_DOUBLE_EQ(qs->links[0].megabytes.eval_constant().value(), 10.0);

  const OptionSpec* ds = b.find_option("DS");
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->nodes[1].memory.op, Constraint::Op::kGe);
  EXPECT_DOUBLE_EQ(ds->nodes[1].memory.value, 17.0);
  EXPECT_FALSE(ds->links[0].megabytes.is_constant());

  // The DS bandwidth expression from the paper must evaluate correctly.
  ExprContext ctx;
  ctx.name_lookup = [](const std::string& name, double* out) {
    if (name != "client.memory") return false;
    *out = 32;
    return true;
  };
  EXPECT_DOUBLE_EQ(ds->links[0].megabytes.eval(ctx).value(), 51.0);
}

// Figure 2(a): the Simple parallel application.
TEST(ParseBundle, SimpleParallelApp) {
  auto r = parse_bundle("Simple:1", "config", R"(
    {fixed
      {node worker {seconds 300} {memory 32} {replicate 4}}
      {communication 100}}
  )");
  ASSERT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  const auto& option = r.value().options[0];
  EXPECT_EQ(option.name, "fixed");
  ASSERT_EQ(option.nodes.size(), 1u);
  EXPECT_DOUBLE_EQ(option.nodes[0].replicate.eval_constant().value(), 4.0);
  EXPECT_DOUBLE_EQ(option.communication.eval_constant().value(), 100.0);
}

// Figure 2(b): Bag with variable parallelism, parameterized seconds,
// quadratic communication, and an explicit performance model.
TEST(ParseBundle, BagOfTasksApp) {
  auto r = parse_bundle("Bag:1", "parallelism", R"(
    {var
      {variable workerNodes {1 2 4 8}}
      {node worker {seconds {1200.0 / workerNodes}} {memory 16}
            {replicate {workerNodes}}}
      {communication {0.5 * workerNodes * workerNodes}}
      {performance {{1 1250} {2 640} {4 340} {5 290} {6 270} {7 260} {8 255}}}
      {granularity 10}}
  )");
  ASSERT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  const auto& option = r.value().options[0];
  ASSERT_EQ(option.variables.size(), 1u);
  EXPECT_EQ(option.variables[0].name, "workerNodes");
  EXPECT_EQ(option.variables[0].values,
            (std::vector<double>{1, 2, 4, 8}));
  ASSERT_EQ(option.performance_points.size(), 7u);
  EXPECT_DOUBLE_EQ(option.performance_points[0].y, 1250);
  EXPECT_DOUBLE_EQ(option.granularity_s, 10);

  ExprContext ctx;
  ctx.name_lookup = [](const std::string& name, double* out) {
    if (name != "workerNodes") return false;
    *out = 8;
    return true;
  };
  EXPECT_DOUBLE_EQ(option.nodes[0].seconds.eval(ctx).value(), 150.0);
  EXPECT_DOUBLE_EQ(option.communication.eval(ctx).value(), 32.0);
}

TEST(ParseBundle, PerformanceScript) {
  auto r = parse_bundle("App", "b", R"(
    {opt
      {node n {seconds 10} {memory 1}}
      {performance script {return [expr {1200.0 / $workerNodes}]}}}
  )");
  ASSERT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  EXPECT_FALSE(r.value().options[0].performance_script.empty());
}

TEST(ParseBundle, Friction) {
  auto r = parse_bundle("App", "b", R"(
    {opt {node n {seconds 10} {memory 1}} {friction 30}}
  )");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().options[0].friction_s, 30.0);
}

TEST(ParseBundle, DeadlinePeriodAndTardiness) {
  auto r = parse_bundle("App", "b", R"(
    {serve
      {node server {seconds 20} {memory 32}}
      {period 30}
      {tardiness 5}}
    {strict
      {node server {seconds 20} {memory 32}}
      {deadline 25}
      {period 30}}
  )");
  ASSERT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  const OptionSpec& periodic = r.value().options[0];
  EXPECT_DOUBLE_EQ(periodic.period_s, 30.0);
  EXPECT_DOUBLE_EQ(periodic.tardiness_weight, 5.0);
  // No explicit deadline: the period is the implicit one.
  EXPECT_DOUBLE_EQ(periodic.effective_deadline_s(), 30.0);
  const OptionSpec& strict = r.value().options[1];
  // An explicit deadline wins over the period.
  EXPECT_DOUBLE_EQ(strict.effective_deadline_s(), 25.0);
  // No deadline tags at all: the option carries no deadline.
  auto plain = parse_bundle("A", "b", "{o {node n {seconds 1} {memory 1}}}");
  ASSERT_TRUE(plain.ok());
  EXPECT_DOUBLE_EQ(plain.value().options[0].effective_deadline_s(), 0.0);
}

TEST(ParseBundle, Rejections) {
  // No options.
  EXPECT_FALSE(parse_bundle("A", "b", "").ok());
  // Empty bundle name.
  EXPECT_FALSE(parse_bundle("A", "", "{o {node n {seconds 1}}}").ok());
  // Duplicate option names.
  EXPECT_FALSE(parse_bundle("A", "b",
                            "{o {node n {seconds 1}}} {o {node n {seconds 2}}}")
                   .ok());
  // Unknown option tag.
  EXPECT_FALSE(parse_bundle("A", "b", "{o {frobnicate 3}}").ok());
  // Unknown node tag.
  EXPECT_FALSE(parse_bundle("A", "b", "{o {node n {cycles 5}}}").ok());
  // Malformed link.
  EXPECT_FALSE(parse_bundle("A", "b", "{o {link a b}}").ok());
  // Non-numeric variable values.
  EXPECT_FALSE(parse_bundle("A", "b", "{o {variable v {1 x}}}").ok());
  // Performance points with non-increasing x.
  EXPECT_FALSE(
      parse_bundle("A", "b", "{o {performance {{2 10} {1 20}}}}").ok());
  // Malformed performance point.
  EXPECT_FALSE(parse_bundle("A", "b", "{o {performance {{1 2 3}}}}").ok());
  // Non-finite performance points (the div-by-zero scaling-law bug).
  EXPECT_FALSE(parse_bundle("A", "b", "{o {performance {{1 inf}}}}").ok());
  EXPECT_FALSE(parse_bundle("A", "b", "{o {performance {{1 nan}}}}").ok());
  // Nonpositive deadline/period/tardiness values.
  EXPECT_FALSE(
      parse_bundle("A", "b", "{o {node n {seconds 1}} {period 0}}").ok());
  EXPECT_FALSE(
      parse_bundle("A", "b", "{o {node n {seconds 1}} {deadline -5}}").ok());
  EXPECT_FALSE(
      parse_bundle("A", "b", "{o {node n {seconds 1}} {tardiness -1}}").ok());
}

// --- harmonyNode ----------------------------------------------------------------

TEST(ParseNodeAd, Full) {
  // Arguments arrive brace-stripped, as the interpreter delivers them.
  auto r = parse_node_ad({"harmonyNode", "sp2-01", "speed 1.25",
                          "memory 256", "os aix", "link sp2-02 40 0.1"});
  ASSERT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  const NodeAd& ad = r.value();
  EXPECT_EQ(ad.name, "sp2-01");
  EXPECT_DOUBLE_EQ(ad.speed, 1.25);
  EXPECT_DOUBLE_EQ(ad.memory_mb, 256);
  EXPECT_EQ(ad.os, "aix");
  ASSERT_EQ(ad.links.size(), 1u);
  EXPECT_EQ(ad.links[0].peer, "sp2-02");
  EXPECT_DOUBLE_EQ(ad.links[0].bandwidth_mbps, 40);
  EXPECT_DOUBLE_EQ(ad.links[0].latency_ms, 0.1);
}

TEST(ParseNodeAd, DefaultsAndRejections) {
  auto r = parse_node_ad({"harmonyNode", "plain"});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().speed, 1.0);

  EXPECT_FALSE(parse_node_ad({"harmonyNode"}).ok());
  EXPECT_FALSE(parse_node_ad({"harmonyNode", "x", "speed 0"}).ok());
  EXPECT_FALSE(parse_node_ad({"harmonyNode", "x", "speed -1"}).ok());
  EXPECT_FALSE(parse_node_ad({"harmonyNode", "x", "memory -5"}).ok());
  EXPECT_FALSE(parse_node_ad({"harmonyNode", "x", "link peer 0"}).ok());
  EXPECT_FALSE(parse_node_ad({"harmonyNode", "x", "unknown 1"}).ok());
}

}  // namespace
}  // namespace harmony::rsl
