#include "rsl/expr.h"

#include <cctype>
#include <cmath>
#include <vector>

#include "common/strings.h"

namespace harmony::rsl {

namespace {

struct EValue {
  bool is_number = true;
  double number = 0.0;
  std::string text;

  static EValue num(double v) { return EValue{true, v, {}}; }
  static EValue str(std::string s) { return EValue{false, 0.0, std::move(s)}; }

  bool truthy() const {
    if (is_number) return number != 0.0;
    return !text.empty() && text != "0" && text != "false" && text != "no";
  }
};

class ExprParser {
 public:
  ExprParser(std::string_view text, const ExprContext& ctx)
      : text_(text), ctx_(ctx) {}

  Result<EValue> run() {
    auto value = parse_ternary();
    if (!value.ok()) return value;
    skip_space();
    if (pos_ < text_.size()) {
      return fail(str_format("unexpected character '%c' at offset %zu",
                             text_[pos_], pos_));
    }
    return value;
  }

 private:
  Result<EValue> fail(const std::string& message) const {
    return Err<EValue>(ErrorCode::kEvalError,
                       "expr \"" + std::string(text_) + "\": " + message);
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool match(std::string_view token) {
    skip_space();
    if (text_.substr(pos_).size() < token.size()) return false;
    if (text_.substr(pos_, token.size()) != token) return false;
    // Avoid matching a prefix of a longer operator (e.g. '<' in '<=',
    // '&' in '&&', '*' in '**', '=' in '==').
    char next = pos_ + token.size() < text_.size() ? text_[pos_ + token.size()] : '\0';
    if ((token == "<" || token == ">") && next == '=') return false;
    if (token == "*" && next == '*') return false;
    if (token == "=" ) return false;  // only '==' is valid
    if (token == "!" && next == '=') return false;
    pos_ += token.size();
    return true;
  }

  bool peek_is(char c) {
    skip_space();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  Result<EValue> parse_ternary() {
    auto cond = parse_or();
    if (!cond.ok()) return cond;
    skip_space();
    if (!match("?")) return cond;
    auto then_value = parse_ternary();
    if (!then_value.ok()) return then_value;
    skip_space();
    if (!match(":")) return fail("expected ':' in ternary");
    auto else_value = parse_ternary();
    if (!else_value.ok()) return else_value;
    return cond.value().truthy() ? then_value : else_value;
  }

  Result<EValue> parse_or() {
    auto lhs = parse_and();
    if (!lhs.ok()) return lhs;
    while (match("||")) {
      auto rhs = parse_and();
      if (!rhs.ok()) return rhs;
      lhs = EValue::num((lhs.value().truthy() || rhs.value().truthy()) ? 1 : 0);
    }
    return lhs;
  }

  Result<EValue> parse_and() {
    auto lhs = parse_equality();
    if (!lhs.ok()) return lhs;
    while (match("&&")) {
      auto rhs = parse_equality();
      if (!rhs.ok()) return rhs;
      lhs = EValue::num((lhs.value().truthy() && rhs.value().truthy()) ? 1 : 0);
    }
    return lhs;
  }

  Result<EValue> parse_equality() {
    auto lhs = parse_relational();
    if (!lhs.ok()) return lhs;
    while (true) {
      bool eq;
      if (match("==") || match_word("eq")) {
        eq = true;
      } else if (match("!=") || match_word("ne")) {
        eq = false;
      } else {
        return lhs;
      }
      auto rhs = parse_relational();
      if (!rhs.ok()) return rhs;
      bool equal;
      const EValue& a = lhs.value();
      const EValue& b = rhs.value();
      if (a.is_number && b.is_number) {
        equal = a.number == b.number;
      } else {
        equal = as_string(a) == as_string(b);
      }
      lhs = EValue::num((equal == eq) ? 1 : 0);
    }
  }

  Result<EValue> parse_relational() {
    auto lhs = parse_additive();
    if (!lhs.ok()) return lhs;
    while (true) {
      int op;
      if (match("<=")) op = 0;
      else if (match(">=")) op = 1;
      else if (match("<")) op = 2;
      else if (match(">")) op = 3;
      else return lhs;
      auto rhs = parse_additive();
      if (!rhs.ok()) return rhs;
      auto a = to_number(lhs.value());
      auto b = to_number(rhs.value());
      if (!a.ok()) return Err<EValue>(a.error().code, a.error().message);
      if (!b.ok()) return Err<EValue>(b.error().code, b.error().message);
      bool r = false;
      switch (op) {
        case 0: r = a.value() <= b.value(); break;
        case 1: r = a.value() >= b.value(); break;
        case 2: r = a.value() < b.value(); break;
        case 3: r = a.value() > b.value(); break;
      }
      lhs = EValue::num(r ? 1 : 0);
    }
  }

  Result<EValue> parse_additive() {
    auto lhs = parse_multiplicative();
    if (!lhs.ok()) return lhs;
    while (true) {
      int op;
      if (match("+")) op = 0;
      else if (match("-")) op = 1;
      else return lhs;
      auto rhs = parse_multiplicative();
      if (!rhs.ok()) return rhs;
      auto a = to_number(lhs.value());
      auto b = to_number(rhs.value());
      if (!a.ok()) return Err<EValue>(a.error().code, a.error().message);
      if (!b.ok()) return Err<EValue>(b.error().code, b.error().message);
      lhs = EValue::num(op == 0 ? a.value() + b.value() : a.value() - b.value());
    }
  }

  Result<EValue> parse_multiplicative() {
    auto lhs = parse_unary();
    if (!lhs.ok()) return lhs;
    while (true) {
      int op;
      if (match("*")) op = 0;
      else if (match("/")) op = 1;
      else if (match("%")) op = 2;
      else return lhs;
      auto rhs = parse_unary();
      if (!rhs.ok()) return rhs;
      auto a = to_number(lhs.value());
      auto b = to_number(rhs.value());
      if (!a.ok()) return Err<EValue>(a.error().code, a.error().message);
      if (!b.ok()) return Err<EValue>(b.error().code, b.error().message);
      if (op != 0 && b.value() == 0.0) return fail("division by zero");
      switch (op) {
        case 0: lhs = EValue::num(a.value() * b.value()); break;
        case 1: lhs = EValue::num(a.value() / b.value()); break;
        case 2: lhs = EValue::num(std::fmod(a.value(), b.value())); break;
      }
    }
  }

  Result<EValue> parse_unary() {
    skip_space();
    if (match("!")) {
      auto operand = parse_unary();
      if (!operand.ok()) return operand;
      return EValue::num(operand.value().truthy() ? 0 : 1);
    }
    if (match("-")) {
      auto operand = parse_unary();
      if (!operand.ok()) return operand;
      auto n = to_number(operand.value());
      if (!n.ok()) return Err<EValue>(n.error().code, n.error().message);
      return EValue::num(-n.value());
    }
    if (match("+")) return parse_unary();
    return parse_power();
  }

  Result<EValue> parse_power() {
    auto base = parse_primary();
    if (!base.ok()) return base;
    skip_space();
    if (pos_ + 1 < text_.size() && text_[pos_] == '*' &&
        text_[pos_ + 1] == '*') {
      pos_ += 2;
      auto exp = parse_unary();  // right associative
      if (!exp.ok()) return exp;
      auto a = to_number(base.value());
      auto b = to_number(exp.value());
      if (!a.ok()) return Err<EValue>(a.error().code, a.error().message);
      if (!b.ok()) return Err<EValue>(b.error().code, b.error().message);
      return EValue::num(std::pow(a.value(), b.value()));
    }
    return base;
  }

  Result<EValue> parse_primary() {
    skip_space();
    if (pos_ >= text_.size()) return fail("unexpected end of expression");
    char c = text_[pos_];

    if (c == '(') {
      ++pos_;
      auto inner = parse_ternary();
      if (!inner.ok()) return inner;
      skip_space();
      if (!match(")")) return fail("expected ')'");
      return inner;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      return parse_number();
    }

    if (c == '"' || c == '{') return parse_string(c);

    if (c == '[') {
      if (!ctx_.cmd_eval) return fail("no command context for [..]");
      ++pos_;
      int depth = 1;
      size_t start = pos_;
      while (pos_ < text_.size() && depth > 0) {
        if (text_[pos_] == '[') ++depth;
        if (text_[pos_] == ']') --depth;
        if (depth > 0) ++pos_;
      }
      if (depth != 0) return fail("unbalanced brackets");
      std::string script(text_.substr(start, pos_ - start));
      ++pos_;  // closing bracket
      auto result = ctx_.cmd_eval(script);
      if (!result.ok()) {
        return Err<EValue>(result.error().code, result.error().message);
      }
      double number = 0;
      if (parse_double(result.value(), &number)) return EValue::num(number);
      return EValue::str(std::move(result).value());
    }

    if (c == '$') {
      ++pos_;
      std::string name = parse_identifier();
      if (name.empty()) return fail("expected variable name after '$'");
      if (!ctx_.var_lookup) return fail("no variable context for $" + name);
      std::string value;
      if (!ctx_.var_lookup(name, &value)) {
        return fail("no such variable: " + name);
      }
      double number = 0;
      if (parse_double(value, &number)) return EValue::num(number);
      return EValue::str(std::move(value));
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string name = parse_identifier();
      skip_space();
      if (peek_is('(')) return parse_function_call(name);
      // Bare dotted identifier: resolve via the namespace hook, falling
      // back to interpreter variables so `expr {x + 1}` works.
      if (ctx_.name_lookup) {
        double value = 0;
        if (ctx_.name_lookup(name, &value)) return EValue::num(value);
      }
      if (ctx_.var_lookup) {
        std::string value;
        if (ctx_.var_lookup(name, &value)) {
          double number = 0;
          if (parse_double(value, &number)) return EValue::num(number);
          return EValue::str(std::move(value));
        }
      }
      return fail("cannot resolve identifier: " + name);
    }

    return fail(str_format("unexpected character '%c'", c));
  }

  Result<EValue> parse_number() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    double value = 0;
    if (!parse_double(text_.substr(start, pos_ - start), &value)) {
      return fail("malformed number");
    }
    return EValue::num(value);
  }

  Result<EValue> parse_string(char open) {
    char close = open == '{' ? '}' : '"';
    ++pos_;
    std::string out;
    int depth = 1;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (open == '{') {
        if (c == '{') ++depth;
        if (c == '}' && --depth == 0) break;
      } else if (c == close) {
        break;
      }
      out.push_back(c);
      ++pos_;
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // closing delimiter
    return EValue::str(std::move(out));
  }

  std::string parse_identifier() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '.' || text_[pos_] == ':')) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<EValue> parse_function_call(const std::string& name) {
    match("(");
    std::vector<double> args;
    skip_space();
    if (!peek_is(')')) {
      while (true) {
        auto arg = parse_ternary();
        if (!arg.ok()) return arg;
        auto n = to_number(arg.value());
        if (!n.ok()) return Err<EValue>(n.error().code, n.error().message);
        args.push_back(n.value());
        skip_space();
        if (match(",")) continue;
        break;
      }
    }
    if (!match(")")) return fail("expected ')' after function arguments");
    return apply_function(name, args);
  }

  Result<EValue> apply_function(const std::string& name,
                                const std::vector<double>& args) {
    auto arity = [&](size_t n) { return args.size() == n; };
    if (name == "abs" && arity(1)) return EValue::num(std::fabs(args[0]));
    if (name == "sqrt" && arity(1)) {
      if (args[0] < 0) return fail("sqrt of negative number");
      return EValue::num(std::sqrt(args[0]));
    }
    if (name == "exp" && arity(1)) return EValue::num(std::exp(args[0]));
    if (name == "log" && arity(1)) {
      if (args[0] <= 0) return fail("log of non-positive number");
      return EValue::num(std::log(args[0]));
    }
    if (name == "log10" && arity(1)) {
      if (args[0] <= 0) return fail("log10 of non-positive number");
      return EValue::num(std::log10(args[0]));
    }
    if (name == "floor" && arity(1)) return EValue::num(std::floor(args[0]));
    if (name == "ceil" && arity(1)) return EValue::num(std::ceil(args[0]));
    if (name == "round" && arity(1)) return EValue::num(std::round(args[0]));
    if (name == "int" && arity(1)) return EValue::num(std::trunc(args[0]));
    if (name == "pow" && arity(2)) return EValue::num(std::pow(args[0], args[1]));
    if (name == "fmod" && arity(2)) {
      if (args[1] == 0) return fail("fmod by zero");
      return EValue::num(std::fmod(args[0], args[1]));
    }
    if ((name == "min" || name == "max") && args.size() >= 1) {
      double acc = args[0];
      for (double a : args) acc = name == "min" ? std::min(acc, a) : std::max(acc, a);
      return EValue::num(acc);
    }
    return fail("unknown function: " + name + "()");
  }

  static std::string as_string(const EValue& value) {
    return value.is_number ? format_number(value.number) : value.text;
  }

  Result<double> to_number(const EValue& value) const {
    if (value.is_number) return value.number;
    double parsed = 0;
    if (parse_double(value.text, &parsed)) return parsed;
    return Err<double>(ErrorCode::kEvalError,
                       "expected a number, got \"" + value.text + "\"");
  }

  bool match_word(std::string_view word) {
    skip_space();
    if (text_.substr(pos_, word.size()) != word) return false;
    size_t after = pos_ + word.size();
    if (after < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[after])) ||
         text_[after] == '_')) {
      return false;
    }
    pos_ = after;
    return true;
  }

  std::string_view text_;
  const ExprContext& ctx_;
  size_t pos_ = 0;
};

}  // namespace

Result<double> expr_eval_number(std::string_view text, const ExprContext& ctx) {
  auto value = ExprParser(text, ctx).run();
  if (!value.ok()) return Err<double>(value.error().code, value.error().message);
  if (!value.value().is_number) {
    double parsed = 0;
    if (parse_double(value.value().text, &parsed)) return parsed;
    return Err<double>(ErrorCode::kEvalError,
                       "expression result is not a number: \"" +
                           value.value().text + "\"");
  }
  return value.value().number;
}

Result<std::string> expr_eval(std::string_view text, const ExprContext& ctx) {
  auto value = ExprParser(text, ctx).run();
  if (!value.ok()) {
    return Err<std::string>(value.error().code, value.error().message);
  }
  if (value.value().is_number) return format_number(value.value().number);
  return value.value().text;
}

}  // namespace harmony::rsl
