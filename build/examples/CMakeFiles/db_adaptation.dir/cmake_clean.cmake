file(REMOVE_RECURSE
  "CMakeFiles/db_adaptation.dir/db_adaptation.cpp.o"
  "CMakeFiles/db_adaptation.dir/db_adaptation.cpp.o.d"
  "db_adaptation"
  "db_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
