#include "rsl/rsl.h"

#include <gtest/gtest.h>

namespace harmony::rsl {
namespace {

TEST(RslHost, BundleCallbackReceivesParsedSpec) {
  RslHost host;
  std::vector<BundleSpec> bundles;
  host.on_bundle([&](const BundleSpec& bundle) {
    bundles.push_back(bundle);
    return Status::Ok();
  });

  Interp interp;
  host.register_with(interp);
  auto r = interp.eval(R"(harmonyBundle Bag:1 parallelism {
    {var
      {variable workerNodes {1 2 4 8}}
      {node worker {seconds {1200.0 / workerNodes}} {memory 16}
            {replicate {workerNodes}}}
      {communication {0.5 * workerNodes * workerNodes}}}
  })");
  ASSERT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  EXPECT_EQ(r.value(), "Bag.1.parallelism");
  ASSERT_EQ(bundles.size(), 1u);
  EXPECT_EQ(bundles[0].application, "Bag");
  EXPECT_EQ(bundles[0].options[0].variables[0].name, "workerNodes");
}

TEST(RslHost, NodeCallbackReceivesAd) {
  RslHost host;
  std::vector<NodeAd> nodes;
  host.on_node([&](const NodeAd& ad) {
    nodes.push_back(ad);
    return Status::Ok();
  });

  Interp interp;
  host.register_with(interp);
  ASSERT_TRUE(interp
                  .eval("harmonyNode sp2-01 {speed 1.0} {memory 128} {os aix}\n"
                        "harmonyNode sp2-02 {speed 1.0} {memory 128} {os aix}")
                  .ok());
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[1].name, "sp2-02");
}

TEST(RslHost, HandlerErrorPropagates) {
  RslHost host;
  host.on_bundle([](const BundleSpec&) {
    return Status(ErrorCode::kAlreadyExists, "duplicate bundle");
  });
  Interp interp;
  host.register_with(interp);
  auto r = interp.eval("harmonyBundle A:1 b {{o {node n {seconds 1}}}}");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kAlreadyExists);
}

TEST(RslHost, MalformedBundleIsError) {
  RslHost host;
  Interp interp;
  host.register_with(interp);
  EXPECT_FALSE(interp.eval("harmonyBundle A:1 b {{o {frobnicate}}}").ok());
  EXPECT_FALSE(interp.eval("harmonyBundle A:1 b").ok());  // arity
}

TEST(RslHost, ScriptsCanComputeBundlesProgrammatically) {
  // Applications generate bundles with loops — the RSL is a real
  // language, not a config format.
  RslHost host;
  std::vector<BundleSpec> bundles;
  host.on_bundle([&](const BundleSpec& bundle) {
    bundles.push_back(bundle);
    return Status::Ok();
  });
  Interp interp;
  host.register_with(interp);
  auto r = interp.eval(R"(
set opts {}
foreach n {2 4 8} {
  lappend opts [list p$n [list node worker [list seconds [expr {600.0 / $n}]] {memory 8} [list replicate $n]]]
}
harmonyBundle Sweep:1 width $opts
)");
  ASSERT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  ASSERT_EQ(bundles.size(), 1u);
  ASSERT_EQ(bundles[0].options.size(), 3u);
  EXPECT_EQ(bundles[0].options[0].name, "p2");
  EXPECT_DOUBLE_EQ(
      bundles[0].options[2].nodes[0].replicate.eval_constant().value(), 8.0);
  EXPECT_DOUBLE_EQ(
      bundles[0].options[1].nodes[0].seconds.eval_constant().value(), 150.0);
}

TEST(RslHost, EvalScriptConvenience) {
  RslHost host;
  int count = 0;
  host.on_node([&](const NodeAd&) {
    ++count;
    return Status::Ok();
  });
  auto status = host.eval_script("harmonyNode a {speed 2}\nharmonyNode b");
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(host.eval_script("harmonyNode").ok());
}

}  // namespace
}  // namespace harmony::rsl
