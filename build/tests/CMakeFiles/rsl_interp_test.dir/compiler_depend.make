# Empty compiler generated dependencies file for rsl_interp_test.
# This may be replaced when dependencies are built.
