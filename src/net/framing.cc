#include "net/framing.h"

namespace harmony::net {

std::string encode_frame(std::string_view payload) {
  HARMONY_ASSERT(payload.size() <= kMaxFrameBytes);
  uint32_t length = static_cast<uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>((length >> 24) & 0xFF));
  out.push_back(static_cast<char>((length >> 16) & 0xFF));
  out.push_back(static_cast<char>((length >> 8) & 0xFF));
  out.push_back(static_cast<char>(length & 0xFF));
  out.append(payload);
  return out;
}

Result<std::optional<std::string>> FrameBuffer::next_frame() {
  if (buffer_.size() < 4) return std::optional<std::string>{};
  uint32_t length = (static_cast<uint32_t>(static_cast<uint8_t>(buffer_[0])) << 24) |
                    (static_cast<uint32_t>(static_cast<uint8_t>(buffer_[1])) << 16) |
                    (static_cast<uint32_t>(static_cast<uint8_t>(buffer_[2])) << 8) |
                    static_cast<uint32_t>(static_cast<uint8_t>(buffer_[3]));
  if (length > kMaxFrameBytes) {
    return Err<std::optional<std::string>>(ErrorCode::kProtocol,
                                           "frame length exceeds limit");
  }
  if (buffer_.size() < 4 + static_cast<size_t>(length)) {
    return std::optional<std::string>{};
  }
  std::string payload = buffer_.substr(4, length);
  buffer_.erase(0, 4 + static_cast<size_t>(length));
  return std::optional<std::string>{std::move(payload)};
}

}  // namespace harmony::net
