// The Harmony process of §5: "a server that listens on a well-known
// port and waits for connections from application processes." Every
// connected application gets its variable updates pushed as UPDATE
// frames. A disconnect implies harmony_end for every instance the
// connection registered — unless the client opted into session
// resumption (protocol v2), in which case its instances are parked for
// a grace period and a RESUME with the server-issued token reattaches
// them, surviving both client reconnects and (with persistence
// attached) full server restarts.
//
// I/O runs on a sharded epoll front end (src/net/event_loop.h): N
// threads own the sockets and do framing/parse/partial-write work,
// forwarding decoded messages to the controller thread through one
// bounded mailbox. The controller thread — whoever calls run() /
// run_once() — remains the only writer of core state, so every
// decision-identity, journaling, and resumption invariant of the
// single-threaded design holds: journal order is mailbox drain order.
// Outbound UPDATE frames produced by one flush epoch are coalesced
// per recipient and shipped as a single writev batch. The original
// single-threaded poll(2) loop is kept behind ServerConfig::io_shards
// = 0 as the measured baseline for bench/abl_server.
#pragma once

#include <poll.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/domain.h"
#include "metric/telemetry.h"
#include "net/event_loop.h"
#include "net/framing.h"
#include "net/mailbox.h"
#include "net/protocol.h"
#include "net/tcp.h"
#include "persist/persistence.h"

namespace harmony::net {

struct ServerConfig {
  // Number of I/O shard threads. -1 = min(4, hardware_concurrency);
  // 0 = the original single-threaded poll(2) loop (the A/B baseline).
  int io_shards = -1;
  // Slow-consumer cutoff: a connection whose outbound backlog exceeds
  // this many bytes is disconnected instead of buffering unboundedly —
  // v2 sessions park (and can RESUME), v1 registrations depart.
  size_t outbound_high_water = 8u << 20;
  // Decoded messages waiting for the controller thread; shards block
  // when it fills, which backpressures their sockets.
  size_t mailbox_capacity = 4096;
  int listen_backlog = 256;
  // SO_SNDBUF for accepted sockets; 0 keeps the kernel default. Tests
  // shrink it so the high-water mark is reachable deterministically.
  int sndbuf_bytes = 0;
  // Semi-synchronous replication: with a replication feed attached and
  // at least one standby subscribed, the OK for a mutating verb is
  // withheld until a standby acks the journal position covering it — or
  // this deadline passes (the primary never blocks on a dead standby;
  // durability degrades to local-only, like a lone primary).
  uint64_t sync_reply_timeout_ms = 1000;
};

// Server-side half of the replication wire protocol, implemented by
// replica::ReplicationSource (the net layer cannot depend on replica/).
// All methods are called on the controller thread; implementations are
// internally synchronized against the journal tap, which fires on
// whatever thread commits.
class ReplicationFeed {
 public:
  virtual ~ReplicationFeed() = default;
  // {REPL HELLO <gen> <offset> <id>} arrived on `conn`: register the
  // standby and return the frames that bring it in sync — a snapshot
  // transfer when it is too far behind, else the journal backlog.
  virtual std::vector<Message> handshake(uint64_t conn,
                                         const std::string& standby_id,
                                         uint64_t generation,
                                         uint64_t offset) = 0;
  // {REPL ACK <gen> <offset> <records>} from the standby on `conn`.
  virtual void note_ack(uint64_t conn, uint64_t generation, uint64_t offset,
                        uint64_t records) = 0;
  // The subscriber's connection died.
  virtual void detach(uint64_t conn) = 0;
  // Frames queued for `conn` since the last take (journal batches and
  // compaction markers pushed by the tap).
  virtual std::vector<Message> take_pending(uint64_t conn) = 0;
  // True when every live subscriber has acked through (gen, offset);
  // vacuously true with no subscribers. Gates deferred-reply release.
  virtual bool acked_through(uint64_t generation, uint64_t offset) = 0;
  virtual bool has_subscribers() = 0;
};

class HarmonyTcpServer {
 public:
  // port 0 = pick an ephemeral port (tests).
  HarmonyTcpServer(core::Controller* controller, uint16_t port,
                   ServerConfig config = {});
  // Routed mode: decision operations go to the partitioned decision
  // core instead of a single controller — REGISTER/LOAD/END land on the
  // owning domain's worker. The router is published for the {DOMAINS}
  // wire verb and the harmonyDomains console command for the server's
  // lifetime. Variable updates fire on domain worker threads; the
  // server queues them and ships from the controller thread, so UPDATE
  // frames still precede the reply that caused them.
  HarmonyTcpServer(core::DomainRouter* router, uint16_t port,
                   ServerConfig config = {});
  ~HarmonyTcpServer();

  // Attaches the durability layer: client sessions are journaled with
  // controller state, and sessions recovered from disk become parked
  // (resumable) immediately. Call before start(); pass nullptr to run
  // without persistence.
  void set_persistence(persist::Persistence* persistence);
  // How long a resumable session survives its connection (default 30s).
  // Atomic so tests can shorten it while the serve loop runs.
  void set_session_grace_ms(int grace_ms) { session_grace_ms_ = grace_ms; }

  // Attaches the replication source: {REPL ...} messages are accepted,
  // journal batches are pushed to subscribed standbys each drain cycle,
  // and mutating-verb replies turn semi-synchronous (see ServerConfig).
  void set_replication_feed(ReplicationFeed* feed) { feed_ = feed; }
  // Standby mode: the serve loop never binds the controller (the
  // replication applier owns it) and decision verbs answer ERR
  // not_primary. Flip to false at promotion, after set_persistence
  // reparked the mirrored sessions.
  void set_standby(bool standby) { standby_ = standby; }
  bool standby() const { return standby_; }

  Result<uint16_t> start();  // bind + listen + spawn I/O shards
  uint16_t port() const { return port_; }

  // Runs one controller iteration: sharded mode drains the mailbox and
  // dispatches every decoded message; single-thread mode runs one
  // accept/read/dispatch/write poll tick. Returns true on progress.
  bool run_once(int timeout_ms);
  // Loops until stop() (from any thread) or `until_idle_ms` of
  // inactivity when positive. The calling thread binds itself as the
  // controller's owner thread around every batch of work it dispatches
  // (and stays unbound while blocked waiting), so callers with their
  // own synchronization can still drive the controller directly
  // between batches.
  void run(int until_idle_ms = -1);
  void stop();

  size_t connection_count() const {
    return io_shard_count_ > 0
               ? shard_connections_.load(std::memory_order_relaxed)
               : connections_.size();
  }
  size_t parked_session_count() const { return parked_.size(); }
  int io_shards() const { return io_shard_count_; }

 private:
  struct Connection {
    // Sharded mode: mailbox identity; the socket lives in its shard.
    uint64_t id = 0;
    int shard = 0;
    std::string staged;  // frames coalesced for the next ship
    // Single-thread mode: the socket and its buffers live here.
    Fd fd;
    FrameBuffer inbound;
    std::string outbound;
    bool corked = false;  // buffer sends until the dispatch completes
    // Shared protocol state.
    std::vector<core::InstanceId> instances;
    // Resume token issued at the first v2 REGISTER (empty for v1
    // clients, whose disconnect is an implicit harmony_end).
    std::string session_token;
    // This connection completed a {REPL HELLO}: it is a standby
    // subscribed to the journal stream, not an application.
    bool is_replica = false;
    bool drop = false;
  };
  // A semi-sync reply withheld until a standby acks the journal
  // position that covers its effect (or the deadline passes).
  struct DeferredReply {
    uint64_t conn = 0;
    Message reply;
    uint64_t generation = 0;
    uint64_t offset = 0;
    std::chrono::steady_clock::time_point deadline;
  };
  struct ParkedSession {
    std::vector<core::InstanceId> instances;
    std::chrono::steady_clock::time_point deadline;
  };
  // A variable update queued by a domain worker thread for a
  // connection, identified by id (never by pointer: the connection may
  // be gone by the time the controller thread pumps the queue).
  struct PendingUpdate {
    uint64_t conn = 0;
    std::string name;
    std::string value;
  };

  bool sharded() const { return io_shard_count_ > 0; }
  void serve_loop(int until_idle_ms);
  // Sharded controller tick: drain mailbox, dispatch, ship egress.
  bool drain_once(int timeout_ms);
  bool process_net_event(NetEvent& event);
  void ship_staged();
  void shutdown_shards();
  // Single-thread poll tick (the legacy loop).
  bool poll_once(int timeout_ms);
  void accept_new();
  void handle_readable(Connection& connection);
  void dispatch(Connection& connection, const Message& message);
  Message handle_message(Connection& connection, const Message& message);
  Message handle_resume(Connection& connection, const std::string& token);
  // {REPL ...} subprotocol. Returns an empty-verb message for ACKs,
  // which dispatch() interprets as "no reply".
  Message handle_repl(Connection& connection, const Message& message);
  // Ships queued replication frames to subscribed standbys and releases
  // deferred semi-sync replies whose position was acked (or timed out).
  bool pump_replication();
  // True when this OK reply must wait for a standby ack.
  bool should_defer_reply(const std::string& verb, const Message& reply) const;
  void send(Connection& connection, const Message& message);
  void flush_writable(Connection& connection);
  // Parks a resumable connection's session or synthesizes the DEPARTs.
  // The caller provides the epoch scope.
  void park_or_end(Connection& connection);
  void reap_dropped();
  void reap_expired_sessions();
  // Detaches a connection at server teardown: parks tokened sessions'
  // subscriptions, unregisters the rest.
  void detach_connection(Connection& connection);
  // Pushes the session's current instance list into the journal.
  void persist_session(const std::string& token,
                       const std::vector<core::InstanceId>& instances);
  // Turns the drain batch's enqueue stamps into the mailbox queue-wait
  // histogram and one per-cycle trace span.
  void record_mailbox_waits();
  // Draws a fresh token that collides with no parked or live session;
  // empty when no secure randomness is available (the caller then
  // answers v1-style, non-resumable).
  std::string new_session_token() const;
  Status attach_updates(Connection& connection, core::InstanceId id);

  // Decision-core dispatch: exactly one of controller_ / router_ is
  // set; these route each protocol operation to whichever backs the
  // server.
  Result<core::InstanceId> ctl_register(const std::string& script);
  Status ctl_unregister(core::InstanceId id);
  Status ctl_subscribe(core::InstanceId id,
                       core::Controller::UpdateHandler handler);
  Result<std::string> ctl_get_variable(core::InstanceId id,
                                       const std::string& name);
  Status ctl_report_load(const std::string& hostname, int tasks);
  Status ctl_set_option(core::InstanceId id, const std::string& bundle,
                        const core::OptionChoice& choice);
  Status ctl_resize(core::InstanceId id, const std::string& bundle,
                    double workers);
  Status ctl_reevaluate();
  // Routed mode: drains the worker-queued updates into the normal send
  // path on the controller thread. Returns true if anything shipped.
  bool pump_updates();
  Connection* find_connection(uint64_t id);

  HarmonyTcpServer(core::Controller* controller, core::DomainRouter* router,
                   uint16_t port, ServerConfig config);

  core::Controller* controller_;
  core::DomainRouter* router_ = nullptr;
  persist::Persistence* persistence_ = nullptr;
  ReplicationFeed* feed_ = nullptr;
  bool standby_ = false;
  std::deque<DeferredReply> deferred_;  // controller thread only
  ServerConfig config_;
  uint16_t port_;
  int io_shard_count_ = 0;  // resolved at start()
  Fd listener_;             // single-thread mode (shard 0 owns it otherwise)
  Fd accept_reserve_;       // EMFILE headroom for the single-thread loop
  std::vector<std::unique_ptr<Connection>> connections_;  // single-thread
  std::map<std::string, ParkedSession> parked_;
  std::atomic<int> session_grace_ms_ = 30000;
  // Reused across poll ticks; resized only when the connection set
  // changes, so the steady-state poll loop allocates nothing.
  std::vector<pollfd> pollfds_;

  // --- sharded front end --------------------------------------------------
  Mailbox mailbox_;
  std::vector<std::unique_ptr<IoShard>> shards_;
  // Controller-side view of shard-owned connections, by mailbox id.
  std::map<uint64_t, std::unique_ptr<Connection>> remotes_;
  // Connections with staged egress this drain cycle.
  std::vector<Connection*> egress_dirty_;
  std::vector<NetEvent> drain_batch_;
  std::vector<char> shard_wake_;  // scratch: which shards need a wake
  std::atomic<uint64_t> next_conn_id_ = 2;  // 0/1 are shard-internal tags
  std::atomic<uint64_t> accept_cursor_ = 0;
  std::atomic<size_t> shard_connections_ = 0;

  // --- telemetry (process-global instruments, resolved once) --------------
  metric::Counter* frames_out_total_;
  metric::Counter* session_parks_total_;
  metric::Counter* backpressure_drops_total_;
  metric::Gauge* connections_gauge_;
  metric::Gauge* parked_gauge_;
  metric::Histogram* mailbox_wait_us_;

  // Routed mode: update handlers fire on domain worker threads and
  // append here; the controller thread pumps into send().
  std::mutex updates_mutex_;
  std::vector<PendingUpdate> pending_updates_;  // guarded by updates_mutex_

  // stop() may be called from another thread (tests, signal handlers);
  // everything else on the controller side is single-threaded.
  std::atomic<bool> stopping_ = false;
};

}  // namespace harmony::net
