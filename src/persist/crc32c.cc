#include "persist/crc32c.h"

#include <array>

namespace harmony::persist {

namespace {

// Reflected CRC32C polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

constexpr std::array<uint32_t, 256> make_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = make_table();

}  // namespace

uint32_t crc32c(std::string_view data, uint32_t seed) {
  uint32_t crc = ~seed;
  for (unsigned char byte : data) {
    crc = kTable[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace harmony::persist
