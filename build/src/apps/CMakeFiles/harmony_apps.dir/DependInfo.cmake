
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bag_app.cc" "src/apps/CMakeFiles/harmony_apps.dir/bag_app.cc.o" "gcc" "src/apps/CMakeFiles/harmony_apps.dir/bag_app.cc.o.d"
  "/root/repo/src/apps/db_app.cc" "src/apps/CMakeFiles/harmony_apps.dir/db_app.cc.o" "gcc" "src/apps/CMakeFiles/harmony_apps.dir/db_app.cc.o.d"
  "/root/repo/src/apps/simple_app.cc" "src/apps/CMakeFiles/harmony_apps.dir/simple_app.cc.o" "gcc" "src/apps/CMakeFiles/harmony_apps.dir/simple_app.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/harmony_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/harmony_core.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/harmony_client.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/harmony_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/harmony_db.dir/DependInfo.cmake"
  "/root/repo/build/src/rsl/CMakeFiles/harmony_rsl.dir/DependInfo.cmake"
  "/root/repo/build/src/metric/CMakeFiles/harmony_metric.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/harmony_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
