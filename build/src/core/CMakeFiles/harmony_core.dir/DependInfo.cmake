
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/binding.cc" "src/core/CMakeFiles/harmony_core.dir/binding.cc.o" "gcc" "src/core/CMakeFiles/harmony_core.dir/binding.cc.o.d"
  "/root/repo/src/core/console.cc" "src/core/CMakeFiles/harmony_core.dir/console.cc.o" "gcc" "src/core/CMakeFiles/harmony_core.dir/console.cc.o.d"
  "/root/repo/src/core/controller.cc" "src/core/CMakeFiles/harmony_core.dir/controller.cc.o" "gcc" "src/core/CMakeFiles/harmony_core.dir/controller.cc.o.d"
  "/root/repo/src/core/namespace.cc" "src/core/CMakeFiles/harmony_core.dir/namespace.cc.o" "gcc" "src/core/CMakeFiles/harmony_core.dir/namespace.cc.o.d"
  "/root/repo/src/core/objective.cc" "src/core/CMakeFiles/harmony_core.dir/objective.cc.o" "gcc" "src/core/CMakeFiles/harmony_core.dir/objective.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/core/CMakeFiles/harmony_core.dir/optimizer.cc.o" "gcc" "src/core/CMakeFiles/harmony_core.dir/optimizer.cc.o.d"
  "/root/repo/src/core/perf_model.cc" "src/core/CMakeFiles/harmony_core.dir/perf_model.cc.o" "gcc" "src/core/CMakeFiles/harmony_core.dir/perf_model.cc.o.d"
  "/root/repo/src/core/state.cc" "src/core/CMakeFiles/harmony_core.dir/state.cc.o" "gcc" "src/core/CMakeFiles/harmony_core.dir/state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/harmony_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rsl/CMakeFiles/harmony_rsl.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/harmony_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/metric/CMakeFiles/harmony_metric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
