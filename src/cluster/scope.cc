#include "cluster/scope.h"

#include <algorithm>

namespace harmony::cluster {

NodeScope::NodeScope(std::vector<NodeId> nodes) : nodes_(std::move(nodes)) {
  std::sort(nodes_.begin(), nodes_.end());
  nodes_.erase(std::unique(nodes_.begin(), nodes_.end()), nodes_.end());
}

size_t NodeScope::slot(NodeId node) const {
  auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node);
  if (it == nodes_.end() || *it != node) return kNoSlot;
  return static_cast<size_t>(it - nodes_.begin());
}

bool NodeScope::extend(const std::vector<NodeId>& nodes) {
  bool grew = false;
  for (NodeId node : nodes) {
    if (!contains(node)) {
      nodes_.push_back(node);
      grew = true;
    }
  }
  if (grew) std::sort(nodes_.begin(), nodes_.end());
  return grew;
}

}  // namespace harmony::cluster
