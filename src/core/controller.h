// The Active Harmony adaptation controller (paper §2, §5): an
// event-driven component that accepts application bundles, matches
// resource requirements against the cluster, chooses tuning options to
// optimize a global objective, and pushes variable updates back to
// applications. Updates are buffered until flush_pending_vars(), as in
// the prototype's flushPendingVars() call.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/namespace.h"
#include "core/objective.h"
#include "core/optimizer.h"
#include "core/perf_model.h"
#include "core/state.h"
#include "metric/metric.h"
#include "metric/telemetry.h"
#include "rsl/rsl.h"

namespace harmony::core {

struct ControllerConfig {
  OptimizerConfig optimizer;
  // One of: "mean", "makespan", "throughput".
  std::string objective = "mean";
  double local_bandwidth_mbps = 8000.0;
  // LogP-style endpoint CPU occupancy per transferred MB in the default
  // performance model (§3.4); 0 = the paper's plain wire-time model.
  double comm_occupancy_s_per_mb = 0.0;
  // Deliver variable updates immediately after each decision instead of
  // waiting for an explicit flush (convenient for tests; the prototype
  // buffers until flushPendingVars()).
  bool auto_flush = true;
  // Record the global objective as a metric after every applied epoch.
  // The evaluation is O(live instances); front ends driving thousands
  // of instances through steering epochs turn it off so an O(1) input
  // stays an O(1) epoch.
  bool record_objective_metric = true;
};

// One journal-able controller input: everything the outside world can
// do to a controller that affects its decisions. Replaying the sequence
// of events into a fresh controller (with the recorded times) is
// guaranteed to reproduce the original decision sequence — the
// optimizer is deterministic and all hidden inputs (time) are captured
// here. The durability subsystem (src/persist) records these in its
// write-ahead journal.
struct ControllerEvent {
  enum class Kind {
    kRegister,      // instance = assigned id, text = RSL script
    kDepart,        // instance
    kExternalLoad,  // text = hostname, value = concurrent tasks
    kNodeOnline,    // text = hostname, value = 1 (online) / 0 (offline)
    kSetOption,     // instance, text = bundle name, choice
    kReevaluate,    // periodic adaptation pass
    kResize,        // instance, text = bundle name, value = new degree
  };
  Kind kind = Kind::kReevaluate;
  double time = 0;          // controller now() when the event applied
  InstanceId instance = 0;
  std::string text;
  double value = 0;
  OptionChoice choice;
};

// Observer for durable controllers. Events arrive after they have
// successfully mutated state, in application order, inside the event's
// epoch; on_epoch_commit() fires once at the close of every outermost
// epoch — the natural write+fsync batching point for a write-ahead log.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_controller_event(const ControllerEvent& event) = 0;
  virtual void on_epoch_commit() = 0;
};

class Controller {
 public:
  explicit Controller(ControllerConfig config = {});

  // RAII scope grouping decisions into one optimization epoch. Variable
  // updates queued anywhere inside the outermost scope are flushed once
  // at its close (under auto_flush), together with one coherent set of
  // decision-path metrics (decision latency, candidates evaluated,
  // predictor calls, cache hit rate). Every controller entry point
  // opens one internally; callers that fan several calls into one
  // logical event (e.g. the TCP server dispatching a REGISTER that also
  // subscribes) can open their own so the event produces exactly one
  // flush.
  class EpochScope {
   public:
    explicit EpochScope(Controller& controller);
    ~EpochScope();
    EpochScope(const EpochScope&) = delete;
    EpochScope& operator=(const EpochScope&) = delete;

   private:
    Controller& controller_;
  };

  // --- cluster setup ----------------------------------------------------
  // Nodes and links are fixed once the first application registers.
  Status add_node(const rsl::NodeAd& ad);
  // Evaluates a script of harmonyNode commands.
  Status add_nodes_script(const std::string& rsl_script);
  Status link_hosts(const std::string& host_a, const std::string& host_b,
                    double bandwidth_mbps, double latency_ms = 0.0);
  // Resolves pending link ads and builds the resource pool. Idempotent;
  // called implicitly by the first registration.
  Status finalize_cluster();
  bool cluster_finalized() const { return state_.pool != nullptr; }

  // Domain-controller setup: share an already-finalized topology
  // instead of rebuilding it, allocate pool + version state only over
  // `scope` (the domain footprint; a scope covering every node becomes
  // an unscoped full-cluster pool), and resolve cluster.* names through
  // `cluster_names` (the router template's namespace) instead of
  // copying O(cluster) entries. Replaces add_node/finalize_cluster
  // wholesale: requires that neither has run. After this the cluster is
  // finalized and domain creation has done O(|scope|) work.
  Status adopt_cluster(std::shared_ptr<const cluster::Topology> topology,
                       std::vector<cluster::NodeId> scope,
                       const Namespace* cluster_names);
  // Grows a scoped pool to additionally cover `nodes` (domain merge /
  // annexation); state and version stamps of existing nodes are kept,
  // new nodes start pristine (online, no load). No-op when unscoped.
  void extend_scope(const std::vector<cluster::NodeId>& nodes) {
    state_.extend_scope(nodes);
  }
  std::shared_ptr<const cluster::Topology> shared_topology() const {
    return state_.shared_topology();
  }

  // --- threading --------------------------------------------------------
  // The controller is single-threaded by design; the sharded network
  // front end never calls in from its I/O threads — decoded messages
  // cross one mailbox drained by a single thread, which binds itself
  // here. While bound, every mutating (or namespace-reading) entry
  // point asserts it runs on that thread, turning an accidental
  // cross-thread call into a loud failure instead of a data race.
  // Unbound (the default) means no checking: plain single-threaded
  // embedders and tests are unaffected.
  void bind_owner_thread() {
    owner_thread_.store(std::this_thread::get_id(),
                        std::memory_order_relaxed);
  }
  void unbind_owner_thread() {
    owner_thread_.store(std::thread::id{}, std::memory_order_relaxed);
  }
  bool on_owner_thread() const {
    auto owner = owner_thread_.load(std::memory_order_relaxed);
    return owner == std::thread::id{} ||
           owner == std::this_thread::get_id();
  }

  // --- time -------------------------------------------------------------
  // Experiments install the simulator clock; defaults to a counter that
  // never goes backwards.
  void set_time_source(std::function<double()> source) {
    time_source_ = std::move(source);
  }
  double now() const;

  // --- application lifecycle (harmony_startup / _bundle_setup / _end) ----
  // Registers an application with the given bundles; runs the arrival
  // optimization pass. The instance id is Harmony-assigned (the paper's
  // "system chosen instance id").
  // `script_text` is the RSL source the bundles came from; when empty
  // (typed-API callers) an equivalent script is reconstructed with
  // rsl::bundle_to_script so the instance stays journal-able.
  Result<InstanceId> register_application(
      const std::vector<rsl::BundleSpec>& bundles,
      const std::string& script_text = "");
  // Evaluates a script of harmonyBundle commands and registers all the
  // bundles it defines as one application instance.
  Result<InstanceId> register_script(const std::string& rsl_script);
  Status unregister(InstanceId id);
  // Periodic re-evaluation (paper §4.3: "we continue this process on a
  // periodic basis").
  Status reevaluate();
  // Manual steering (the computational-steering tie-in of §7): force a
  // bundle onto a specific option, bypassing the objective but not
  // resource matching. The application is notified like any other
  // reconfiguration.
  Status set_option(InstanceId id, const std::string& bundle,
                    const OptionChoice& choice);
  // Live malleability (the DMR-style grow/shrink verb): change the
  // degree of parallelism of a *running* bundle by moving its
  // parallelism variable — the configured option's first declared
  // variable — to `workers`. The new degree must be one of the
  // variable's declared values (the application's exposed
  // alternatives; nonpositive or undeclared degrees are rejected), and
  // the rest of the choice (option, memory grant) is preserved. The
  // reconfiguration is resource-matched, journaled as a kResize event,
  // and pushed to the application like any other decision.
  Status resize(InstanceId id, const std::string& bundle, double workers);

  // Node deletion/addition at runtime ("adapt to changes in their
  // execution environment due to ... the addition or deletion of
  // nodes"). Taking a node offline displaces every allocation on it and
  // re-optimizes; bundles that no longer fit anywhere are left
  // unconfigured (their variable is pushed as the empty string) and are
  // retried on later passes. Bringing a node back online triggers a
  // re-evaluation that can expand applications onto it.
  Status set_node_online(const std::string& hostname, bool online);

  // Observed load from outside Harmony's control — "changes out of
  // Harmony's control (such as network traffic due to other
  // applications)" (§4.3). The report feeds the contention models and
  // the matcher's least-loaded ordering and triggers a re-evaluation,
  // so running applications shift away from busy nodes.
  Status report_external_load(const std::string& hostname,
                              int concurrent_tasks);

  // --- variables (harmony_add_variable / harmony_wait_for_update) --------
  using UpdateHandler = std::function<void(const std::string& name,
                                           const std::string& value)>;
  Status subscribe(InstanceId id, UpdateHandler handler);
  // Delivers buffered updates to subscribers (flushPendingVars()).
  void flush_pending_vars();
  // Pull-style read of a published variable ("<bundle>" -> option name,
  // "<bundle>.<var>" -> value, "<bundle>.<role>.node" -> hostname).
  Result<std::string> get_variable(InstanceId id,
                                   const std::string& name) const;

  // --- durability (src/persist) -------------------------------------------
  // Installs the event observer; pass nullptr to detach. The sink sees
  // every successfully applied event plus one commit callback per
  // outermost epoch.
  void set_event_sink(EventSink* sink) { sink_ = sink; }

  // Snapshot-restore primitives. They reinstall state exactly as
  // recorded — no optimization pass runs, no events are emitted, no
  // variable updates are queued. The persist layer calls them while
  // rebuilding a controller from a snapshot, before replaying the
  // journal tail.
  struct RestoredAllocationEntry {
    std::string role;
    int index = 0;
    std::string hostname_glob = "*";
    std::string os;
    double memory_mb = 0;
    std::string hostname;  // node the requirement was placed on
  };
  struct RestoredBundle {
    std::string bundle;
    bool configured = false;
    OptionChoice choice;
    double last_switch_time = 0;
    std::vector<RestoredAllocationEntry> entries;
  };
  // Re-parses `script`, reinstalls the instance under its original id,
  // re-reserves every allocation in the pool and republishes the
  // namespace. Requires a finalized cluster.
  Status restore_instance(const std::string& script, InstanceId id,
                          double arrival_time,
                          const std::vector<RestoredBundle>& bundles);
  // Raw state setters used during snapshot load: no re-evaluation.
  Status restore_external_load(const std::string& hostname, int tasks);
  Status restore_node_online(const std::string& hostname, bool online);
  void restore_counters(InstanceId next_instance_id,
                        uint64_t reconfigurations);

  // --- introspection ------------------------------------------------------
  const cluster::Topology& topology() const { return state_.topology(); }
  const SystemState& state() const { return state_; }
  const Namespace& names() const { return names_; }
  metric::MetricRegistry& metrics() { return metrics_; }
  Result<double> objective_value() const;
  Result<std::vector<std::pair<InstanceId, double>>> predictions() const;
  // Per-instance deadline declarations of the live configuration: (id,
  // effective deadline, tardiness weight) for every configured instance
  // whose chosen options declare one. The domain router merges these
  // with the merged predictions so the global objective prices
  // tardiness exactly as a single controller would.
  std::vector<std::tuple<InstanceId, double, double>> deadline_terms() const;
  const BundleState* bundle_state(InstanceId id,
                                  const std::string& bundle) const;
  uint64_t reconfigurations() const { return reconfigurations_; }
  InstanceId next_instance_id() const { return next_instance_id_; }
  size_t live_instances() const { return state_.instances.size(); }
  Optimizer& optimizer() { return *optimizer_; }
  const Optimizer& optimizer() const { return *optimizer_; }
  // Solver statistics of this controller's optimizer, or nullptr when
  // the anytime solver is disabled (budget_ms = 0).
  const SolverStats* solver_stats() const { return optimizer_->solver_stats(); }

 private:
  void assert_owner() const;
  void publish_instance(const InstanceState& instance);
  void queue_updates(const InstanceState& instance,
                     const std::vector<Decision>& decisions);
  void apply_decisions(const std::vector<Decision>& decisions);
  void begin_epoch();
  void end_epoch();
  // Stamps now() and forwards to the sink (no-op when detached).
  void emit_event(ControllerEvent event);
  rsl::ExprContext names_context() const {
    return names_.expr_context("");
  }

  ControllerConfig config_;
  SystemState state_;
  Namespace names_;
  metric::MetricRegistry metrics_;
  std::unique_ptr<Objective> objective_;
  Predictor predictor_;
  std::unique_ptr<Optimizer> optimizer_;
  std::function<double()> time_source_;
  EventSink* sink_ = nullptr;
  // Owner thread while a serve loop is bound; default id = unchecked.
  std::atomic<std::thread::id> owner_thread_{};
  InstanceId next_instance_id_ = 1;
  uint64_t reconfigurations_ = 0;

  // --- epoch bookkeeping (see EpochScope) ---------------------------------
  int epoch_depth_ = 0;
  bool epoch_applied_ = false;  // decisions were applied in this epoch
  std::chrono::steady_clock::time_point epoch_wall_start_;
  uint64_t epoch_start_us_ = 0;  // telemetry clock, for the epoch span
  uint64_t epoch_candidates_start_ = 0;
  uint64_t epoch_predictor_start_ = 0;
  uint64_t epoch_skipped_start_ = 0;

  // Thread-safe mirrors of the per-epoch decision metrics, resolved
  // once: live scrapes (the METRICS verb) read these, while metrics_
  // stays the single-threaded simulation-time record.
  metric::Counter* tl_epochs_total_ =
      &metric::telemetry_counter("controller.epochs_total");
  metric::Counter* tl_candidates_total_ =
      &metric::telemetry_counter("controller.epoch_candidates_total");
  metric::Counter* tl_skips_total_ =
      &metric::telemetry_counter("controller.epoch_skips_total");
  metric::Histogram* tl_epoch_us_ =
      &metric::telemetry_histogram("controller.epoch_us");

  struct PendingLink {
    std::string from;
    std::string to;
    double bandwidth_mbps;
    double latency_ms;
  };
  std::vector<PendingLink> pending_links_;

  std::map<InstanceId, UpdateHandler> subscribers_;
  std::map<InstanceId, std::vector<std::pair<std::string, std::string>>>
      pending_vars_;
  // Instances with a non-empty pending queue (plus at most a few stale
  // ids); lets the per-epoch flush skip the thousands of quiet ones.
  std::vector<InstanceId> pending_dirty_;
};

}  // namespace harmony::core
