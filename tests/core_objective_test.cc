#include "core/objective.h"

#include <gtest/gtest.h>

namespace harmony::core {
namespace {

TEST(MeanCompletionTime, Basics) {
  MeanCompletionTime objective;
  EXPECT_STREQ(objective.name(), "mean-completion-time");
  EXPECT_DOUBLE_EQ(objective.evaluate({}), 0.0);
  EXPECT_DOUBLE_EQ(objective.evaluate({10}), 10.0);
  EXPECT_DOUBLE_EQ(objective.evaluate({10, 20, 30}), 20.0);
}

TEST(MaxCompletionTime, Basics) {
  MaxCompletionTime objective;
  EXPECT_DOUBLE_EQ(objective.evaluate({}), 0.0);
  EXPECT_DOUBLE_EQ(objective.evaluate({10, 30, 20}), 30.0);
}

TEST(NegativeThroughput, LowerIsMoreThroughput) {
  NegativeThroughput objective;
  EXPECT_DOUBLE_EQ(objective.evaluate({}), 0.0);
  EXPECT_DOUBLE_EQ(objective.evaluate({2, 2}), -1.0);
  // Two fast jobs beat one fast and one slow.
  EXPECT_LT(objective.evaluate({2, 2}), objective.evaluate({2, 10}));
  // Zero-time jobs don't divide by zero.
  EXPECT_DOUBLE_EQ(objective.evaluate({0.0, 4.0}), -0.25);
}

TEST(WeightedCompletionTime, WeightsApply) {
  WeightedCompletionTime objective({3, 1});
  EXPECT_DOUBLE_EQ(objective.evaluate({10, 20}), (30.0 + 20.0) / 4.0);
  // Missing weights default to 1.
  EXPECT_DOUBLE_EQ(objective.evaluate({10, 20, 30}), (30 + 20 + 30) / 5.0);
  EXPECT_DOUBLE_EQ(objective.evaluate({}), 0.0);
}

TEST(MakeObjective, Factory) {
  EXPECT_NE(make_objective("mean"), nullptr);
  EXPECT_NE(make_objective("mean-completion-time"), nullptr);
  EXPECT_NE(make_objective(""), nullptr);
  EXPECT_NE(make_objective("makespan"), nullptr);
  EXPECT_NE(make_objective("throughput"), nullptr);
  EXPECT_EQ(make_objective("nonsense"), nullptr);
}

TEST(Tardiness, HingePenaltySumsAcrossTerms) {
  // weight * max(0, time - deadline), summed.
  EXPECT_DOUBLE_EQ(tardiness_penalty({}), 0.0);
  EXPECT_DOUBLE_EQ(tardiness_penalty({{40, 30, 2}}), 20.0);
  EXPECT_DOUBLE_EQ(tardiness_penalty({{25, 30, 2}}), 0.0);   // early: no credit
  EXPECT_DOUBLE_EQ(tardiness_penalty({{30, 30, 5}}), 0.0);   // on time
  EXPECT_DOUBLE_EQ(tardiness_penalty({{40, 30, 2}, {100, 60, 0.5}}), 40.0);
}

TEST(Tardiness, EmptyTermsAreBitIdenticalToBaseObjective) {
  // The no-deadline short circuit: scenarios without deadline terms
  // must evaluate through exactly the base objective, bit for bit.
  MeanCompletionTime mean;
  MaxCompletionTime makespan;
  const std::vector<double> times = {13.7, 211.04, 0.003, 560.0};
  EXPECT_EQ(mean.evaluate_with_deadlines(times, {}), mean.evaluate(times));
  EXPECT_EQ(makespan.evaluate_with_deadlines(times, {}),
            makespan.evaluate(times));
}

TEST(Tardiness, PenaltyAddsOnTopOfAnyBaseObjective) {
  MeanCompletionTime mean;
  const std::vector<double> times = {40, 20};
  const std::vector<DeadlineTerm> terms = {{40, 30, 20}};
  EXPECT_DOUBLE_EQ(mean.evaluate_with_deadlines(times, terms),
                   mean.evaluate(times) + 200.0);
}

// The decision property the paper relies on: under mean completion
// time, equal partitions beat skewed ones on a concave speedup curve.
TEST(MeanCompletionTime, PrefersEqualPartitionsOnConcaveCurve) {
  MeanCompletionTime objective;
  // Bag curve values at 4+4 vs 6+2 vs 7+1 workers.
  double equal = objective.evaluate({340, 340});
  double skewed = objective.evaluate({270, 640});
  double extreme = objective.evaluate({260, 1250});
  EXPECT_LT(equal, skewed);
  EXPECT_LT(skewed, extreme);
}

}  // namespace
}  // namespace harmony::core
