file(REMOVE_RECURSE
  "CMakeFiles/harmony_core.dir/binding.cc.o"
  "CMakeFiles/harmony_core.dir/binding.cc.o.d"
  "CMakeFiles/harmony_core.dir/console.cc.o"
  "CMakeFiles/harmony_core.dir/console.cc.o.d"
  "CMakeFiles/harmony_core.dir/controller.cc.o"
  "CMakeFiles/harmony_core.dir/controller.cc.o.d"
  "CMakeFiles/harmony_core.dir/namespace.cc.o"
  "CMakeFiles/harmony_core.dir/namespace.cc.o.d"
  "CMakeFiles/harmony_core.dir/objective.cc.o"
  "CMakeFiles/harmony_core.dir/objective.cc.o.d"
  "CMakeFiles/harmony_core.dir/optimizer.cc.o"
  "CMakeFiles/harmony_core.dir/optimizer.cc.o.d"
  "CMakeFiles/harmony_core.dir/perf_model.cc.o"
  "CMakeFiles/harmony_core.dir/perf_model.cc.o.d"
  "CMakeFiles/harmony_core.dir/state.cc.o"
  "CMakeFiles/harmony_core.dir/state.cc.o.d"
  "libharmony_core.a"
  "libharmony_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
