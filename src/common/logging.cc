#include "common/logging.h"

#include <cstdio>
#include <mutex>

namespace harmony {

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

std::mutex g_log_mutex;

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, const std::string& tag,
                 const std::string& message) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  if (sim_time_) {
    std::fprintf(stderr, "[%s] [t=%.3f] %s: %s\n", level_name(level),
                 sim_time_(), tag.c_str(), message.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), tag.c_str(),
                 message.c_str());
  }
}

}  // namespace harmony
