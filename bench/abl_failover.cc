// Failover ablation — what controller replication costs and what it
// buys when the primary dies.
//
// Three measured sections. The HA pair runs as two forked child
// processes sharing a lease file (the published HA status is
// process-global, so one process hosts exactly one node — and a real
// SIGKILL is the honest version of the event anyway):
//
//   promotion  a client swarm holds v2 sessions against the primary;
//              the primary is killed -9 mid-service. Measures the
//              standby's STATUS flip to primary and, per client, the
//              time until its next decision round-trips — the
//              reconnect-storm drain.
//   drain      same event, client side: p50/p99/max of per-client
//              recovery, i.e. how long the storm takes to fully land
//              on the new primary.
//   overhead   a fixed quantum of journaled controller work (register
//              wave + load/reevaluate cycles) with persistence alone
//              vs persistence + an attached, continuously drained
//              replication subscriber. Interleaved best-of-N minima;
//              the gate requires <2% added wall time.
//
// Results go to BENCH_failover.json; the run exits nonzero if the
// overhead gate fails or any phase breaks.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "core/controller.h"
#include "metric/telemetry.h"
#include "net/framing.h"
#include "net/protocol.h"
#include "net/tcp.h"
#include "net/tcp_transport.h"
#include "persist/persistence.h"
#include "replica/node.h"
#include "replica/source.h"
#include "test_scenarios.h"

namespace {

using namespace harmony;
using Clock = std::chrono::steady_clock;

struct Options {
  int clients = 128;
  int iterations = 3;
  int overhead_registers = 48;
  int overhead_cycles = 12;
  // Best-of-N minima: the quantum has several percent of run-to-run
  // timing noise, and the signal being gated is sub-percent. N = 21
  // keeps the minimum estimator's spread well inside the 2% gate.
  int overhead_repeats = 21;
  bool smoke = false;
};

// One-node one-option bundle with a tiny footprint: placement is
// trivial, so a swarm of these stresses the journal/stream path rather
// than the optimizer.
std::string tiny_bundle(int tag) {
  return str_format(
      "harmonyBundle Tiny:%d config {\n"
      "  {fixed\n"
      "    {node worker {seconds 1} {memory 0.5} {replicate 1}}\n"
      "    {communication 0.1}}\n"
      "}\n",
      tag);
}

Status bootstrap_cluster(core::Controller& controller) {
  Status added =
      controller.add_nodes_script(harmony::testing::sp2_cluster_script(4));
  if (!added.ok()) return added;
  return controller.finalize_cluster();
}

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t index = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[index];
}

// Raw {STATUS} probe, usable against a standby (which refuses decision
// verbs but answers status).
std::string probe_role(uint16_t port) {
  auto fd = net::connect_to("127.0.0.1", port);
  if (!fd.ok()) return "";
  if (!net::write_all(fd.value(),
                      net::encode_frame(net::Message{"STATUS", {}}.encode()))
           .ok()) {
    return "";
  }
  net::FrameBuffer frames;
  char buffer[4096];
  for (int spin = 0; spin < 200; ++spin) {
    auto n = net::read_some(fd.value(), buffer, sizeof buffer);
    if (!n.ok() || n.value() == 0) return "";
    frames.feed(std::string_view(buffer, n.value()));
    auto frame = frames.next_frame();
    if (!frame.ok()) return "";
    if (frame.value().has_value()) {
      auto message = net::Message::decode(*frame.value());
      if (!message.ok() || message.value().args.empty()) return "";
      return message.value().args[0];
    }
  }
  return "";
}

bool wait_for_role(uint16_t port, const std::string& role, int timeout_ms) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    if (probe_role(port) == role) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

uint16_t reserve_port(const net::Fd& listener) {
  auto port = net::local_port(listener);
  return port.ok() ? port.value() : 0;
}

replica::HaNodeConfig node_config(const std::string& base,
                                  const std::string& name, uint16_t port,
                                  uint16_t peer_port) {
  replica::HaNodeConfig config;
  config.data_dir = base + "/" + name;
  config.lease_path = base + "/lease";
  config.port = port;
  config.peers = {{"127.0.0.1", peer_port}};
  config.node_id = name;
  config.lease_ttl_ms = 600;
  config.lease_renew_ms = 150;
  config.bootstrap = bootstrap_cluster;
  config.persist.snapshot_every_epochs = 64;
  config.persist.fsync_every_epochs = 8;
  config.standby.ack_interval_ms = 5;
  config.standby.poll_interval_ms = 5;
  config.standby.initial_backoff_ms = 10;
  config.standby.max_backoff_ms = 100;
  return config;
}

volatile std::sig_atomic_t g_terminate = 0;
void on_sigterm(int) { g_terminate = 1; }

// Each node runs in its own forked process: the published HA status is
// process-global, and a real SIGKILL is the event we claim to measure.
[[noreturn]] void run_node_process(const std::string& base,
                                   const std::string& name, uint16_t port,
                                   uint16_t peer_port) {
  std::signal(SIGTERM, on_sigterm);
  metric::set_telemetry_enabled(true);
  replica::HaNode node(node_config(base, name, port, peer_port));
  if (!node.start().ok()) std::_Exit(2);
  while (g_terminate == 0) (void)node.poll(10);
  std::_Exit(0);
}

pid_t spawn_node(const std::string& base, const std::string& name,
                 uint16_t port, uint16_t peer_port) {
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) run_node_process(base, name, port, peer_port);
  return pid;
}

void reap(pid_t& pid, int sig) {
  if (pid <= 0) return;
  ::kill(pid, sig);
  int status = 0;
  ::waitpid(pid, &status, 0);
  pid = -1;
}

struct FailoverResult {
  double promotion_ms = 0;      // lease death -> STATUS says primary
  double drain_p50_ms = 0;      // per-client recovery percentiles
  double drain_p99_ms = 0;
  double drain_max_ms = 0;
  int clients_recovered = 0;
  bool ok = true;
  std::string error;
};

FailoverResult run_failover(const Options& options, int iteration) {
  FailoverResult result;
  const std::string base = std::filesystem::temp_directory_path().string() +
                           "/abl_failover_" + std::to_string(::getpid()) +
                           "_" + std::to_string(iteration);
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);

  uint16_t port_a = 0;
  uint16_t port_b = 0;
  {
    auto listener_a = net::listen_on(0);
    auto listener_b = net::listen_on(0);
    if (!listener_a.ok() || !listener_b.ok()) {
      result.ok = false;
      result.error = "port reservation failed";
      return result;
    }
    port_a = reserve_port(listener_a.value());
    port_b = reserve_port(listener_b.value());
  }

  pid_t pid_a = spawn_node(base, "alpha", port_a, port_b);
  pid_t pid_b = -1;
  if (pid_a <= 0 || !wait_for_role(port_a, "primary", 10000) ||
      (pid_b = spawn_node(base, "beta", port_b, port_a)) <= 0 ||
      !wait_for_role(port_b, "standby", 10000)) {
    result.ok = false;
    result.error = "pair bring-up failed";
    reap(pid_a, SIGKILL);
    reap(pid_b, SIGKILL);
    return result;
  }

  // The swarm: every client holds a v2 session (registered app) and
  // waits for the kill signal, then races to land one more decision.
  struct ClientSlot {
    std::unique_ptr<net::TcpTransport> transport;
    double recovery_ms = -1;
  };
  std::vector<ClientSlot> slots(options.clients);
  std::atomic<int> register_failures{0};
  std::mutex error_mutex;
  std::string first_error;
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < options.clients; ++i) {
      threads.emplace_back([&, i] {
        auto transport = std::make_unique<net::TcpTransport>();
        net::ReconnectPolicy policy;
        policy.max_attempts = 80;
        policy.initial_backoff_ms = 10;
        policy.max_backoff_ms = 150;
        policy.jitter_seed = 1000 + i;
        transport->set_reconnect_policy(policy);
        Status registered =
            transport->connect({{"127.0.0.1", port_a}, {"127.0.0.1", port_b}});
        if (registered.ok()) {
          auto id = transport->register_app(tiny_bundle(i + 1));
          if (!id.ok()) registered = Status(id.error());
        }
        if (!registered.ok()) {
          ++register_failures;
          std::lock_guard<std::mutex> lock(error_mutex);
          if (first_error.empty()) first_error = registered.to_string();
          return;
        }
        slots[i].transport = std::move(transport);
      });
    }
    for (auto& thread : threads) thread.join();
  }
  if (register_failures.load() > 0) {
    result.ok = false;
    result.error = str_format("%d clients failed to register (%s)",
                              register_failures.load(), first_error.c_str());
    reap(pid_a, SIGKILL);
    reap(pid_b, SIGKILL);
    return result;
  }

  // Kill. The swarm storms the survivor; a probe thread watches its
  // role flip.
  std::atomic<bool> go{false};
  std::atomic<double> promotion_ms{-1};
  Clock::time_point killed_at;
  std::thread role_watch([&] {
    while (!go.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (wait_for_role(port_b, "primary", 15000)) {
      promotion_ms.store(ms_since(killed_at));
    }
  });
  std::vector<std::thread> storm;
  for (int i = 0; i < options.clients; ++i) {
    storm.emplace_back([&, i] {
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (slots[i].transport->report_load("sp2-01", 1 + i % 3).ok()) {
        slots[i].recovery_ms = ms_since(killed_at);
      }
    });
  }

  reap(pid_a, SIGKILL);
  killed_at = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& thread : storm) thread.join();
  role_watch.join();

  std::vector<double> recoveries;
  for (const auto& slot : slots) {
    if (slot.recovery_ms >= 0) recoveries.push_back(slot.recovery_ms);
  }
  std::sort(recoveries.begin(), recoveries.end());
  result.clients_recovered = static_cast<int>(recoveries.size());
  result.promotion_ms = promotion_ms.load();
  result.drain_p50_ms = percentile(recoveries, 0.50);
  result.drain_p99_ms = percentile(recoveries, 0.99);
  result.drain_max_ms = recoveries.empty() ? 0 : recoveries.back();
  if (result.promotion_ms < 0 ||
      result.clients_recovered != options.clients) {
    result.ok = false;
    result.error = str_format("promotion_ms=%.0f, %d/%d clients recovered",
                              result.promotion_ms, result.clients_recovered,
                              options.clients);
  }

  reap(pid_b, SIGTERM);
  std::filesystem::remove_all(base);
  return result;
}

// --- replication overhead on the decision path ----------------------------
struct OverheadResult {
  double off_ms = 0;
  double on_ms = 0;
  double overhead_percent = 0;
  bool gate_met = false;
  bool ok = true;
  std::string error;
};

// One quantum of journaled controller work. Returns false on any error.
bool drive_quantum(core::Controller& controller, const Options& options,
                   replica::ReplicationSource* source) {
  for (int i = 0; i < options.overhead_registers; ++i) {
    if (!controller.register_script(tiny_bundle(i + 1)).ok()) return false;
    // Continuous drain: a live wire ships batches as they commit, so
    // the in-memory subscriber must not let them pile up either.
    if (source != nullptr) (void)source->take_pending(1);
  }
  for (int i = 0; i < options.overhead_cycles; ++i) {
    if (!controller.report_external_load("sp2-01", 1 + i % 3).ok()) {
      return false;
    }
    if (!controller.reevaluate().ok()) return false;
    if (source != nullptr) (void)source->take_pending(1);
  }
  return true;
}

OverheadResult run_overhead(const Options& options) {
  OverheadResult result;
  const std::string base = std::filesystem::temp_directory_path().string() +
                           "/abl_failover_ovh_" + std::to_string(::getpid());
  double off_ms = 1e18;
  double on_ms = 1e18;
  for (int repeat = 0; repeat < options.overhead_repeats && result.ok;
       ++repeat) {
    // Alternate which mode goes first so drifting background load
    // (journal writeback from a failover phase, say) cancels instead of
    // systematically favoring one side.
    const bool first = repeat % 2 == 1;
    for (bool replicated : {first, !first}) {
      std::filesystem::remove_all(base);
      std::filesystem::create_directories(base);
      core::Controller controller;
      if (!bootstrap_cluster(controller).ok()) {
        result.ok = false;
        result.error = "cluster setup failed";
        break;
      }
      persist::PersistConfig config;
      config.dir = base;
      config.snapshot_every_epochs = 64;
      // No fsync inside the measured quantum: its cost is identical
      // with and without replication, and its latency noise swamps the
      // few-percent signal this gate exists to bound. Excluding it
      // shrinks the denominator, making the <2% gate stricter.
      config.fsync_every_epochs = 1 << 20;
      auto opened = persist::Persistence::open(config, controller);
      if (!opened.ok()) {
        result.ok = false;
        result.error = "persistence open: " + opened.error().to_string();
        break;
      }
      std::unique_ptr<replica::ReplicationSource> source;
      if (replicated) {
        source = std::make_unique<replica::ReplicationSource>(
            opened.value().get());
        opened.value()->set_replication_tap(source.get());
        // In-memory subscriber at the current position: every commit is
        // counted, framed and hex-encoded exactly as for a live wire.
        (void)source->handshake(1, "bench",
                                opened.value()->replication_position().generation,
                                opened.value()->replication_position().offset);
      }
      const auto t0 = Clock::now();
      const bool drove = drive_quantum(controller, options, source.get());
      const double wall_ms = ms_since(t0);
      if (!drove) {
        result.ok = false;
        result.error = "overhead quantum drive failed";
        break;
      }
      if (replicated) {
        const auto position = opened.value()->replication_position();
        source->note_ack(1, position.generation, position.offset, 0);
        on_ms = std::min(on_ms, wall_ms);
      } else {
        off_ms = std::min(off_ms, wall_ms);
      }
    }
  }
  std::filesystem::remove_all(base);
  if (result.ok) {
    result.off_ms = off_ms;
    result.on_ms = on_ms;
    result.overhead_percent =
        off_ms > 0 ? 100.0 * (on_ms - off_ms) / off_ms : 0;
    result.gate_met = result.overhead_percent < 2.0;
  }
  return result;
}

int run(const Options& options) {
  metric::set_telemetry_enabled(true);
  std::printf("=== Controller failover: promotion, storm drain, overhead ===\n");
  std::printf(
      "scenario: %d v2 clients, lease ttl 600ms/renew 150ms, %d failover "
      "iteration(s)\n\n",
      options.clients, options.iterations);

  bool ok = true;
  // The overhead gate compares ~100ms quanta to sub-percent precision;
  // run it before the failover storm fills the page cache with journal
  // writeback from 2x3 node directories.
  OverheadResult overhead = run_overhead(options);

  std::vector<FailoverResult> failovers;
  std::printf("%5s %13s %11s %11s %11s %10s\n", "iter", "promotion_ms",
              "drain_p50", "drain_p99", "drain_max", "recovered");
  for (int i = 0; i < options.iterations; ++i) {
    FailoverResult result = run_failover(options, i);
    std::printf("%5d %13.1f %11.1f %11.1f %11.1f %7d/%d\n", i,
                result.promotion_ms, result.drain_p50_ms, result.drain_p99_ms,
                result.drain_max_ms, result.clients_recovered,
                options.clients);
    if (!result.ok) {
      std::printf("  !! iteration %d: %s\n", i, result.error.c_str());
      ok = false;
    }
    failovers.push_back(result);
  }

  if (overhead.ok) {
    std::printf(
        "\nreplication overhead (journaled quantum, best-of-%d): off %.3f ms, "
        "on %.3f ms, overhead %.2f%% (<2%% required): %s\n",
        options.overhead_repeats, overhead.off_ms, overhead.on_ms,
        overhead.overhead_percent, overhead.gate_met ? "PASS" : "FAIL");
  } else {
    std::printf("\n!! overhead phase: %s\n", overhead.error.c_str());
  }
  ok = ok && overhead.ok && overhead.gate_met;

  std::string iterations_json;
  for (const auto& result : failovers) {
    if (!iterations_json.empty()) iterations_json += ",";
    iterations_json += str_format(
        "\n    {\"promotion_ms\": %.1f, \"drain_p50_ms\": %.1f, "
        "\"drain_p99_ms\": %.1f, \"drain_max_ms\": %.1f, "
        "\"clients_recovered\": %d, \"ok\": %s}",
        result.promotion_ms, result.drain_p50_ms, result.drain_p99_ms,
        result.drain_max_ms, result.clients_recovered,
        result.ok ? "true" : "false");
  }
  FILE* out = std::fopen("BENCH_failover.json", "w");
  if (out != nullptr) {
    std::fprintf(
        out,
        "{\n  \"bench\": \"abl_failover\",\n  \"clients\": %d,\n"
        "  \"lease_ttl_ms\": 600,\n"
        "  \"iterations\": [%s\n  ],\n"
        "  \"overhead_off_ms\": %.3f,\n  \"overhead_on_ms\": %.3f,\n"
        "  \"overhead_percent\": %.2f,\n  \"overhead_gate_met\": %s\n}\n",
        options.clients, iterations_json.c_str(), overhead.off_ms,
        overhead.on_ms, overhead.overhead_percent,
        overhead.gate_met ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_failover.json\n");
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_int = [&](int fallback) {
      return (i + 1 < argc) ? std::atoi(argv[++i]) : fallback;
    };
    if (arg == "--clients") {
      options.clients = next_int(options.clients);
    } else if (arg == "--iterations") {
      options.iterations = next_int(options.iterations);
    } else if (arg == "--smoke") {
      // Smoke shrinks only the failover swarm; the overhead quantum is
      // already sub-second at full scale and shrinking it makes the
      // best-of-N minima too noisy for a 2% gate.
      options.smoke = true;
      options.clients = 24;
      options.iterations = 1;
    } else {
      std::fprintf(stderr,
                   "usage: abl_failover [--clients N] [--iterations K] "
                   "[--smoke]\n");
      return 2;
    }
  }
  return run(options);
}
