file(REMOVE_RECURSE
  "CMakeFiles/rsl_expr_test.dir/rsl_expr_test.cc.o"
  "CMakeFiles/rsl_expr_test.dir/rsl_expr_test.cc.o.d"
  "rsl_expr_test"
  "rsl_expr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsl_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
