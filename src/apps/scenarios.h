// Cluster scripts for the paper's experiment scenarios (harmonyNode
// advertisements, Table 1 syntax).
#pragma once

#include <string>

#include "common/strings.h"

namespace harmony::apps {

// n client nodes "sp2-XX" plus a database server host. The server is
// modeled a bit beefier than the clients (speed 2.25 vs 1.0 relative to
// the 400 MHz PII reference), which places the QS->DS crossover at
// three clients as in Figure 7. 320 Mbps full switch, as on the
// paper's SP-2.
inline std::string db_cluster_script(int clients,
                                     double server_speed = 2.25,
                                     double mbps = 320) {
  std::string script;
  for (int i = 0; i < clients; ++i) {
    script += str_format("harmonyNode sp2-%02d {speed 1.0} {memory 64} {os aix}", i);
    for (int j = 0; j < i; ++j) {
      script += str_format(" {link sp2-%02d %g 0.05}", j, mbps);
    }
    script += "\n";
  }
  script += str_format("harmonyNode server {speed %g} {memory 512} {os aix}",
                       server_speed);
  for (int i = 0; i < clients; ++i) {
    script += str_format(" {link sp2-%02d %g 0.05}", i, mbps);
  }
  script += "\n";
  return script;
}

// n identical worker nodes on a full switch (the Figure 4 testbed: an
// 8-processor SP-2 partition).
inline std::string worker_cluster_script(int workers, double memory_mb = 64,
                                         double mbps = 320) {
  std::string script;
  for (int i = 0; i < workers; ++i) {
    script += str_format("harmonyNode sp2-%02d {speed 1.0} {memory %g} {os aix}",
                         i, memory_mb);
    for (int j = 0; j < i; ++j) {
      script += str_format(" {link sp2-%02d %g 0.05}", j, mbps);
    }
    script += "\n";
  }
  return script;
}

}  // namespace harmony::apps
