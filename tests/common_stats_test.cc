#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace harmony {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStats, EmptyMinMaxAreIdentities) {
  // An empty sample used to report min()==max()==0.0, which poisons
  // std::min/std::max folds over several stats objects. The identities
  // (+inf for min, -inf for max) make the empty object neutral.
  RunningStats s;
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_GT(s.min(), 0.0);
  EXPECT_TRUE(std::isinf(s.max()));
  EXPECT_LT(s.max(), 0.0);
  // Folding an empty object into a real one leaves the real extrema.
  RunningStats real;
  real.add(4.0);
  EXPECT_DOUBLE_EQ(std::min(real.min(), s.min()), 4.0);
  EXPECT_DOUBLE_EQ(std::max(real.max(), s.max()), 4.0);
  // And the first add establishes both bounds.
  s.add(-2.5);
  EXPECT_DOUBLE_EQ(s.min(), -2.5);
  EXPECT_DOUBLE_EQ(s.max(), -2.5);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, ResetClearsEverything) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 10.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Percentile, NearestRank) {
  std::vector<double> v{15, 20, 35, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 15);
  EXPECT_DOUBLE_EQ(percentile(v, 0.30), 20);
  EXPECT_DOUBLE_EQ(percentile(v, 0.40), 20);
  EXPECT_DOUBLE_EQ(percentile(v, 0.50), 35);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 50);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({50, 15, 40, 20, 35}, 0.5), 35);
}

TEST(PiecewiseLinear, InterpolatesBetweenPoints) {
  std::vector<std::pair<double, double>> pts{{1, 10}, {2, 20}, {4, 40}};
  EXPECT_DOUBLE_EQ(piecewise_linear(pts, 1.5), 15.0);
  EXPECT_DOUBLE_EQ(piecewise_linear(pts, 3.0), 30.0);
  EXPECT_DOUBLE_EQ(piecewise_linear(pts, 2.0), 20.0);
}

TEST(PiecewiseLinear, ClampsAtEnds) {
  std::vector<std::pair<double, double>> pts{{1, 10}, {4, 40}};
  EXPECT_DOUBLE_EQ(piecewise_linear(pts, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(piecewise_linear(pts, 100.0), 40.0);
}

TEST(PiecewiseLinear, SinglePointIsConstant) {
  std::vector<std::pair<double, double>> pts{{3, 7}};
  EXPECT_DOUBLE_EQ(piecewise_linear(pts, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(piecewise_linear(pts, 3.0), 7.0);
  EXPECT_DOUBLE_EQ(piecewise_linear(pts, 9.0), 7.0);
}

// The paper's Bag speedup curve: interpolation must be monotone
// decreasing for a decreasing point set.
TEST(PiecewiseLinear, MonotoneOnBagCurve) {
  std::vector<std::pair<double, double>> pts{
      {1, 1250}, {2, 640}, {4, 340}, {5, 290}, {6, 270}, {7, 260}, {8, 255}};
  double prev = piecewise_linear(pts, 1.0);
  for (double x = 1.1; x <= 8.0; x += 0.1) {
    double y = piecewise_linear(pts, x);
    EXPECT_LE(y, prev + 1e-9) << "x=" << x;
    prev = y;
  }
}

}  // namespace
}  // namespace harmony
