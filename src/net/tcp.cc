#include "net/tcp.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/strings.h"

namespace harmony::net {

namespace {

Error errno_error(const char* what) {
  return Error{ErrorCode::kTransport,
               str_format("%s: %s", what, std::strerror(errno))};
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Fd::release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Fd> listen_on(uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Result<Fd>(errno_error("socket"));
  int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Result<Fd>(errno_error("bind"));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Result<Fd>(errno_error("listen"));
  }
  return fd;
}

Result<uint16_t> local_port(const Fd& fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Err<uint16_t>(ErrorCode::kTransport, std::strerror(errno));
  }
  return ntohs(addr.sin_port);
}

Result<Fd> accept_connection(const Fd& listener) {
  int fd = ::accept(listener.get(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Err<Fd>(ErrorCode::kTimeout, "no pending connection");
    }
    if (errno == EMFILE || errno == ENFILE) {
      // Fd exhaustion is recoverable (shed the pending connection, keep
      // the listener alive) — distinguish it from hard accept failures.
      return Err<Fd>(ErrorCode::kCapacity, "out of file descriptors");
    }
    return Result<Fd>(errno_error("accept"));
  }
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Fd(fd);
}

Result<Fd> connect_to(const std::string& host, uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Result<Fd>(errno_error("socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* ip = (host == "localhost" || host.empty()) ? "127.0.0.1"
                                                         : host.c_str();
  if (::inet_pton(AF_INET, ip, &addr.sin_addr) != 1) {
    return Err<Fd>(ErrorCode::kInvalidArgument, "bad address: " + host);
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Result<Fd>(errno_error("connect"));
  }
  int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status set_nonblocking(const Fd& fd, bool nonblocking) {
  int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0) return Status(errno_error("fcntl"));
  if (nonblocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  if (::fcntl(fd.get(), F_SETFL, flags) != 0) {
    return Status(errno_error("fcntl"));
  }
  return Status::Ok();
}

Result<size_t> read_some(const Fd& fd, char* buffer, size_t capacity) {
  ssize_t n = ::recv(fd.get(), buffer, capacity, 0);
  if (n > 0) return static_cast<size_t>(n);
  if (n == 0) return Err<size_t>(ErrorCode::kClosed, "peer closed");
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return static_cast<size_t>(0);
  }
  return Err<size_t>(ErrorCode::kTransport, std::strerror(errno));
}

Result<size_t> write_some(const Fd& fd, const char* data, size_t length) {
  // MSG_NOSIGNAL: a peer that vanished mid-write must surface as EPIPE,
  // not kill the process with SIGPIPE.
  ssize_t n = ::send(fd.get(), data, length, MSG_NOSIGNAL);
  if (n >= 0) return static_cast<size_t>(n);
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return static_cast<size_t>(0);
  }
  return Err<size_t>(ErrorCode::kTransport, std::strerror(errno));
}

Status write_all(const Fd& fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    auto n = write_some(fd, data.data() + sent, data.size() - sent);
    if (!n.ok()) return Status(n.error().code, n.error().message);
    sent += n.value();
  }
  return Status::Ok();
}

}  // namespace harmony::net
