#include "sim/network.h"

#include <gtest/gtest.h>

namespace harmony::sim {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // a --80Mbps-- b --40Mbps-- c   (80 Mbps = 10 MB/s, 40 Mbps = 5 MB/s)
    ASSERT_TRUE(topo_.add_node("a", 1, 64).ok());
    ASSERT_TRUE(topo_.add_node("b", 1, 64).ok());
    ASSERT_TRUE(topo_.add_node("c", 1, 64).ok());
    ASSERT_TRUE(topo_.add_link(0, 1, 80).ok());
    ASSERT_TRUE(topo_.add_link(1, 2, 40).ok());
    net_ = std::make_unique<NetworkModel>(&engine_, &topo_);
  }
  SimEngine engine_;
  cluster::Topology topo_;
  std::unique_ptr<NetworkModel> net_;
};

TEST_F(NetworkTest, SingleFlowAtLinkRate) {
  double done_at = -1;
  ASSERT_TRUE(net_->transfer(0, 1, 100.0, [&] { done_at = engine_.now(); }).ok());
  engine_.run();
  EXPECT_DOUBLE_EQ(done_at, 10.0) << "100 MB at 10 MB/s";
}

TEST_F(NetworkTest, MultiHopUsesBottleneck) {
  double done_at = -1;
  ASSERT_TRUE(net_->transfer(0, 2, 100.0, [&] { done_at = engine_.now(); }).ok());
  engine_.run();
  EXPECT_DOUBLE_EQ(done_at, 20.0) << "bottleneck 5 MB/s";
}

TEST_F(NetworkTest, TwoFlowsShareALink) {
  std::vector<double> done;
  ASSERT_TRUE(net_->transfer(0, 1, 50.0, [&] { done.push_back(engine_.now()); }).ok());
  ASSERT_TRUE(net_->transfer(0, 1, 50.0, [&] { done.push_back(engine_.now()); }).ok());
  engine_.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 10.0) << "each gets 5 MB/s";
  EXPECT_DOUBLE_EQ(done[1], 10.0);
}

TEST_F(NetworkTest, MaxMinSharingAcrossDifferentPaths) {
  // Flow 1: a->b (uses link ab). Flow 2: a->c (uses ab and bc).
  // bc (5 MB/s) constrains flow 2 first; flow 1 then gets the rest of
  // ab: 10 - 5 = 5 MB/s... but max-min: ab has 2 flows, fair share 5;
  // bc has 1 flow, share 5. Most constrained is equal; flow2 frozen at
  // 5, then flow1 gets remaining ab capacity 5.
  FlowId f1 = net_->transfer(0, 1, 100.0, nullptr).value();
  FlowId f2 = net_->transfer(0, 2, 100.0, nullptr).value();
  EXPECT_DOUBLE_EQ(net_->current_rate(f1).value(), 5.0);
  EXPECT_DOUBLE_EQ(net_->current_rate(f2).value(), 5.0);
}

TEST_F(NetworkTest, RatesRecoverAfterCompletion) {
  // Short flow shares, finishes, long flow speeds back up.
  double long_done = -1;
  ASSERT_TRUE(net_->transfer(0, 1, 100.0, [&] { long_done = engine_.now(); }).ok());
  ASSERT_TRUE(net_->transfer(0, 1, 25.0, nullptr).ok());
  engine_.run();
  // Shared at 5 MB/s until t=5 (short done, 25MB each transferred);
  // long has 75 MB left at 10 MB/s: done at 5 + 7.5 = 12.5.
  EXPECT_DOUBLE_EQ(long_done, 12.5);
}

TEST_F(NetworkTest, DisconnectedFails) {
  cluster::Topology topo;
  ASSERT_TRUE(topo.add_node("x", 1, 64).ok());
  ASSERT_TRUE(topo.add_node("y", 1, 64).ok());
  SimEngine engine;
  NetworkModel net(&engine, &topo);
  EXPECT_FALSE(net.transfer(0, 1, 10.0, nullptr).ok());
}

TEST_F(NetworkTest, LocalTransferUsesLocalRate) {
  SimEngine engine;
  NetworkModel net(&engine, &topo_, 8000.0);  // 1000 MB/s
  double done_at = -1;
  ASSERT_TRUE(net.transfer(1, 1, 1000.0, [&] { done_at = engine.now(); }).ok());
  engine.run();
  EXPECT_DOUBLE_EQ(done_at, 1.0);
}

TEST_F(NetworkTest, LatencyDelaysStart) {
  cluster::Topology topo;
  ASSERT_TRUE(topo.add_node("x", 1, 64).ok());
  ASSERT_TRUE(topo.add_node("y", 1, 64).ok());
  ASSERT_TRUE(topo.add_link(0, 1, 80, 500.0).ok());  // 0.5 s latency
  SimEngine engine;
  NetworkModel net(&engine, &topo);
  double done_at = -1;
  ASSERT_TRUE(net.transfer(0, 1, 10.0, [&] { done_at = engine.now(); }).ok());
  engine.run();
  EXPECT_DOUBLE_EQ(done_at, 1.5) << "0.5 s latency + 1 s transfer";
}

TEST_F(NetworkTest, CancelStopsFlow) {
  bool fired = false;
  FlowId id = net_->transfer(0, 1, 100.0, [&] { fired = true; }).value();
  double other_done = -1;
  ASSERT_TRUE(net_->transfer(0, 1, 50.0, [&] { other_done = engine_.now(); }).ok());
  engine_.schedule(2.0, [&] { ASSERT_TRUE(net_->cancel(id).ok()); });
  engine_.run();
  EXPECT_FALSE(fired);
  // Other: 10 MB done by t=2 shared, then 40 MB at 10 MB/s: t=6.
  EXPECT_DOUBLE_EQ(other_done, 6.0);
  EXPECT_FALSE(net_->cancel(id).ok());
}

TEST_F(NetworkTest, ZeroByteTransferCompletesImmediately) {
  double done_at = -1;
  ASSERT_TRUE(net_->transfer(0, 1, 0.0, [&] { done_at = engine_.now(); }).ok());
  engine_.run();
  EXPECT_DOUBLE_EQ(done_at, 0.0);
}

TEST_F(NetworkTest, NegativeSizeRejected) {
  EXPECT_FALSE(net_->transfer(0, 1, -1.0, nullptr).ok());
}

TEST_F(NetworkTest, CallbackCanStartNewTransfer) {
  // Request/response pattern: a->b then b->a.
  double round_trip_done = -1;
  ASSERT_TRUE(net_
                  ->transfer(0, 1, 10.0,
                             [&] {
                               ASSERT_TRUE(net_
                                               ->transfer(1, 0, 10.0,
                                                          [&] {
                                                            round_trip_done =
                                                                engine_.now();
                                                          })
                                               .ok());
                             })
                  .ok());
  engine_.run();
  EXPECT_DOUBLE_EQ(round_trip_done, 2.0);
}

// Property: with n equal flows on one link, each finishes at n * solo
// time (the link is work-conserving under fair sharing).
class FlowSweep : public ::testing::TestWithParam<int> {};

TEST_P(FlowSweep, FairShareWorkConservation) {
  cluster::Topology topo;
  ASSERT_TRUE(topo.add_node("x", 1, 64).ok());
  ASSERT_TRUE(topo.add_node("y", 1, 64).ok());
  ASSERT_TRUE(topo.add_link(0, 1, 80).ok());  // 10 MB/s
  SimEngine engine;
  NetworkModel net(&engine, &topo);
  const int n = GetParam();
  std::vector<double> done;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(net.transfer(0, 1, 20.0, [&] { done.push_back(engine.now()); }).ok());
  }
  engine.run();
  ASSERT_EQ(done.size(), static_cast<size_t>(n));
  for (double t : done) EXPECT_NEAR(t, n * 2.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Flows, FlowSweep, ::testing::Values(1, 2, 4, 7));

}  // namespace
}  // namespace harmony::sim
