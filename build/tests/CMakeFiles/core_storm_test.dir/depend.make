# Empty dependencies file for core_storm_test.
# This may be replaced when dependencies are built.
