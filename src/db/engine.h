// The hybrid client-server database of §3.5/§6: two Wisconsin relations
// with indexes on the selection and join attributes, executing the
// benchmark query under either placement:
//
//   query shipping (QS): selections and join run at the server; only
//     result tuples cross the network.
//   data shipping (DS): the server runs the (cheap, indexed) selections
//     and ships the selected base tuples; the client runs the join,
//     consulting its bucket cache to skip transfers it has seen.
//
// execute() really runs the operators and converts the measured work
// counters into reference-machine CPU seconds and transfer megabytes —
// the relative QS/DS costs are emergent, not hard-coded.
#pragma once

#include <memory>

#include "db/bufferpool.h"
#include "db/cache.h"
#include "db/executor.h"
#include "db/table.h"

namespace harmony::db {

enum class Placement { kQueryShipping, kDataShipping };

const char* placement_name(Placement placement);

// Per-row CPU costs in reference-machine seconds. Defaults are
// calibrated so the full benchmark query costs ~18 reference-seconds
// (≈9 s on the paper's server), matching Figure 7's ~10 s single-client
// response time.
struct CostModel {
  double select_per_row = 1e-4;   // index select, per matching row
  double build_per_row = 8e-4;    // hash-table build, per row
  double probe_per_row = 8e-4;    // hash probe, per row
  double result_per_row = 1e-5;   // result materialization, per row
  double parse_cost = 0.1;        // client-side query parse/plan
  // Charged at the server per buffer-pool page miss (disk fetch). Only
  // applies when a server BufferPool is attached.
  double io_per_page_miss = 3e-4;
};

struct ExecutionProfile {
  Placement placement = Placement::kQueryShipping;
  double server_cpu_s = 0;  // reference seconds at the server
  double client_cpu_s = 0;  // reference seconds at the client
  double transfer_mb = 0;   // bytes shipped server -> client
  uint64_t cache_hits = 0;  // DS only
  uint64_t cache_misses = 0;
  uint64_t page_hits = 0;    // server buffer pool, when attached
  uint64_t page_misses = 0;  // (cold pages cost io_per_page_miss each)
  WorkCounters work;
};

class DbEngine {
 public:
  // Builds both relations (paper: 100,000 tuples each) with indexes on
  // tenPercent (selection) and unique1 (join).
  DbEngine(size_t rows_per_relation, uint64_t seed);

  const Table& left() const { return left_; }
  const Table& right() const { return right_; }
  size_t rows_per_relation() const { return rows_; }
  // Size of one tenPercent bucket in MB (rows/10 tuples).
  double bucket_mb() const;

  // Executes the query under the given placement. For data shipping,
  // client_cache (optional) models the client's bucket cache.
  ExecutionProfile execute(const BenchmarkQuery& query, Placement placement,
                           BucketCache* client_cache = nullptr,
                           const CostModel& costs = CostModel());

  // Attaches a server-side page buffer pool, shared by every client
  // using this engine (the paper's cooperative caching). Pass nullptr
  // to detach. The pool must outlive the engine's use of it.
  void set_server_cache(BufferPool* pool) { server_cache_ = pool; }
  const BufferPool* server_cache() const { return server_cache_; }

 private:
  size_t rows_;
  Table left_;
  Table right_;
  BufferPool* server_cache_ = nullptr;
};

}  // namespace harmony::db
