#include "client/capi.h"

#include <cstring>
#include <map>
#include <memory>

#include "client/client.h"
#include "common/strings.h"
#include "core/controller.h"

namespace {

using harmony::client::HarmonyClient;
using harmony::client::InProcTransport;
using harmony::client::Transport;

struct TypedSlot {
  int type = HARMONY_VAR_STRING;
  long int_value = 0;
  double real_value = 0;
  char string_value[256] = {0};
  const std::string* source = nullptr;  // client-library storage

  void refresh() {
    if (source == nullptr) return;
    switch (type) {
      case HARMONY_VAR_INT: {
        long long v = 0;
        double d = 0;
        if (harmony::parse_int64(*source, &v)) {
          int_value = static_cast<long>(v);
        } else if (harmony::parse_double(*source, &d)) {
          int_value = static_cast<long>(d);
        }
        break;
      }
      case HARMONY_VAR_REAL: {
        double v = 0;
        if (harmony::parse_double(*source, &v)) real_value = v;
        break;
      }
      default: {
        std::snprintf(string_value, sizeof(string_value), "%s",
                      source->c_str());
        break;
      }
    }
  }

  void* address() {
    switch (type) {
      case HARMONY_VAR_INT: return &int_value;
      case HARMONY_VAR_REAL: return &real_value;
      default: return string_value;
    }
  }
};

struct ShimState {
  std::unique_ptr<InProcTransport> owned_transport;
  Transport* transport = nullptr;
  std::unique_ptr<HarmonyClient> client;
  std::map<std::string, std::unique_ptr<TypedSlot>> slots;
  std::string last_error;
};

ShimState& shim() {
  static ShimState state;
  return state;
}

int fail(const std::string& message) {
  shim().last_error = message;
  return -1;
}

int check(const harmony::Status& status) {
  if (status.ok()) {
    shim().last_error.clear();
    return 0;
  }
  return fail(status.to_string());
}

}  // namespace

void harmony_connect_local(harmony::core::Controller* controller) {
  auto& s = shim();
  s.owned_transport = std::make_unique<InProcTransport>(controller);
  s.transport = s.owned_transport.get();
  s.client.reset();
  s.slots.clear();
  s.last_error.clear();
}

void harmony_connect_transport(harmony::client::Transport* transport) {
  auto& s = shim();
  s.owned_transport.reset();
  s.transport = transport;
  s.client.reset();
  s.slots.clear();
  s.last_error.clear();
}

int harmony_startup(const char* unique_id, int use_interrupts) {
  auto& s = shim();
  if (s.transport == nullptr) {
    return fail("not connected: call harmony_connect_local first");
  }
  if (s.client != nullptr) return fail("harmony_startup already called");
  s.client = std::make_unique<HarmonyClient>(s.transport);
  return check(s.client->startup(unique_id ? unique_id : "",
                                 use_interrupts != 0));
}

int harmony_bundle_setup(const char* bundle_definition) {
  auto& s = shim();
  if (s.client == nullptr) return fail("call harmony_startup first");
  return check(s.client->bundle_setup(bundle_definition ? bundle_definition
                                                        : ""));
}

void* harmony_add_variable(const char* name, const char* default_value,
                           int var_type) {
  auto& s = shim();
  if (s.client == nullptr || name == nullptr) {
    fail("call harmony_startup first");
    return nullptr;
  }
  const std::string* storage =
      s.client->add_variable(name, default_value ? default_value : "");
  auto& slot = s.slots[name];
  if (slot == nullptr) slot = std::make_unique<TypedSlot>();
  slot->type = var_type;
  slot->source = storage;
  slot->refresh();
  s.last_error.clear();
  return slot->address();
}

int harmony_wait_for_update(void) {
  auto& s = shim();
  if (s.client == nullptr) return fail("call harmony_startup first");
  auto status = s.client->wait_for_update();
  if (!status.ok()) return check(status);
  for (auto& [name, slot] : s.slots) slot->refresh();
  s.last_error.clear();
  return 0;
}

int harmony_end(void) {
  auto& s = shim();
  if (s.client == nullptr) return fail("call harmony_startup first");
  auto status = s.client->end();
  s.client.reset();
  s.slots.clear();
  return check(status);
}

const char* harmony_last_error(void) { return shim().last_error.c_str(); }
