// Metric interface (paper §2): "a unified way to gather data about the
// performance of applications and their execution environment. Data
// about system conditions and application resource requirements flow
// into the metric interface, and on to both the adaptation controller
// and individual applications."
//
// MetricRegistry stores named time series; observers (the controller,
// experiment harnesses) subscribe to updates.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"

namespace harmony::metric {

struct Sample {
  double time = 0.0;
  double value = 0.0;
};

class TimeSeries {
 public:
  // Retention bound: a series never holds more than this many samples.
  // When the bound is reached the oldest half is folded into
  // total_stats() and evicted in one block (amortized O(1) per add),
  // so long-running servers stop leaking while recent-window queries
  // keep at least retention/2 trailing samples to work with.
  static constexpr size_t kDefaultRetention = 1 << 16;

  // Sample times must be non-decreasing (simulation time).
  void add(double time, double value);

  // Must be >= 2; evicts immediately if already over the new bound.
  void set_retention(size_t max_samples);
  size_t retention() const { return retention_; }

  // Retained (most recent) samples only; see total_stats() for the
  // all-time aggregate including evicted samples.
  const std::vector<Sample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty() && evicted_.count() == 0; }
  size_t size() const { return samples_.size(); }
  // Total samples ever recorded, including evicted ones.
  size_t total_count() const { return evicted_.count() + samples_.size(); }
  double last_value() const;
  double last_time() const;

  // Statistics over retained samples with time in [from, to].
  RunningStats stats_between(double from, double to) const;
  // Statistics over the trailing window [last_time - window, last_time].
  RunningStats stats_window(double window) const;
  // Mean over every sample ever recorded (evicted included).
  double mean() const;
  // All-time aggregate (count/mean/min/max/sum) over every sample ever
  // recorded, evicted included.
  RunningStats total_stats() const;

 private:
  void evict_oldest_block();

  std::vector<Sample> samples_;
  size_t retention_ = kDefaultRetention;
  RunningStats evicted_;  // aggregate of samples dropped by retention
};

class MetricRegistry {
 public:
  using Observer =
      std::function<void(const std::string& name, double time, double value)>;

  // Records a sample and notifies observers.
  void record(const std::string& name, double time, double value);

  bool has(const std::string& name) const { return series_.count(name) > 0; }
  // Creates the series if absent.
  TimeSeries& series(const std::string& name) { return series_[name]; }
  const TimeSeries* find(const std::string& name) const;
  std::vector<std::string> names() const;

  void subscribe(Observer observer) {
    observers_.push_back(std::move(observer));
  }

  // "time,value" CSV lines for one series (experiment output).
  std::string export_csv(const std::string& name) const;

  void clear() { series_.clear(); }

 private:
  std::map<std::string, TimeSeries> series_;  // ordered names() output
  std::vector<Observer> observers_;
};

}  // namespace harmony::metric
