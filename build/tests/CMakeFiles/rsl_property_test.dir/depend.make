# Empty dependencies file for rsl_property_test.
# This may be replaced when dependencies are built.
