#include "db/table.h"

#include <algorithm>

#include "common/assert.h"

namespace harmony::db {

const char* attr_name(Attr attr) {
  switch (attr) {
    case Attr::kUnique1: return "unique1";
    case Attr::kUnique2: return "unique2";
    case Attr::kTen: return "ten";
    case Attr::kOnePercent: return "onePercent";
    case Attr::kTenPercent: return "tenPercent";
    case Attr::kTwentyPercent: return "twentyPercent";
  }
  return "unknown";
}

int32_t attr_value(const WisconsinTuple& tuple, Attr attr) {
  switch (attr) {
    case Attr::kUnique1: return tuple.unique1;
    case Attr::kUnique2: return tuple.unique2;
    case Attr::kTen: return tuple.ten;
    case Attr::kOnePercent: return tuple.one_percent;
    case Attr::kTenPercent: return tuple.ten_percent;
    case Attr::kTwentyPercent: return tuple.twenty_percent;
  }
  return 0;
}

RowId Table::insert(const WisconsinTuple& tuple) {
  RowId id = static_cast<RowId>(rows_.size());
  rows_.push_back(tuple);
  for (auto& [attr, index] : indexes_) {
    index.emplace(attr_value(tuple, static_cast<Attr>(attr)), id);
  }
  return id;
}

void Table::bulk_load(std::vector<WisconsinTuple> tuples) {
  rows_ = std::move(tuples);
  // Rebuild any existing indexes over the new contents.
  std::vector<int> attrs;
  for (auto& [attr, index] : indexes_) attrs.push_back(attr);
  indexes_.clear();
  for (int attr : attrs) build_index(static_cast<Attr>(attr));
}

const WisconsinTuple& Table::row(RowId id) const {
  HARMONY_ASSERT(id < rows_.size());
  return rows_[id];
}

void Table::build_index(Attr attr) {
  auto& index = indexes_[static_cast<int>(attr)];
  index.clear();
  index.reserve(rows_.size());
  for (RowId id = 0; id < rows_.size(); ++id) {
    index.emplace(attr_value(rows_[id], attr), id);
  }
}

bool Table::has_index(Attr attr) const {
  return indexes_.count(static_cast<int>(attr)) > 0;
}

std::vector<RowId> Table::select_eq(Attr attr, int32_t value,
                                    uint64_t* rows_examined) const {
  std::vector<RowId> out;
  auto it = indexes_.find(static_cast<int>(attr));
  if (it != indexes_.end()) {
    auto [lo, hi] = it->second.equal_range(value);
    for (auto entry = lo; entry != hi; ++entry) out.push_back(entry->second);
    // Index scans touch only matching rows.
    if (rows_examined) *rows_examined += out.size();
    // Hash-bucket order is implementation-defined; sort for determinism.
    std::sort(out.begin(), out.end());
    return out;
  }
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (attr_value(rows_[id], attr) == value) out.push_back(id);
  }
  if (rows_examined) *rows_examined += rows_.size();
  return out;
}

std::vector<RowId> Table::scan_filter(
    const std::function<bool(const WisconsinTuple&)>& predicate,
    uint64_t* rows_examined) const {
  std::vector<RowId> out;
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (predicate(rows_[id])) out.push_back(id);
  }
  if (rows_examined) *rows_examined += rows_.size();
  return out;
}

}  // namespace harmony::db
