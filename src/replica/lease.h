// Primaryship lease: a small file holding {term holder expiry_ms},
// read-checked-written under an exclusive flock(2) so exactly one node
// can hold a live lease at a time. The term is the fencing generation:
// every acquisition bumps it, a promotion therefore outranks the dead
// primary's term, and a deposed primary discovers its demotion the
// moment a renew finds a higher term — it must stop serving, never
// rejoin with stale state.
//
// Scope: the flock arbitration is per-host (the lease file lives on a
// filesystem all candidate processes share — the multi-process failover
// topology this repo tests). A cross-host deployment would swap this
// for a distributed lock service behind the same interface.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

namespace harmony::replica {

struct LeaseInfo {
  uint64_t term = 0;
  std::string holder;
  // Absolute expiry, milliseconds since the Unix epoch (wall clock: the
  // processes sharing the file share the clock).
  int64_t expiry_ms = 0;
};

class LeaseFile {
 public:
  explicit LeaseFile(std::string path) : path_(std::move(path)) {}

  // Reads the current lease (kNotFound when none was ever written).
  Result<LeaseInfo> read() const;

  // Takes the lease if it is free, expired, or already ours: writes
  // {term+1, holder, now+ttl} and returns the new term. A live lease
  // held by someone else returns kNotPrimary.
  Result<uint64_t> try_acquire(const std::string& holder, int64_t ttl_ms);

  // Extends our lease. Fails with kNotPrimary if the file no longer
  // names (holder, term) — we were deposed; the caller must stop
  // serving immediately.
  Status renew(const std::string& holder, uint64_t term, int64_t ttl_ms);

  // True when the lease is absent or its expiry has passed.
  Result<bool> expired() const;

  static int64_t now_ms();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace harmony::replica
