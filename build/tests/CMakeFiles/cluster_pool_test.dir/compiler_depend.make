# Empty compiler generated dependencies file for cluster_pool_test.
# This may be replaced when dependencies are built.
