#include "db/engine.h"

#include "common/assert.h"
#include "db/wisconsin.h"

namespace harmony::db {

const char* placement_name(Placement placement) {
  switch (placement) {
    case Placement::kQueryShipping: return "QS";
    case Placement::kDataShipping: return "DS";
  }
  return "unknown";
}

DbEngine::DbEngine(size_t rows_per_relation, uint64_t seed)
    : rows_(rows_per_relation), left_("wisc1"), right_("wisc2") {
  HARMONY_ASSERT(rows_per_relation >= 10);
  left_.bulk_load(generate_wisconsin(rows_per_relation, seed));
  right_.bulk_load(generate_wisconsin(rows_per_relation, seed ^ 0x9E3779B9));
  left_.build_index(Attr::kTenPercent);
  left_.build_index(Attr::kUnique1);
  right_.build_index(Attr::kTenPercent);
  right_.build_index(Attr::kUnique1);
}

double DbEngine::bucket_mb() const {
  return static_cast<double>(rows_ / 10) * kTupleBytes / 1e6;
}

ExecutionProfile DbEngine::execute(const BenchmarkQuery& query,
                                   Placement placement,
                                   BucketCache* client_cache,
                                   const CostModel& costs) {
  QueryResult result = run_benchmark_query(left_, right_, query);
  const WorkCounters& w = result.work;

  double select_cpu =
      static_cast<double>(w.rows_selected_left + w.rows_selected_right) *
      costs.select_per_row;

  // Server I/O: the selections fetch base pages through the shared
  // buffer pool (both placements read the base data at the server).
  uint64_t page_hits = 0, page_misses = 0;
  if (server_cache_ != nullptr) {
    auto touched_left = server_cache_->touch_rows(
        0, left_.select_eq(Attr::kTenPercent, query.left_ten_percent));
    auto touched_right = server_cache_->touch_rows(
        1, right_.select_eq(Attr::kTenPercent, query.right_ten_percent));
    page_hits = touched_left.hits + touched_right.hits;
    page_misses = touched_left.misses + touched_right.misses;
    select_cpu += static_cast<double>(page_misses) * costs.io_per_page_miss;
  }
  double join_cpu = static_cast<double>(w.join_build_rows) * costs.build_per_row +
                    static_cast<double>(w.join_probe_rows) * costs.probe_per_row +
                    static_cast<double>(w.result_rows) * costs.result_per_row;

  ExecutionProfile profile;
  profile.placement = placement;
  profile.work = w;
  profile.page_hits = page_hits;
  profile.page_misses = page_misses;

  if (placement == Placement::kQueryShipping) {
    profile.server_cpu_s = select_cpu + join_cpu;
    profile.client_cpu_s = costs.parse_cost;
    profile.transfer_mb = static_cast<double>(w.result_bytes) / 1e6;
    return profile;
  }

  // Data shipping: server selects, client joins; selected buckets cross
  // the wire unless cached.
  profile.server_cpu_s = select_cpu;
  profile.client_cpu_s = costs.parse_cost + join_cpu;
  double shipped = 0.0;
  auto account_bucket = [&](int relation, int32_t bucket, uint64_t rows) {
    double mb = static_cast<double>(rows) * kTupleBytes / 1e6;
    if (client_cache != nullptr &&
        client_cache->lookup_or_insert(relation, bucket, mb)) {
      ++profile.cache_hits;
    } else {
      if (client_cache != nullptr) ++profile.cache_misses;
      shipped += mb;
    }
  };
  account_bucket(0, query.left_ten_percent, w.rows_selected_left);
  account_bucket(1, query.right_ten_percent, w.rows_selected_right);
  if (client_cache == nullptr) {
    profile.cache_misses = 2;
  }
  profile.transfer_mb = shipped;
  return profile;
}

}  // namespace harmony::db
