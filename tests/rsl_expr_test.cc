#include "rsl/expr.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace harmony::rsl {
namespace {

double eval_num(const std::string& text, const ExprContext& ctx = {}) {
  auto r = expr_eval_number(text, ctx);
  EXPECT_TRUE(r.ok()) << text << ": "
                      << (r.ok() ? "" : r.error().to_string());
  return r.ok() ? r.value() : NAN;
}

ExprContext context_with(std::map<std::string, double> names) {
  ExprContext ctx;
  auto table = std::make_shared<std::map<std::string, double>>(std::move(names));
  ctx.name_lookup = [table](const std::string& name, double* out) {
    auto it = table->find(name);
    if (it == table->end()) return false;
    *out = it->second;
    return true;
  };
  ctx.var_lookup = [table](const std::string& name, std::string* out) {
    auto it = table->find(name);
    if (it == table->end()) return false;
    *out = std::to_string(it->second);
    return true;
  };
  return ctx;
}

TEST(Expr, Arithmetic) {
  EXPECT_DOUBLE_EQ(eval_num("1 + 2 * 3"), 7.0);
  EXPECT_DOUBLE_EQ(eval_num("(1 + 2) * 3"), 9.0);
  EXPECT_DOUBLE_EQ(eval_num("10 / 4"), 2.5);
  EXPECT_DOUBLE_EQ(eval_num("7 % 3"), 1.0);
  EXPECT_DOUBLE_EQ(eval_num("-3 + 5"), 2.0);
  EXPECT_DOUBLE_EQ(eval_num("2 ** 10"), 1024.0);
  EXPECT_DOUBLE_EQ(eval_num("2 ** 3 ** 2"), 512.0);  // right associative
}

TEST(Expr, Comparisons) {
  EXPECT_DOUBLE_EQ(eval_num("3 < 4"), 1.0);
  EXPECT_DOUBLE_EQ(eval_num("3 > 4"), 0.0);
  EXPECT_DOUBLE_EQ(eval_num("4 <= 4"), 1.0);
  EXPECT_DOUBLE_EQ(eval_num("4 >= 5"), 0.0);
  EXPECT_DOUBLE_EQ(eval_num("4 == 4"), 1.0);
  EXPECT_DOUBLE_EQ(eval_num("4 != 4"), 0.0);
}

TEST(Expr, Logical) {
  EXPECT_DOUBLE_EQ(eval_num("1 && 0"), 0.0);
  EXPECT_DOUBLE_EQ(eval_num("1 || 0"), 1.0);
  EXPECT_DOUBLE_EQ(eval_num("!1"), 0.0);
  EXPECT_DOUBLE_EQ(eval_num("!0"), 1.0);
  EXPECT_DOUBLE_EQ(eval_num("1 < 2 && 2 < 3"), 1.0);
}

TEST(Expr, Ternary) {
  EXPECT_DOUBLE_EQ(eval_num("1 ? 10 : 20"), 10.0);
  EXPECT_DOUBLE_EQ(eval_num("0 ? 10 : 20"), 20.0);
  EXPECT_DOUBLE_EQ(eval_num("1 ? 0 ? 1 : 2 : 3"), 2.0);  // nested
  EXPECT_DOUBLE_EQ(eval_num("3 > 2 ? 3 - 2 : 2 - 3"), 1.0);
}

TEST(Expr, Functions) {
  EXPECT_DOUBLE_EQ(eval_num("abs(-4)"), 4.0);
  EXPECT_DOUBLE_EQ(eval_num("sqrt(16)"), 4.0);
  EXPECT_DOUBLE_EQ(eval_num("pow(2, 8)"), 256.0);
  EXPECT_DOUBLE_EQ(eval_num("min(3, 1, 2)"), 1.0);
  EXPECT_DOUBLE_EQ(eval_num("max(3, 1, 2)"), 3.0);
  EXPECT_DOUBLE_EQ(eval_num("floor(2.7)"), 2.0);
  EXPECT_DOUBLE_EQ(eval_num("ceil(2.1)"), 3.0);
  EXPECT_DOUBLE_EQ(eval_num("round(2.5)"), 3.0);
  EXPECT_DOUBLE_EQ(eval_num("int(2.9)"), 2.0);
  EXPECT_NEAR(eval_num("exp(log(5))"), 5.0, 1e-12);
}

TEST(Expr, ScientificNotation) {
  EXPECT_DOUBLE_EQ(eval_num("1e3"), 1000.0);
  EXPECT_DOUBLE_EQ(eval_num("2.5e-2"), 0.025);
  EXPECT_DOUBLE_EQ(eval_num("1e3 + 1E2"), 1100.0);
}

TEST(Expr, NameResolution) {
  auto ctx = context_with({{"client.memory", 32.0}, {"workerNodes", 8.0}});
  EXPECT_DOUBLE_EQ(eval_num("client.memory * 2", ctx), 64.0);
  EXPECT_DOUBLE_EQ(eval_num("0.5 * workerNodes * workerNodes", ctx), 32.0);
}

TEST(Expr, PaperDataShippingBandwidth) {
  // Figure 3: link client server {44 + (client.memory > 24 ? 24 :
  // client.memory) - 17}
  const std::string expr =
      "44 + (client.memory > 24 ? 24 : client.memory) - 17";
  EXPECT_DOUBLE_EQ(eval_num(expr, context_with({{"client.memory", 17}})), 44.0);
  EXPECT_DOUBLE_EQ(eval_num(expr, context_with({{"client.memory", 24}})), 51.0);
  EXPECT_DOUBLE_EQ(eval_num(expr, context_with({{"client.memory", 32}})), 51.0);
  EXPECT_DOUBLE_EQ(eval_num(expr, context_with({{"client.memory", 20}})), 47.0);
}

TEST(Expr, DollarVariables) {
  auto ctx = context_with({{"n", 4.0}});
  EXPECT_DOUBLE_EQ(eval_num("$n + 1", ctx), 5.0);
  EXPECT_DOUBLE_EQ(eval_num("1200.0 / $n", ctx), 300.0);
}

TEST(Expr, StringEquality) {
  ExprContext ctx;
  ctx.var_lookup = [](const std::string& name, std::string* out) {
    if (name == "os") {
      *out = "linux";
      return true;
    }
    return false;
  };
  EXPECT_DOUBLE_EQ(eval_num("$os eq \"linux\"", ctx), 1.0);
  EXPECT_DOUBLE_EQ(eval_num("$os eq \"aix\"", ctx), 0.0);
  EXPECT_DOUBLE_EQ(eval_num("$os ne \"aix\"", ctx), 1.0);
  EXPECT_DOUBLE_EQ(eval_num("\"abc\" == \"abc\""), 1.0);
}

TEST(Expr, Errors) {
  EXPECT_FALSE(expr_eval_number("1 +", {}).ok());
  EXPECT_FALSE(expr_eval_number("(1 + 2", {}).ok());
  EXPECT_FALSE(expr_eval_number("1 / 0", {}).ok());
  EXPECT_FALSE(expr_eval_number("nosuchname + 1", {}).ok());
  EXPECT_FALSE(expr_eval_number("nosuchfn(1)", {}).ok());
  EXPECT_FALSE(expr_eval_number("1 ? 2", {}).ok());
  EXPECT_FALSE(expr_eval_number("", {}).ok());
  EXPECT_FALSE(expr_eval_number("sqrt(-1)", {}).ok());
}

TEST(Expr, UnknownVariableIsError) {
  ExprContext ctx;
  ctx.var_lookup = [](const std::string&, std::string*) { return false; };
  EXPECT_FALSE(expr_eval_number("$missing", ctx).ok());
}

TEST(Expr, WhitespaceInsensitive) {
  EXPECT_DOUBLE_EQ(eval_num("  1+2 "), 3.0);
  EXPECT_DOUBLE_EQ(eval_num("1   +   2"), 3.0);
  EXPECT_DOUBLE_EQ(eval_num("min( 1 , 2 )"), 1.0);
}

TEST(ExprEvalString, FormatsLikeTcl) {
  auto r = expr_eval("1 + 1", {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "2");
  r = expr_eval("5 / 2", {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "2.5");
  r = expr_eval("\"text\"", {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "text");
}

struct ExprCase {
  const char* text;
  double expected;
};

class ExprGolden : public ::testing::TestWithParam<ExprCase> {};

TEST_P(ExprGolden, Evaluates) {
  EXPECT_DOUBLE_EQ(eval_num(GetParam().text), GetParam().expected)
      << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ExprGolden,
    ::testing::Values(
        ExprCase{"0", 0}, ExprCase{"-0", 0}, ExprCase{".5 * 4", 2},
        ExprCase{"1 + 2 + 3 + 4", 10}, ExprCase{"100 - 10 - 5", 85},
        ExprCase{"2 * 3 % 4", 2}, ExprCase{"1 < 2 < 3", 1},
        ExprCase{"(1 > 2) || (3 > 2)", 1},
        ExprCase{"!(1 && 0)", 1},
        ExprCase{"min(max(1, 5), 3)", 3},
        ExprCase{"abs(-2) ** 3", 8},
        ExprCase{"-2 ** 2", -4},  // unary minus binds looser than **
        ExprCase{"10 % 3 == 1 ? 100 : 200", 100}));

}  // namespace
}  // namespace harmony::rsl
