#include "cluster/topology.h"

#include <gtest/gtest.h>

#include <cmath>

namespace harmony::cluster {
namespace {

Topology make_line() {
  // a --100-- b --40-- c
  Topology topo;
  (void)topo.add_node("a", 1.0, 128).value();
  (void)topo.add_node("b", 1.0, 128).value();
  (void)topo.add_node("c", 1.0, 128).value();
  EXPECT_TRUE(topo.add_link(0, 1, 100, 1.0).ok());
  EXPECT_TRUE(topo.add_link(1, 2, 40, 2.0).ok());
  return topo;
}

TEST(Topology, AddNodeAssignsSequentialIds) {
  Topology topo;
  EXPECT_EQ(topo.add_node("x", 1.0, 64).value(), 0u);
  EXPECT_EQ(topo.add_node("y", 2.0, 32).value(), 1u);
  EXPECT_EQ(topo.node_count(), 2u);
  EXPECT_EQ(topo.node(1).hostname, "y");
  EXPECT_DOUBLE_EQ(topo.node(1).speed, 2.0);
}

TEST(Topology, RejectsBadNodes) {
  Topology topo;
  EXPECT_FALSE(topo.add_node("", 1.0, 64).ok());
  EXPECT_FALSE(topo.add_node("x", 0.0, 64).ok());
  EXPECT_FALSE(topo.add_node("x", -1.0, 64).ok());
  EXPECT_FALSE(topo.add_node("x", 1.0, -5).ok());
  ASSERT_TRUE(topo.add_node("x", 1.0, 64).ok());
  EXPECT_FALSE(topo.add_node("x", 1.0, 64).ok()) << "duplicate hostname";
}

TEST(Topology, FindByHostname) {
  Topology topo = make_line();
  EXPECT_EQ(topo.find_by_hostname("b").value(), 1u);
  EXPECT_FALSE(topo.find_by_hostname("nope").ok());
}

TEST(Topology, RejectsBadLinks) {
  Topology topo = make_line();
  EXPECT_FALSE(topo.add_link(0, 9, 10).ok());
  EXPECT_FALSE(topo.add_link(0, 0, 10).ok());
  EXPECT_FALSE(topo.add_link(0, 1, 0).ok());
  EXPECT_FALSE(topo.add_link(0, 1, -5).ok());
  EXPECT_FALSE(topo.add_link(0, 1, 10, -1).ok());
}

TEST(Topology, LinkLookupIsSymmetric) {
  Topology topo = make_line();
  const LinkInfo* ab = topo.link(0, 1);
  const LinkInfo* ba = topo.link(1, 0);
  ASSERT_NE(ab, nullptr);
  EXPECT_EQ(ab, ba);
  EXPECT_DOUBLE_EQ(ab->bandwidth_mbps, 100);
  EXPECT_EQ(topo.link(0, 2), nullptr) << "no direct a-c link";
}

TEST(Topology, AddLinkReplacesExisting) {
  Topology topo = make_line();
  ASSERT_TRUE(topo.add_link(0, 1, 55, 3.0).ok());
  EXPECT_DOUBLE_EQ(topo.link(0, 1)->bandwidth_mbps, 55);
  EXPECT_EQ(topo.links().size(), 2u) << "replaced, not appended";
}

TEST(Topology, PathBandwidthIsBottleneck) {
  Topology topo = make_line();
  EXPECT_DOUBLE_EQ(topo.path_bandwidth(0, 2), 40.0);
  EXPECT_DOUBLE_EQ(topo.path_bandwidth(0, 1), 100.0);
  EXPECT_DOUBLE_EQ(topo.path_latency(0, 2), 3.0);
}

TEST(Topology, SelfPathIsInfinite) {
  Topology topo = make_line();
  EXPECT_TRUE(std::isinf(topo.path_bandwidth(1, 1)));
  EXPECT_DOUBLE_EQ(topo.path_latency(1, 1), 0.0);
  EXPECT_TRUE(topo.connected(1, 1));
}

TEST(Topology, DisconnectedNodes) {
  Topology topo;
  (void)topo.add_node("a", 1, 64).value();
  (void)topo.add_node("b", 1, 64).value();
  EXPECT_DOUBLE_EQ(topo.path_bandwidth(0, 1), 0.0);
  EXPECT_FALSE(topo.connected(0, 1));
  EXPECT_TRUE(topo.path_links(0, 1).empty());
}

TEST(Topology, WidestPathPrefersHigherBottleneck) {
  // a-b direct 10; a-c-b via 100/100: widest path must go around.
  Topology topo;
  (void)topo.add_node("a", 1, 64).value();
  (void)topo.add_node("b", 1, 64).value();
  (void)topo.add_node("c", 1, 64).value();
  ASSERT_TRUE(topo.add_link(0, 1, 10, 0.1).ok());
  ASSERT_TRUE(topo.add_link(0, 2, 100, 1.0).ok());
  ASSERT_TRUE(topo.add_link(2, 1, 100, 1.0).ok());
  EXPECT_DOUBLE_EQ(topo.path_bandwidth(0, 1), 100.0);
  EXPECT_DOUBLE_EQ(topo.path_latency(0, 1), 2.0);
  EXPECT_EQ(topo.path_links(0, 1).size(), 2u);
}

TEST(Topology, EqualBandwidthPrefersLowerLatency) {
  // Two 100-wide paths; one with lower total latency.
  Topology topo;
  for (const char* name : {"a", "b", "c", "d"}) {
    (void)topo.add_node(name, 1, 64).value();
  }
  ASSERT_TRUE(topo.add_link(0, 2, 100, 5.0).ok());  // a-c
  ASSERT_TRUE(topo.add_link(2, 1, 100, 5.0).ok());  // c-b  (total 10)
  ASSERT_TRUE(topo.add_link(0, 3, 100, 1.0).ok());  // a-d
  ASSERT_TRUE(topo.add_link(3, 1, 100, 1.0).ok());  // d-b  (total 2)
  EXPECT_DOUBLE_EQ(topo.path_latency(0, 1), 2.0);
}

TEST(Topology, PathLinksConnectEndpoints) {
  Topology topo = make_line();
  auto path = topo.path_links(0, 2);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(topo.links()[path[0]].a, 0u);
  EXPECT_EQ(topo.links()[path[1]].b, 2u);
}

// An SP-2-like full switch: every pair connected at the same bandwidth.
TEST(Topology, FullSwitchAllPairsEqual) {
  Topology topo;
  const int n = 8;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(topo.add_node("sp2-" + std::to_string(i), 1.0, 256).ok());
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      ASSERT_TRUE(topo.add_link(i, j, 320, 0.05).ok());
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      EXPECT_DOUBLE_EQ(topo.path_bandwidth(i, j), 320.0);
      EXPECT_EQ(topo.path_links(i, j).size(), 1u);
    }
  }
}

}  // namespace
}  // namespace harmony::cluster
