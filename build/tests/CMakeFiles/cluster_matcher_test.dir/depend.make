# Empty dependencies file for cluster_matcher_test.
# This may be replaced when dependencies are built.
