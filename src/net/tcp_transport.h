// Client-side transport over the Harmony TCP protocol. Synchronous
// request/response with pushed UPDATE frames collected along the way
// (and on explicit pump() calls), mirroring the prototype's I/O event
// handler + buffered variables design.
#pragma once

#include <map>

#include "client/transport.h"
#include "net/framing.h"
#include "net/protocol.h"
#include "net/tcp.h"

namespace harmony::net {

class TcpTransport : public client::Transport {
 public:
  TcpTransport() = default;

  Status connect(const std::string& host, uint16_t port);
  bool connected() const { return fd_.valid(); }

  // client::Transport:
  Result<core::InstanceId> register_app(const std::string& script) override;
  Status unregister(core::InstanceId id) override;
  Status subscribe(core::InstanceId id,
                   UpdateHandler handler) override;
  Result<std::string> get_variable(core::InstanceId id,
                                   const std::string& name) override;

  // Reads whatever frames are available without blocking and dispatches
  // UPDATEs; with wait=true blocks for at least one frame. Call this
  // from the application's polling loop.
  Status pump(bool wait = false);

  // Asks the server for an adaptation pass (demo/tooling).
  Status request_reevaluation();

 private:
  // Sends a request and reads until OK/ERR, dispatching UPDATE frames
  // encountered in between.
  Result<Message> call(const Message& request);
  Result<Message> read_message(bool wait);
  void dispatch_update(const Message& message);

  Fd fd_;
  FrameBuffer inbound_;
  std::map<core::InstanceId, UpdateHandler> handlers_;
  // Updates that arrived before any handler was installed (the server
  // pushes the initial snapshot during REGISTER, before the client
  // library subscribes). Replayed on the first subscribe().
  std::vector<std::pair<std::string, std::string>> undelivered_;
};

}  // namespace harmony::net
