// Result<T>: value-or-error return type for recoverable failures
// (parse errors, failed resource matches, transport errors). Programming
// errors use HARMONY_ASSERT instead. Modeled on std::expected, which is
// not available in C++20/libstdc++ 12.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "common/assert.h"

namespace harmony {

enum class ErrorCode {
  kOk = 0,
  kParseError,       // RSL / expression syntax error
  kEvalError,        // RSL runtime error (unknown command, bad arity...)
  kNotFound,         // name lookup failed
  kAlreadyExists,    // duplicate registration
  kNoMatch,          // resource matcher could not satisfy requirements
  kCapacity,         // resource accounting would go negative
  kInvalidArgument,  // caller passed a malformed value
  kTransport,        // socket / framing failure
  kProtocol,         // malformed wire message
  kClosed,           // operation on a shut-down component
  kTimeout,
  kIo,               // filesystem / disk failure
  kCorruption,       // persisted state failed validation (journal/snapshot)
  kNotPrimary,       // operation sent to a standby; retry against the primary
};

const char* error_code_name(ErrorCode code);

struct Error {
  ErrorCode code = ErrorCode::kOk;
  std::string message;

  std::string to_string() const {
    std::string s = error_code_name(code);
    if (!message.empty()) {
      s += ": ";
      s += message;
    }
    return s;
  }
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kEvalError: return "eval_error";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kAlreadyExists: return "already_exists";
    case ErrorCode::kNoMatch: return "no_match";
    case ErrorCode::kCapacity: return "capacity";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kTransport: return "transport";
    case ErrorCode::kProtocol: return "protocol";
    case ErrorCode::kClosed: return "closed";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kCorruption: return "corruption";
    case ErrorCode::kNotPrimary: return "not_primary";
  }
  return "unknown";
}

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error error) : data_(std::move(error)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    HARMONY_ASSERT_MSG(ok(), error().to_string().c_str());
    return std::get<T>(data_);
  }
  T& value() & {
    HARMONY_ASSERT_MSG(ok(), error().to_string().c_str());
    return std::get<T>(data_);
  }
  T&& value() && {
    HARMONY_ASSERT_MSG(ok(), error().to_string().c_str());
    return std::move(std::get<T>(data_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const& { return ok() ? std::get<T>(data_) : std::move(fallback); }

  const Error& error() const {
    HARMONY_ASSERT(!ok());
    return std::get<Error>(data_);
  }

 private:
  std::variant<T, Error> data_;
};

// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT
  Status(ErrorCode code, std::string message)
      : error_{code, std::move(message)} {}

  static Status Ok() { return Status(); }

  bool ok() const { return error_.code == ErrorCode::kOk; }
  explicit operator bool() const { return ok(); }
  const Error& error() const { return error_; }
  std::string to_string() const { return ok() ? "ok" : error_.to_string(); }

 private:
  Error error_;
};

template <typename T>
Result<T> Err(ErrorCode code, std::string message) {
  return Result<T>(Error{code, std::move(message)});
}

}  // namespace harmony
