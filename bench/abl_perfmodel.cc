// Ablation A3 — prediction error of Harmony's three performance models
// on the bag-of-tasks application. §4.2: the default model "is
// inadequate to describe the performance of many parallel applications
// because of complex interactions"; the `performance` tag lets the
// application supply a piecewise-linear curve or a script. Here every
// model's prediction is compared against the simulator's measured
// iteration time, per worker count.
#include <cmath>
#include <cstdio>

#include "apps/bag_app.h"
#include "apps/scenarios.h"
#include "common/strings.h"
#include "core/binding.h"
#include "core/perf_model.h"

namespace {

using namespace harmony;
using namespace harmony::apps;

// Measures the real iteration time at a fixed worker count by running
// the app on a cluster with exactly that many nodes.
double measured_iteration_time(int workers) {
  SimHarness harness;
  if (!harness.controller()
           .add_nodes_script(worker_cluster_script(workers))
           .ok() ||
      !harness.finalize().ok()) {
    return -1;
  }
  BagConfig config;
  config.workers = str_format("%d", workers);  // only one choice
  config.max_iterations = 3;
  config.seed = 99;
  BagApp bag(harness.context(), config);
  if (!bag.start().ok()) return -1;
  harness.engine().run_until(12000);
  const auto* series = harness.metrics().find(bag.metric_name());
  return series == nullptr ? -1 : series->mean();
}

// Predicts via one model for a w-worker allocation on a dedicated
// cluster.
Result<double> predict_with(core::Predictor::Model model, int workers) {
  BagConfig config;
  config.workers = "1 2 3 4 5 6 7 8";
  std::string script = bag_bundle_script(config).value();

  rsl::RslHost host;
  rsl::BundleSpec bundle;
  host.on_bundle([&](const rsl::BundleSpec& b) {
    bundle = b;
    return Status::Ok();
  });
  auto status = host.eval_script(script);
  if (!status.ok()) return Err<double>(status.error().code, status.error().message);
  rsl::OptionSpec option = bundle.options[0];

  // Select the model by stripping the richer specifications.
  switch (model) {
    case core::Predictor::Model::kScript:
      option.performance_script = str_format(
          "return [expr {%g + %g / $workerNodes}]", config.sequential_ref_s,
          config.parallel_ref_s);
      break;
    case core::Predictor::Model::kPoints:
      option.performance_script.clear();
      break;
    case core::Predictor::Model::kDefault:
      option.performance_script.clear();
      option.performance_points.clear();
      break;
  }

  cluster::Topology topo;
  for (int i = 0; i < workers; ++i) {
    auto added = topo.add_node(str_format("sp2-%02d", i), 1.0, 64);
    if (!added.ok()) return Err<double>(added.error().code, added.error().message);
    for (int j = 0; j < i; ++j) {
      auto linked = topo.add_link(j, i, 320, 0.05);
      if (!linked.ok()) return Err<double>(linked.error().code, linked.error().message);
    }
  }
  core::OptionChoice choice{option.name,
                            {{"workerNodes", static_cast<double>(workers)}}};
  cluster::Allocation allocation;
  std::map<cluster::NodeId, int> load;
  for (int i = 0; i < workers; ++i) {
    allocation.entries.push_back(
        {{"worker", i, "*", "", 16}, static_cast<cluster::NodeId>(i)});
    load[static_cast<cluster::NodeId>(i)] = 1;
  }
  core::PredictionInput input;
  input.option = &option;
  input.choice = &choice;
  input.allocation = &allocation;
  input.topology = &topo;
  input.node_load = &load;
  core::Predictor predictor;
  return predictor.predict(input);
}

int run() {
  std::printf("=== Ablation A3: performance-model prediction error on Bag "
              "===\n");
  std::printf("measured = discrete-event simulation of the bag-of-tasks app "
              "(3 iterations)\n\n");
  std::printf("workers  measured_s   default_s  err%%   points_s  err%%   "
              "script_s  err%%\n");
  double worst[3] = {0, 0, 0};
  bool ok = true;
  for (int w : {1, 2, 3, 4, 5, 6, 7, 8}) {
    double measured = measured_iteration_time(w);
    if (measured < 0) {
      ok = false;
      continue;
    }
    double predictions[3];
    core::Predictor::Model models[3] = {core::Predictor::Model::kDefault,
                                        core::Predictor::Model::kPoints,
                                        core::Predictor::Model::kScript};
    for (int m = 0; m < 3; ++m) {
      auto predicted = predict_with(models[m], w);
      predictions[m] = predicted.ok() ? predicted.value() : -1;
      if (predictions[m] < 0) ok = false;
      double err = 100.0 * std::fabs(predictions[m] - measured) / measured;
      worst[m] = std::max(worst[m], err);
    }
    std::printf("%7d  %10.1f  %10.1f %5.1f  %9.1f %5.1f  %9.1f %5.1f\n", w,
                measured, predictions[0],
                100.0 * std::fabs(predictions[0] - measured) / measured,
                predictions[1],
                100.0 * std::fabs(predictions[1] - measured) / measured,
                predictions[2],
                100.0 * std::fabs(predictions[2] - measured) / measured);
  }
  std::printf("\nworst-case error: default=%.1f%%  points=%.1f%%  "
              "script=%.1f%%\n", worst[0], worst[1], worst[2]);
  std::printf("summary: application-supplied models beat the generic default "
              "model: %s\n",
              (worst[1] < worst[0] && worst[2] < worst[0]) ? "yes" : "no");
  return ok ? 0 : 1;
}

}  // namespace

int main() { return run(); }
