// The "Bag" application of §3.4: an iterative bag-of-tasks computation.
// Each iteration has a sequential master phase followed by a pool of
// unevenly-sized tasks that idle workers pull, compute, and return —
// "relatively crude load-balancing on arbitrarily-shaped tasks". The
// worker count is a Harmony variable; the app re-reads it at the end of
// each iteration (its natural reconfiguration granularity, like the
// paper's outer-loop HPF example).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/sim_context.h"
#include "client/client.h"
#include "common/rng.h"

namespace harmony::apps {

struct BagConfig {
  int instance = 1;
  uint64_t seed = 2;
  // Per-iteration work: sequential master phase + task pool.
  double sequential_ref_s = 100.0;
  double parallel_ref_s = 1000.0;
  int tasks_per_iteration = 100;
  double task_jitter = 0.3;      // task sizes vary +-30%
  double task_message_mb = 0.05; // fetch + return messages
  std::string workers = "1 2 3 4 5 6 7 8";
  double granularity_s = 0.0;
  int max_iterations = 0;  // 0 = run until stop()
};

// Figure 2(b)-style bundle whose performance points match what this
// app measurably does: t(w) ~= sequential + parallel/w.
std::string bag_bundle_script(const BagConfig& config);

class BagApp {
 public:
  BagApp(SimContext ctx, BagConfig config);

  Status start();
  // Finishes the current iteration, then deregisters.
  void stop();
  bool finished() const { return finished_; }

  int iterations_completed() const { return iterations_completed_; }
  int current_workers() const { return static_cast<int>(worker_nodes_.size()); }
  const std::string& metric_name() const { return metric_name_; }
  core::InstanceId instance_id() const { return client_->instance_id(); }

 private:
  void begin_iteration();
  void run_parallel_phase();
  void worker_pull(size_t worker_index);
  void end_iteration();
  Status refresh_workers();

  SimContext ctx_;
  BagConfig config_;
  std::unique_ptr<client::InProcTransport> transport_;
  std::unique_ptr<client::HarmonyClient> client_;
  Rng rng_;
  std::vector<cluster::NodeId> worker_nodes_;
  std::vector<double> task_pool_;  // remaining task sizes (ref seconds)
  int tasks_outstanding_ = 0;
  double iteration_started_ = 0;
  int iterations_completed_ = 0;
  bool stop_requested_ = false;
  bool finished_ = false;
  std::string metric_name_;
};

}  // namespace harmony::apps
