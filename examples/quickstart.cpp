// Quickstart: the smallest complete Active Harmony program.
//
//  1. Stand up a controller and describe the cluster (harmonyNode).
//  2. Register an application that exports a tuning bundle with two
//     mutually exclusive options (harmonyBundle).
//  3. Read back the option Harmony chose and the resources it granted.
//  4. Watch Harmony reconfigure the application when a competitor
//     arrives.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "client/client.h"
#include "core/controller.h"

using namespace harmony;

int main() {
  // --- 1. the cluster: two workstations and a server ----------------------
  core::Controller controller;
  auto cluster = controller.add_nodes_script(R"(
harmonyNode ws1 {speed 1.0} {memory 128} {os linux} {link server 100 0.2}
harmonyNode ws2 {speed 1.0} {memory 32}  {os linux} {link server 100 0.2}
harmonyNode server {speed 2.0} {memory 512} {os linux}
)");
  if (!cluster.ok() || !controller.finalize_cluster().ok()) {
    std::fprintf(stderr, "cluster setup failed\n");
    return 1;
  }

  // --- 2. a harmonized application ----------------------------------------
  // Two ways to run: remotely on the fast server (cheap at home, loads
  // the shared machine) or locally (heavier, but private).
  client::InProcTransport transport(&controller);
  client::HarmonyClient app(&transport);
  (void)app.startup("quickstart");
  (void)app.bundle_setup(R"(
harmonyBundle Quickstart:1 placement {
  {remote
    {node exec {hostname server} {seconds 30} {memory 64}}
    {node home {hostname ws*} {seconds 1} {memory 8}}
    {link home exec 5}}
  {local
    {node exec {hostname ws*} {seconds 90} {memory 64}}
    {node home {hostname ws*} {seconds 1} {memory 8}}
    {link home exec 0.5}}
}
)");
  const std::string* placement = app.add_variable("placement", "unset");
  if (!app.wait_for_update().ok()) {
    std::fprintf(stderr, "registration failed\n");
    return 1;
  }
  app.poll_updates();

  std::printf("Harmony chose:      %s\n", placement->c_str());
  std::printf("execution host:     %s\n", app.var("placement.exec.node").c_str());
  std::printf("granted memory:     %s MB\n",
              app.var("placement.exec.memory").c_str());
  auto predicted = controller.predictions();
  if (predicted.ok() && !predicted.value().empty()) {
    std::printf("predicted runtime:  %.2f s\n", predicted.value()[0].second);
  }

  // --- 3. a competitor arrives; Harmony rebalances --------------------------
  std::printf("\nthree competing jobs land on the server...\n");
  std::vector<core::InstanceId> rivals;
  for (int i = 0; i < 3; ++i) {
    auto rival = controller.register_script(
        "harmonyBundle Rival:" + std::to_string(i + 1) +
        " r {{only {node n {hostname server} {seconds 200} {memory 64}}}}");
    if (rival.ok()) rivals.push_back(rival.value());
  }
  app.poll_updates();
  std::printf("Harmony now says:   %s  (exec on %s)\n", placement->c_str(),
              app.var("placement.exec.node").c_str());

  for (auto id : rivals) (void)controller.unregister(id);
  app.poll_updates();
  std::printf("rivals done:        %s  (exec on %s)\n", placement->c_str(),
              app.var("placement.exec.node").c_str());
  return 0;
}
