# Empty dependencies file for socket_demo.
# This may be replaced when dependencies are built.
