// Length-prefixed framing for the Harmony wire protocol: 4-byte
// big-endian payload length followed by the payload. FrameBuffer
// reassembles frames from arbitrary byte chunks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace harmony::net {

// Frames above this are a protocol violation (sanity bound; bundle
// scripts are kilobytes).
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

std::string encode_frame(std::string_view payload);

class FrameBuffer {
 public:
  void feed(std::string_view bytes);

  // Next complete frame's payload, or nullopt if more bytes are needed.
  // Returns an error (kProtocol) on an oversized length prefix; the
  // connection should be dropped.
  Result<std::optional<std::string>> next_frame();

  size_t buffered_bytes() const { return buffer_.size() - head_; }

 private:
  // Consumed bytes below this many are tolerated before feed() shifts
  // the tail down; keeps head compaction amortized O(1) instead of the
  // O(n^2) erase-per-frame a burst of small frames used to pay.
  static constexpr size_t kCompactThreshold = 64 * 1024;

  void compact();

  std::string buffer_;
  size_t head_ = 0;  // consumed-offset cursor into buffer_
};

}  // namespace harmony::net
