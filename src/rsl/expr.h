// TCL-style expression engine: arithmetic, comparisons, logical
// operators, the ternary operator, and math functions. The RSL uses it
// for parameterized resource requirements such as the paper's
// data-shipping link bandwidth:
//   44 + (client.memory > 24 ? 24 : client.memory) - 17
// Bare dotted identifiers (client.memory) resolve through a caller-
// provided hook backed by the Harmony namespace.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace harmony::rsl {

struct ExprContext {
  // $name lookup (interpreter variables). Returns false if unknown.
  std::function<bool(const std::string&, std::string*)> var_lookup;
  // Bare identifier lookup (namespace paths like "client.memory").
  std::function<bool(const std::string&, double*)> name_lookup;
  // [script] command substitution, usually Interp::eval. Expressions
  // containing brackets fail to evaluate when this is unset.
  std::function<Result<std::string>(const std::string&)> cmd_eval;
};

// Evaluates to a double; string-valued results are an error here.
Result<double> expr_eval_number(std::string_view text, const ExprContext& ctx);

// Evaluates to a TCL result string (numbers formatted TCL-style,
// booleans as 1/0, strings verbatim).
Result<std::string> expr_eval(std::string_view text, const ExprContext& ctx);

}  // namespace harmony::rsl
