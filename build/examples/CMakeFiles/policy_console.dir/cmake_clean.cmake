file(REMOVE_RECURSE
  "CMakeFiles/policy_console.dir/policy_console.cpp.o"
  "CMakeFiles/policy_console.dir/policy_console.cpp.o.d"
  "policy_console"
  "policy_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
