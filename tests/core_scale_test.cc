// Scale regression tests for the scoped-domain decision core: domain
// controllers share one immutable topology and allocate pool/version
// state only over their footprint, so per-decision work is
// O(|footprint|), never O(cluster).
//
// Two proof obligations:
//   - identity at scale: on a ~5k-node cluster the partitioned router's
//     full decision history (placements, grants, switch times,
//     objective) is bit-identical to the --single-domain reference
//     through registrations, load, node churn, a merge and a split;
//   - no per-cluster work: creating a domain allocates pool slots for
//     the footprint only (counter-based, so an accidental O(cluster)
//     allocation fails loudly instead of just slowly), and every domain
//     controller shares the router's topology by address.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/pool.h"
#include "core/controller.h"
#include "core/domain.h"
#include "test_scenarios.h"

namespace harmony::core {
namespace {

using harmony::testing::fingerprint;
using harmony::testing::swarm_cluster_script;
using harmony::testing::swarm_db_bundle;
using harmony::testing::swarm_group_name;
using harmony::testing::swarm_par_bundle;
using harmony::testing::SwarmConfig;

std::string client_host(int group, int client) {
  return str_format("%s-c%02d", swarm_group_name(group).c_str(), client);
}

// Spans two groups with no link requirement: swarm groups have no
// cross-group wires, so (unlike testing::bridge_bundle) this stays
// feasible while still merging the two groups' domains.
std::string span_bundle(int group_a, int group_b, int tag) {
  return str_format(
      "harmonyBundle Span:%d where {\n"
      "  {pair\n"
      "    {node left {hostname %s-c*} {seconds 30} {memory 8}}\n"
      "    {node right {hostname %s-c*} {seconds 30} {memory 8}}}\n"
      "}\n",
      tag, swarm_group_name(group_a).c_str(), swarm_group_name(group_b).c_str());
}

TEST(ScaleDifferential, FiveThousandNodesBitIdenticalToSingleDomain) {
  // 556 groups x (1 server + 8 clients) = 5004 nodes; applications only
  // ever land in the first 24 groups, so the partitioned router's
  // domains stay 9-20 nodes wide while the cluster is 5k.
  SwarmConfig config;
  config.groups = 556;
  const std::string cluster = swarm_cluster_script(config);
  const int active_groups = 24;

  DomainRouterConfig partitioned_config;
  partitioned_config.workers = 2;
  DomainRouter router(partitioned_config);
  DomainRouterConfig reference_config;
  reference_config.single_domain = true;
  DomainRouter reference(reference_config);

  double now = 0;
  auto source = [&now] { return now; };
  router.set_time_source(source);
  reference.set_time_source(source);
  ASSERT_TRUE(router.add_nodes_script(cluster).ok());
  ASSERT_TRUE(router.finalize_cluster().ok());
  ASSERT_TRUE(reference.add_nodes_script(cluster).ok());
  ASSERT_TRUE(reference.finalize_cluster().ok());

  auto drive = [&](DomainRouter& r, const std::string& script) {
    auto result = r.register_script(script);
    ASSERT_TRUE(result.ok()) << result.error().message;
  };

  // Registrations: a DB- and a parallel-shaped app per active group.
  int tag = 1;
  std::vector<InstanceId> live;
  for (int g = 0; g < active_groups; ++g) {
    for (const std::string& script :
         {swarm_db_bundle(g, tag), swarm_par_bundle(g, tag + 1)}) {
      now += 5;
      drive(router, script);
      drive(reference, script);
    }
    live.push_back(static_cast<InstanceId>(tag));
    tag += 2;
  }
  ASSERT_GT(router.domain_count(), 1u);
  EXPECT_EQ(fingerprint(router), fingerprint(reference));

  // Load and node churn inside (and outside) the active groups.
  for (int g = 0; g < active_groups; g += 3) {
    now += 2;
    const std::string host = client_host(g, g % 8);
    ASSERT_TRUE(router.report_external_load(host, 1 + g % 3).ok());
    ASSERT_TRUE(reference.report_external_load(host, 1 + g % 3).ok());
  }
  const std::string cold_host = client_host(500, 0);  // no domain owns it
  ASSERT_TRUE(router.report_external_load(cold_host, 2).ok());
  ASSERT_TRUE(reference.report_external_load(cold_host, 2).ok());
  const std::string churn_host = client_host(4, 3);
  for (bool online : {false, true}) {
    now += 2;
    ASSERT_TRUE(router.set_node_online(churn_host, online).ok());
    ASSERT_TRUE(reference.set_node_online(churn_host, online).ok());
    ASSERT_TRUE(router.reevaluate().ok());
    ASSERT_TRUE(reference.reevaluate().ok());
  }
  EXPECT_EQ(fingerprint(router), fingerprint(reference));

  // A bridge merges two groups' domains; its departure splits them.
  now += 5;
  const std::string bridge = span_bundle(2, 5, tag);
  auto bridged_a = router.register_script(bridge);
  auto bridged_b = reference.register_script(bridge);
  ASSERT_TRUE(bridged_a.ok()) << bridged_a.error().message;
  ASSERT_TRUE(bridged_b.ok());
  ASSERT_EQ(bridged_a.value(), bridged_b.value());
  EXPECT_EQ(fingerprint(router), fingerprint(reference));
  now += 5;
  ASSERT_TRUE(router.unregister(bridged_a.value()).ok());
  ASSERT_TRUE(reference.unregister(bridged_b.value()).ok());
  EXPECT_EQ(fingerprint(router), fingerprint(reference));

  // Departures after the annexations above: footprints shrink, stale
  // wide scopes must not leak into any decision.
  for (size_t i = 0; i < live.size(); i += 4) {
    now += 2;
    ASSERT_TRUE(router.unregister(live[i]).ok());
    ASSERT_TRUE(reference.unregister(live[i]).ok());
  }
  ASSERT_TRUE(router.reevaluate().ok());
  ASSERT_TRUE(reference.reevaluate().ok());
  EXPECT_EQ(fingerprint(router), fingerprint(reference));
}

TEST(ScopedDomain, CreationDoesNoPerClusterWork) {
  // 456 groups x 9 = 4104 nodes. The slots_allocated counter is the
  // tripwire: if domain creation (or annexation) ever allocates per
  // cluster node again, the deltas below explode from O(9) to O(4104).
  SwarmConfig config;
  config.groups = 456;
  DomainRouterConfig router_config;
  router_config.workers = 2;
  DomainRouter router(router_config);
  ASSERT_TRUE(router.add_nodes_script(swarm_cluster_script(config)).ok());
  ASSERT_TRUE(router.finalize_cluster().ok());

  // First registration in a group: one fresh 9-node domain.
  uint64_t before = cluster::ResourcePool::slots_allocated();
  ASSERT_TRUE(router.register_script(swarm_db_bundle(3, 1)).ok());
  EXPECT_LE(cluster::ResourcePool::slots_allocated() - before, 64u);

  // Second registration in the same group annexes nothing.
  before = cluster::ResourcePool::slots_allocated();
  ASSERT_TRUE(router.register_script(swarm_par_bundle(3, 2)).ok());
  EXPECT_EQ(cluster::ResourcePool::slots_allocated() - before, 0u);

  before = cluster::ResourcePool::slots_allocated();
  ASSERT_TRUE(router.register_script(swarm_db_bundle(7, 3)).ok());
  EXPECT_LE(cluster::ResourcePool::slots_allocated() - before, 64u);

  // Merging the two domains annexes one footprint into the other —
  // still O(|domain|), not a rebuild.
  before = cluster::ResourcePool::slots_allocated();
  auto bridged = router.register_script(span_bundle(3, 7, 4));
  ASSERT_TRUE(bridged.ok()) << bridged.error().message;
  EXPECT_LE(cluster::ResourcePool::slots_allocated() - before, 64u);

  // Every domain controller shares the router's topology by address —
  // the structural guarantee behind all of the above.
  ASSERT_GE(router.domain_count(), 1u);
  for (const Controller* domain : router.domain_controllers()) {
    EXPECT_EQ(&domain->topology(), &router.topology());
  }
}

}  // namespace
}  // namespace harmony::core
