#include "apps/bag_app.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace harmony::apps {

std::string bag_bundle_script(const BagConfig& config) {
  // Performance points follow the app's own scaling law
  // t(w) = sequential + parallel / w, evaluated at each worker count —
  // the piecewise-linear model of §3.4.
  std::string points;
  auto workers = split_whitespace(config.workers);
  for (const auto& w : workers) {
    double count = 1;
    (void)parse_double(w, &count);
    points += str_format("{%s %g} ", w.c_str(),
                         config.sequential_ref_s +
                             config.parallel_ref_s / count);
  }
  double total = config.sequential_ref_s + config.parallel_ref_s;
  return str_format(
      "harmonyBundle Bag:%d parallelism {\n"
      "  {var\n"
      "    {variable workerNodes {%s}}\n"
      "    {node worker {seconds {%g / workerNodes}} {memory 16}\n"
      "          {replicate {workerNodes}}}\n"
      "    {communication {%g * workerNodes}}\n"
      "    {performance {%s}}\n"
      "    {granularity %g}}\n"
      "}\n",
      config.instance, config.workers.c_str(), total,
      config.task_message_mb * 2 * config.tasks_per_iteration, points.c_str(),
      config.granularity_s);
}

BagApp::BagApp(SimContext ctx, BagConfig config)
    : ctx_(ctx),
      config_(std::move(config)),
      rng_(config_.seed),
      metric_name_(str_format("bag.%d.iteration_time", config_.instance)) {
  transport_ = std::make_unique<client::InProcTransport>(ctx_.controller);
  client_ = std::make_unique<client::HarmonyClient>(transport_.get());
}

Status BagApp::start() {
  auto status = client_->startup(str_format("Bag-%d", config_.instance));
  if (!status.ok()) return status;
  status = client_->bundle_setup(bag_bundle_script(config_));
  if (!status.ok()) return status;
  client_->add_variable("workerNodes", "1");
  client_->add_variable("parallelism.worker.nodes", "");
  status = client_->wait_for_update();
  if (!status.ok()) return status;
  status = refresh_workers();
  if (!status.ok()) return status;
  begin_iteration();
  return Status::Ok();
}

void BagApp::stop() { stop_requested_ = true; }

Status BagApp::refresh_workers() {
  client_->poll_updates();
  auto hosts = client_->var_list("parallelism.worker.nodes");
  if (hosts.empty()) {
    return Status(ErrorCode::kNotFound, "no workers assigned");
  }
  std::vector<cluster::NodeId> nodes;
  for (const auto& host : hosts) {
    auto node = ctx_.node_of(host);
    if (!node.ok()) return Status(node.error().code, node.error().message);
    nodes.push_back(node.value());
  }
  if (nodes.size() != worker_nodes_.size()) {
    HLOG_INFO("bag_app") << metric_name_ << " now on " << nodes.size()
                         << " workers at t=" << ctx_.now();
    ctx_.metrics->record(str_format("bag.%d.workers", config_.instance),
                         ctx_.now(), static_cast<double>(nodes.size()));
  }
  worker_nodes_ = std::move(nodes);
  return Status::Ok();
}

void BagApp::begin_iteration() {
  if (stop_requested_ ||
      (config_.max_iterations > 0 &&
       iterations_completed_ >= config_.max_iterations)) {
    finished_ = true;
    if (client_->registered()) {
      auto status = client_->end();
      if (!status.ok()) {
        HLOG_WARN("bag_app") << "harmony_end failed: " << status.to_string();
      }
    }
    return;
  }
  iteration_started_ = ctx_.now();
  // Fill the task pool with perturbed task sizes summing to
  // parallel_ref_s on average.
  task_pool_.clear();
  double mean_task =
      config_.parallel_ref_s / static_cast<double>(config_.tasks_per_iteration);
  for (int i = 0; i < config_.tasks_per_iteration; ++i) {
    double jitter = 1.0 + config_.task_jitter * (2.0 * rng_.next_double() - 1.0);
    task_pool_.push_back(mean_task * jitter);
  }
  // Sequential master phase on worker 0.
  ctx_.cpu->submit(worker_nodes_[0], config_.sequential_ref_s,
                   [this] { run_parallel_phase(); });
}

void BagApp::run_parallel_phase() {
  tasks_outstanding_ = 0;
  for (size_t w = 0; w < worker_nodes_.size(); ++w) {
    worker_pull(w);
  }
}

void BagApp::worker_pull(size_t worker_index) {
  if (task_pool_.empty()) {
    if (tasks_outstanding_ == 0) end_iteration();
    return;
  }
  double work = task_pool_.back();
  task_pool_.pop_back();
  ++tasks_outstanding_;
  cluster::NodeId master = worker_nodes_[0];
  cluster::NodeId worker = worker_nodes_[worker_index % worker_nodes_.size()];
  // Fetch the task from the master, compute, return the result, pull
  // again.
  auto fetch = ctx_.net->transfer(master, worker, config_.task_message_mb,
                                  [this, worker_index, worker, master, work] {
    ctx_.cpu->submit(worker, work, [this, worker_index, worker, master] {
      auto ret = ctx_.net->transfer(worker, master, config_.task_message_mb,
                                    [this, worker_index] {
        --tasks_outstanding_;
        worker_pull(worker_index);
      });
      HARMONY_ASSERT(ret.ok());
    });
  });
  HARMONY_ASSERT(fetch.ok());
}

void BagApp::end_iteration() {
  ++iterations_completed_;
  ctx_.metrics->record(metric_name_, ctx_.now(),
                       ctx_.now() - iteration_started_);
  // Natural reconfiguration point: re-read Harmony's worker assignment.
  auto status = refresh_workers();
  if (!status.ok()) {
    HLOG_WARN("bag_app") << "worker refresh failed: " << status.to_string();
    finished_ = true;
    return;
  }
  begin_iteration();
}

}  // namespace harmony::apps
