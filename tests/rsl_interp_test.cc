#include "rsl/interp.h"

#include <gtest/gtest.h>

namespace harmony::rsl {
namespace {

std::string eval_ok(Interp& interp, const std::string& script) {
  auto r = interp.eval(script);
  EXPECT_TRUE(r.ok()) << script << " -> "
                      << (r.ok() ? "" : r.error().to_string());
  return r.ok() ? r.value() : "<error: " + r.error().to_string() + ">";
}

TEST(Interp, SetAndGet) {
  Interp interp;
  EXPECT_EQ(eval_ok(interp, "set x 42"), "42");
  EXPECT_EQ(eval_ok(interp, "set x"), "42");
  EXPECT_EQ(eval_ok(interp, "set y $x"), "42");
}

TEST(Interp, UnknownVariableIsError) {
  Interp interp;
  auto r = interp.eval("set y $nope");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("nope"), std::string::npos);
}

TEST(Interp, UnknownCommandIsError) {
  Interp interp;
  auto r = interp.eval("frobnicate 1 2");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("frobnicate"), std::string::npos);
}

TEST(Interp, CommandSubstitution) {
  Interp interp;
  EXPECT_EQ(eval_ok(interp, "set x [expr {2 + 3}]"), "5");
  EXPECT_EQ(eval_ok(interp, "set y a[expr {1 + 1}]b"), "a2b");
}

TEST(Interp, ExprWithVariables) {
  Interp interp;
  eval_ok(interp, "set n 4");
  EXPECT_EQ(eval_ok(interp, "expr {$n * $n}"), "16");
  EXPECT_EQ(eval_ok(interp, "expr {0.5 * $n}"), "2");
}

TEST(Interp, IfElse) {
  Interp interp;
  eval_ok(interp, "set x 5");
  EXPECT_EQ(eval_ok(interp, "if {$x > 3} {set r big} else {set r small}"),
            "big");
  eval_ok(interp, "set x 1");
  EXPECT_EQ(eval_ok(interp, "if {$x > 3} {set r big} else {set r small}"),
            "small");
}

TEST(Interp, IfElseifChain) {
  Interp interp;
  for (auto [n, expected] : std::vector<std::pair<int, std::string>>{
           {1, "one"}, {2, "two"}, {9, "many"}}) {
    interp.set_var("n", std::to_string(n));
    EXPECT_EQ(eval_ok(interp,
                      "if {$n == 1} {set r one} elseif {$n == 2} {set r two} "
                      "else {set r many}"),
              expected);
  }
}

TEST(Interp, WhileLoop) {
  Interp interp;
  EXPECT_EQ(eval_ok(interp,
                    "set i 0\nset sum 0\nwhile {$i < 5} {incr sum $i; incr i}\n"
                    "set sum"),
            "10");
}

TEST(Interp, ForLoop) {
  Interp interp;
  EXPECT_EQ(eval_ok(interp,
                    "set sum 0\nfor {set i 1} {$i <= 4} {incr i} "
                    "{set sum [expr {$sum + $i * $i}]}\nset sum"),
            "30");
}

TEST(Interp, ForeachOverList) {
  Interp interp;
  EXPECT_EQ(eval_ok(interp,
                    "set total 0\nforeach w {1 2 4 8} {incr total $w}\n"
                    "set total"),
            "15");
}

TEST(Interp, BreakAndContinue) {
  Interp interp;
  EXPECT_EQ(eval_ok(interp,
                    "set sum 0\nforeach x {1 2 3 4 5} {\n"
                    "  if {$x == 2} {continue}\n"
                    "  if {$x == 4} {break}\n"
                    "  incr sum $x\n}\nset sum"),
            "4");
}

TEST(Interp, ProcDefinitionAndCall) {
  Interp interp;
  eval_ok(interp, "proc square {x} {return [expr {$x * $x}]}");
  EXPECT_EQ(eval_ok(interp, "square 7"), "49");
}

TEST(Interp, ProcDefaultArguments) {
  Interp interp;
  eval_ok(interp, "proc greet {name {greeting hello}} {return \"$greeting $name\"}");
  EXPECT_EQ(eval_ok(interp, "greet world"), "hello world");
  EXPECT_EQ(eval_ok(interp, "greet world hi"), "hi world");
}

TEST(Interp, ProcVarargs) {
  Interp interp;
  eval_ok(interp, "proc count {first args} {return [llength $args]}");
  EXPECT_EQ(eval_ok(interp, "count a b c d"), "3");
}

TEST(Interp, ProcLocalScope) {
  Interp interp;
  eval_ok(interp, "set x global_value");
  eval_ok(interp, "proc shadow {} {set x local_value; return $x}");
  EXPECT_EQ(eval_ok(interp, "shadow"), "local_value");
  EXPECT_EQ(eval_ok(interp, "set x"), "global_value");
}

TEST(Interp, ProcReadsGlobals) {
  Interp interp;
  eval_ok(interp, "set g 11");
  eval_ok(interp, "proc readg {} {return $g}");
  EXPECT_EQ(eval_ok(interp, "readg"), "11");
}

TEST(Interp, ProcMissingArgumentIsError) {
  Interp interp;
  eval_ok(interp, "proc need2 {a b} {return $a$b}");
  EXPECT_FALSE(interp.eval("need2 onlyone").ok());
}

TEST(Interp, RecursionWorksAndIsBounded) {
  Interp interp;
  eval_ok(interp,
          "proc fact {n} {if {$n <= 1} {return 1}\n"
          "return [expr {$n * [fact [expr {$n - 1}]]}]}");
  EXPECT_EQ(eval_ok(interp, "fact 10"), "3628800");
  // Unbounded recursion must fail cleanly, not crash.
  eval_ok(interp, "proc forever {} {forever}");
  auto r = interp.eval("forever");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("recursion"), std::string::npos);
}

TEST(Interp, CatchCapturesErrors) {
  Interp interp;
  EXPECT_EQ(eval_ok(interp, "catch {error boom} msg"), "1");
  EXPECT_EQ(eval_ok(interp, "set msg"), "boom");
  EXPECT_EQ(eval_ok(interp, "catch {set ok 1} msg"), "0");
}

TEST(Interp, PutsCapturedInOutput) {
  Interp interp;
  eval_ok(interp, "puts hello\nputs -nonewline wor\nputs ld");
  EXPECT_EQ(interp.output(), "hello\nworld\n");
}

TEST(Interp, ListCommands) {
  Interp interp;
  EXPECT_EQ(eval_ok(interp, "list a {b c} d"), "a {b c} d");
  EXPECT_EQ(eval_ok(interp, "llength {a {b c} d}"), "3");
  EXPECT_EQ(eval_ok(interp, "lindex {a b c} 1"), "b");
  EXPECT_EQ(eval_ok(interp, "lindex {a b c} end"), "c");
  EXPECT_EQ(eval_ok(interp, "lindex {a b c} end-1"), "b");
  EXPECT_EQ(eval_ok(interp, "lindex {a b c} 99"), "");
  EXPECT_EQ(eval_ok(interp, "lrange {a b c d e} 1 3"), "b c d");
}

TEST(Interp, LappendBuildsLists) {
  Interp interp;
  eval_ok(interp, "lappend acc one");
  eval_ok(interp, "lappend acc {two words}");
  EXPECT_EQ(eval_ok(interp, "set acc"), "one {two words}");
  EXPECT_EQ(eval_ok(interp, "llength $acc"), "2");
}

TEST(Interp, LsortVariants) {
  Interp interp;
  EXPECT_EQ(eval_ok(interp, "lsort {banana apple cherry}"),
            "apple banana cherry");
  EXPECT_EQ(eval_ok(interp, "lsort -integer {10 2 33 4}"), "2 4 10 33");
  EXPECT_EQ(eval_ok(interp, "lsort -integer -decreasing {10 2 33 4}"),
            "33 10 4 2");
}

TEST(Interp, StringCommands) {
  Interp interp;
  EXPECT_EQ(eval_ok(interp, "string length harmony"), "7");
  EXPECT_EQ(eval_ok(interp, "string tolower ABC"), "abc");
  EXPECT_EQ(eval_ok(interp, "string toupper abc"), "ABC");
  EXPECT_EQ(eval_ok(interp, "string index abcdef 2"), "c");
  EXPECT_EQ(eval_ok(interp, "string range abcdef 1 3"), "bcd");
  EXPECT_EQ(eval_ok(interp, "string equal a a"), "1");
  EXPECT_EQ(eval_ok(interp, "string match {harmony.*} harmony.cs.umd.edu"), "1");
  EXPECT_EQ(eval_ok(interp, "string trim {  x  }"), "x");
}

TEST(Interp, SplitAndJoin) {
  Interp interp;
  EXPECT_EQ(eval_ok(interp, "split a.b.c ."), "a b c");
  EXPECT_EQ(eval_ok(interp, "join {a b c} -"), "a-b-c");
}

TEST(Interp, InfoExists) {
  Interp interp;
  EXPECT_EQ(eval_ok(interp, "info exists nope"), "0");
  eval_ok(interp, "set yes 1");
  EXPECT_EQ(eval_ok(interp, "info exists yes"), "1");
}

TEST(Interp, Format) {
  Interp interp;
  EXPECT_EQ(eval_ok(interp, "format {%d quer%s in %.1f s} 3 ies 2.25"),
            "3 queries in 2.2 s");
  EXPECT_EQ(eval_ok(interp, "format {%05d} 42"), "00042");
  EXPECT_EQ(eval_ok(interp, "format {100%%}"), "100%");
}

TEST(Interp, IncrDefaultsAndAmount) {
  Interp interp;
  EXPECT_EQ(eval_ok(interp, "incr fresh"), "1");
  EXPECT_EQ(eval_ok(interp, "incr fresh 10"), "11");
  EXPECT_EQ(eval_ok(interp, "incr fresh -1"), "10");
}

TEST(Interp, EvalCommand) {
  Interp interp;
  eval_ok(interp, "set cmd {set inner 5}");
  EXPECT_EQ(eval_ok(interp, "eval $cmd"), "5");
  EXPECT_EQ(eval_ok(interp, "set inner"), "5");
}

TEST(Interp, NestedProcsComposingModels) {
  // The shape of an application-supplied performance model script.
  Interp interp;
  eval_ok(interp, R"(
proc commcost {workers} {return [expr {0.5 * $workers * $workers}]}
proc runtime {workers} {
  set compute [expr {1200.0 / $workers}]
  set comm [commcost $workers]
  return [expr {$compute + $comm}]
}
)");
  EXPECT_EQ(eval_ok(interp, "runtime 1"), "1200.5");
  EXPECT_EQ(eval_ok(interp, "runtime 4"), "308");
  EXPECT_EQ(eval_ok(interp, "runtime 8"), "182");
}

TEST(Interp, SwitchExactAndDefault) {
  Interp interp;
  eval_ok(interp, "proc classify {x} {switch $x {QS {return query} DS {return data} default {return other}}}");
  EXPECT_EQ(eval_ok(interp, "classify QS"), "query");
  EXPECT_EQ(eval_ok(interp, "classify DS"), "data");
  EXPECT_EQ(eval_ok(interp, "classify XX"), "other");
}

TEST(Interp, SwitchGlobAndFallThrough) {
  Interp interp;
  EXPECT_EQ(eval_ok(interp,
                    "switch -glob sp2-07 {server {set r s} sp2-* {set r worker} "
                    "default {set r unknown}}"),
            "worker");
  // "-" chains patterns to the next body.
  EXPECT_EQ(eval_ok(interp, "switch b {a - b {set r ab} default {set r d}}"),
            "ab");
}

TEST(Interp, SwitchNoMatchYieldsEmpty) {
  Interp interp;
  EXPECT_EQ(eval_ok(interp, "switch zz {a {set r 1} b {set r 2}}"), "");
  EXPECT_FALSE(interp.eval("switch zz {a}").ok()) << "odd clause count";
}

TEST(Interp, Lsearch) {
  Interp interp;
  EXPECT_EQ(eval_ok(interp, "lsearch {sp2-00 sp2-01 server} server"), "2");
  EXPECT_EQ(eval_ok(interp, "lsearch {sp2-00 sp2-01 server} {sp2-*}"), "0");
  EXPECT_EQ(eval_ok(interp, "lsearch {a b c} z"), "-1");
}

TEST(Interp, Lreverse) {
  Interp interp;
  EXPECT_EQ(eval_ok(interp, "lreverse {1 2 3}"), "3 2 1");
  EXPECT_EQ(eval_ok(interp, "lreverse {{a b} c}"), "c {a b}");
  EXPECT_EQ(eval_ok(interp, "lreverse {}"), "");
}

TEST(Interp, WhileIterationLimitStopsRunaway) {
  Interp interp;
  auto r = interp.eval("while {1} {set x 1}");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("iteration limit"), std::string::npos);
}

TEST(Interp, RegisteredCustomCommand) {
  Interp interp;
  interp.register_command(
      "double", [](Interp&, const std::vector<std::string>& argv)
          -> Result<std::string> {
        long long v = std::stoll(argv.at(1));
        return std::to_string(v * 2);
      });
  EXPECT_EQ(eval_ok(interp, "double 21"), "42");
  EXPECT_TRUE(interp.has_command("double"));
}

}  // namespace
}  // namespace harmony::rsl
