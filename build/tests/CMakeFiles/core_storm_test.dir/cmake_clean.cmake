file(REMOVE_RECURSE
  "CMakeFiles/core_storm_test.dir/core_storm_test.cc.o"
  "CMakeFiles/core_storm_test.dir/core_storm_test.cc.o.d"
  "core_storm_test"
  "core_storm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_storm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
