#include "sim/engine.h"

#include <gtest/gtest.h>

namespace harmony::sim {
namespace {

TEST(SimEngine, StartsAtZero) {
  SimEngine engine;
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_FALSE(engine.step());
}

TEST(SimEngine, EventsFireInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule(3.0, [&] { order.push_back(3); });
  engine.schedule(1.0, [&] { order.push_back(1); });
  engine.schedule(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(SimEngine, EqualTimesFireInScheduleOrder) {
  SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimEngine, HandlersCanScheduleMore) {
  SimEngine engine;
  std::vector<double> times;
  std::function<void()> tick = [&] {
    times.push_back(engine.now());
    if (times.size() < 3) engine.schedule(1.0, tick);
  };
  engine.schedule(1.0, tick);
  engine.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(SimEngine, CancelPreventsExecution) {
  SimEngine engine;
  bool fired = false;
  EventId id = engine.schedule(1.0, [&] { fired = true; });
  engine.cancel(id);
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.events_executed(), 0u);
}

TEST(SimEngine, CancelUnknownIsNoop) {
  SimEngine engine;
  engine.cancel(12345);
  EXPECT_FALSE(engine.step());
}

TEST(SimEngine, RunUntilAdvancesClockPastLastEvent) {
  SimEngine engine;
  int fired = 0;
  engine.schedule(1.0, [&] { ++fired; });
  engine.schedule(5.0, [&] { ++fired; });
  engine.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
  engine.run_until(10.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(SimEngine, RunUntilBoundaryInclusive) {
  SimEngine engine;
  bool fired = false;
  engine.schedule(2.0, [&] { fired = true; });
  engine.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(SimEngine, ScheduleAtAbsoluteTime) {
  SimEngine engine;
  double when = -1;
  engine.schedule_at(4.5, [&] { when = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(when, 4.5);
}

TEST(SimEngine, ZeroDelayFiresImmediately) {
  SimEngine engine;
  engine.schedule(1.0, [&] {
    engine.schedule(0.0, [&] { EXPECT_DOUBLE_EQ(engine.now(), 1.0); });
  });
  engine.run();
  EXPECT_EQ(engine.events_executed(), 2u);
}

TEST(SimEngine, ManyEventsStressDeterminism) {
  auto run_once = [] {
    SimEngine engine;
    std::vector<std::pair<double, int>> log;
    for (int i = 0; i < 1000; ++i) {
      double t = (i * 7919) % 101 / 10.0;
      engine.schedule(t, [&log, t, i] { log.emplace_back(t, i); });
    }
    engine.run();
    return log;
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a, b);
  // Order is globally sorted by (time, schedule order).
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_TRUE(a[i - 1].first < a[i].first ||
                (a[i - 1].first == a[i].first && a[i - 1].second < a[i].second));
  }
}

}  // namespace
}  // namespace harmony::sim
