#include "net/server.h"

#include <poll.h>

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/strings.h"

namespace harmony::net {

HarmonyTcpServer::HarmonyTcpServer(core::Controller* controller,
                                   uint16_t port)
    : controller_(controller), port_(port) {
  HARMONY_ASSERT(controller != nullptr);
}

HarmonyTcpServer::~HarmonyTcpServer() {
  // Deregister everything still connected.
  for (auto& connection : connections_) {
    for (core::InstanceId id : connection->instances) {
      (void)controller_->unregister(id);
    }
  }
}

Result<uint16_t> HarmonyTcpServer::start() {
  auto listener = listen_on(port_);
  if (!listener.ok()) {
    return Err<uint16_t>(listener.error().code, listener.error().message);
  }
  listener_ = std::move(listener).value();
  auto status = set_nonblocking(listener_, true);
  if (!status.ok()) return Err<uint16_t>(status.error().code, status.error().message);
  auto port = local_port(listener_);
  if (!port.ok()) return port;
  port_ = port.value();
  HLOG_INFO("server") << "harmony listening on 127.0.0.1:" << port_;
  return port_;
}

bool HarmonyTcpServer::run_once(int timeout_ms) {
  // The fd/event fields are refreshed in place every tick (writability
  // interest follows the outbound buffer), but the vector itself only
  // grows or shrinks when connections come and go.
  pollfds_.resize(connections_.size() + 1);
  pollfds_[0] = {listener_.get(), POLLIN, 0};
  for (size_t i = 0; i < connections_.size(); ++i) {
    short events = POLLIN;
    if (!connections_[i]->outbound.empty()) events |= POLLOUT;
    pollfds_[i + 1] = {connections_[i]->fd.get(), events, 0};
  }
  int ready = ::poll(pollfds_.data(), pollfds_.size(), timeout_ms);
  if (ready <= 0) return false;

  if (pollfds_[0].revents & POLLIN) accept_new();
  // accept_new may have grown connections_; the new entries poll next
  // tick. Dispatch strictly over this tick's snapshot.
  const size_t polled = pollfds_.size();
  for (size_t i = 1; i < polled; ++i) {
    Connection& connection = *connections_[i - 1];
    if (pollfds_[i].revents & (POLLIN | POLLHUP | POLLERR)) {
      handle_readable(connection);
    }
    if (!connection.drop && (pollfds_[i].revents & POLLOUT)) {
      flush_writable(connection);
    }
  }
  reap_dropped();
  return true;
}

void HarmonyTcpServer::run(int until_idle_ms) {
  // Idle time is measured on a monotonic clock, not by counting poll
  // timeouts: a poll interrupted by a signal (EINTR) returns
  // immediately, so assuming each no-progress iteration consumed the
  // full timeout would cut the idle window short by however often
  // signals arrive.
  using Clock = std::chrono::steady_clock;
  Clock::time_point last_progress = Clock::now();
  while (!stopping_) {
    bool progress = run_once(50);
    if (progress) {
      last_progress = Clock::now();
    } else if (until_idle_ms > 0) {
      auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
          Clock::now() - last_progress);
      if (idle.count() >= until_idle_ms) return;
    }
  }
}

void HarmonyTcpServer::accept_new() {
  while (true) {
    auto accepted = accept_connection(listener_);
    if (!accepted.ok()) return;  // EAGAIN or real error; poll again later
    auto connection = std::make_unique<Connection>();
    connection->fd = std::move(accepted).value();
    auto status = set_nonblocking(connection->fd, true);
    if (!status.ok()) continue;
    HLOG_DEBUG("server") << "accepted connection fd="
                         << connection->fd.get();
    connections_.push_back(std::move(connection));
  }
}

void HarmonyTcpServer::handle_readable(Connection& connection) {
  char buffer[4096];
  while (true) {
    auto n = read_some(connection.fd, buffer, sizeof(buffer));
    if (!n.ok()) {
      connection.drop = true;
      return;
    }
    if (n.value() == 0) break;  // drained
    connection.inbound.feed(std::string_view(buffer, n.value()));
  }
  while (true) {
    auto frame = connection.inbound.next_frame();
    if (!frame.ok()) {
      HLOG_WARN("server") << "protocol violation: " << frame.error().message;
      connection.drop = true;
      return;
    }
    if (!frame.value().has_value()) break;
    auto message = Message::decode(*frame.value());
    if (!message.ok()) {
      send(connection, Message::err(message.error().code,
                                    message.error().message));
      continue;
    }
    dispatch(connection, message.value());
    if (connection.drop) return;
  }
}

void HarmonyTcpServer::dispatch(Connection& connection,
                                const Message& message) {
  Message reply;
  {
    // One message = one optimization epoch: a REGISTER that also
    // subscribes (or an END that cascades re-evaluations) produces a
    // single coherent flush of variable updates and one set of
    // decision-path metrics.
    core::Controller::EpochScope epoch(*controller_);
    reply = handle_message(connection, message);
  }
  // The epoch close above flushed pending variable updates, so UPDATE
  // frames always precede the reply on the wire — clients that block on
  // the reply then drain their buffer see a complete picture.
  send(connection, reply);
}

Message HarmonyTcpServer::handle_message(Connection& connection,
                                         const Message& message) {
  if (message.verb == "REGISTER") {
    if (message.args.size() != 1) {
      return Message::err(ErrorCode::kProtocol,
                          "REGISTER expects one argument");
    }
    auto id = controller_->register_script(message.args[0]);
    if (!id.ok()) {
      return Message::err(id.error().code, id.error().message);
    }
    connection.instances.push_back(id.value());
    // Wire updates for this instance to this connection. The pointer is
    // stable: connections are heap-allocated and subscriptions die with
    // the instance (unregister clears them).
    Connection* conn = &connection;
    auto subscribed = controller_->subscribe(
        id.value(),
        [this, conn](const std::string& name, const std::string& value) {
          send(*conn, Message::update(name, value));
        });
    if (!subscribed.ok()) {
      return Message::err(subscribed.error().code, subscribed.error().message);
    }
    return Message::ok(
        {str_format("%llu", static_cast<unsigned long long>(id.value()))});
  }
  if (message.verb == "END" || message.verb == "GET") {
    unsigned long long raw = 0;
    if (message.args.empty() ||
        sscanf(message.args[0].c_str(), "%llu", &raw) != 1) {
      return Message::err(ErrorCode::kProtocol, "bad instance id");
    }
    core::InstanceId id = raw;
    bool owned = std::find(connection.instances.begin(),
                           connection.instances.end(),
                           id) != connection.instances.end();
    if (!owned) {
      return Message::err(ErrorCode::kNotFound,
                          "instance not registered here");
    }
    if (message.verb == "END") {
      auto status = controller_->unregister(id);
      connection.instances.erase(std::remove(connection.instances.begin(),
                                             connection.instances.end(), id),
                                 connection.instances.end());
      return status.ok() ? Message::ok()
                         : Message::err(status.error().code,
                                        status.error().message);
    }
    if (message.args.size() != 2) {
      return Message::err(ErrorCode::kProtocol, "GET expects id and name");
    }
    auto value = controller_->get_variable(id, message.args[1]);
    return value.ok() ? Message::ok({value.value()})
                      : Message::err(value.error().code,
                                     value.error().message);
  }
  if (message.verb == "REEVALUATE") {
    auto status = controller_->reevaluate();
    return status.ok() ? Message::ok()
                       : Message::err(status.error().code,
                                      status.error().message);
  }
  return Message::err(ErrorCode::kProtocol, "unknown verb: " + message.verb);
}

void HarmonyTcpServer::send(Connection& connection, const Message& message) {
  connection.outbound += encode_frame(message.encode());
  flush_writable(connection);
}

void HarmonyTcpServer::flush_writable(Connection& connection) {
  while (!connection.outbound.empty()) {
    auto n = write_some(connection.fd, connection.outbound.data(),
                        connection.outbound.size());
    if (!n.ok()) {
      connection.drop = true;
      return;
    }
    if (n.value() == 0) return;  // would block; poll will retry
    connection.outbound.erase(0, n.value());
  }
}

void HarmonyTcpServer::reap_dropped() {
  // All implicit harmony_ends from one poll iteration share an epoch.
  core::Controller::EpochScope epoch(*controller_);
  for (auto& connection : connections_) {
    if (!connection->drop) continue;
    // A vanished application is an implicit harmony_end.
    for (core::InstanceId id : connection->instances) {
      HLOG_INFO("server") << "connection dropped; ending instance " << id;
      (void)controller_->unregister(id);
    }
    connection->instances.clear();
  }
  connections_.erase(
      std::remove_if(connections_.begin(), connections_.end(),
                     [](const auto& c) { return c->drop; }),
      connections_.end());
}

}  // namespace harmony::net
