#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace harmony {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(99);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversSmallRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(11);
  std::set<long long> seen;
  for (int i = 0; i < 500; ++i) {
    long long v = rng.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalHasRoughlyUnitMoments) {
  Rng rng(42);
  double sum = 0, sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.next_normal();
    sum += v;
    sum2 += v * v;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, ExponentialHasExpectedMean) {
  Rng rng(43);
  double sum = 0;
  const int n = 50000;
  const double rate = 2.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.next_exponential(rate);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(123);
  Rng child = parent.fork();
  // Child stream is not a suffix/copy of the parent stream.
  Rng parent2(123);
  parent2.fork();
  EXPECT_EQ(parent.next_u64(), parent2.next_u64())
      << "forking must leave the parent stream deterministic";
  uint64_t c = child.next_u64();
  uint64_t p = parent.next_u64();
  EXPECT_NE(c, p);
}

TEST(Rng, ReseedResetsStream) {
  Rng rng(1);
  uint64_t first = rng.next_u64();
  rng.next_u64();
  rng.reseed(1);
  EXPECT_EQ(rng.next_u64(), first);
}

class RngBoundSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBoundSweep, UniformityChiSquaredLoose) {
  const uint64_t bound = GetParam();
  Rng rng(bound * 2654435761ULL + 1);
  std::vector<int> counts(bound, 0);
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    ++counts[rng.next_below(bound)];
  }
  // Loose uniformity check: every bucket within 30% of expectation.
  double expected = static_cast<double>(samples) / static_cast<double>(bound);
  for (uint64_t b = 0; b < bound; ++b) {
    EXPECT_GT(counts[b], expected * 0.7) << "bucket " << b;
    EXPECT_LT(counts[b], expected * 1.3) << "bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(2, 3, 5, 8, 16));

}  // namespace
}  // namespace harmony
