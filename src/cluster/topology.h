// Cluster model: nodes with a speed scaling factor relative to the
// paper's reference machine (a 400 MHz Pentium II), memory, an OS tag,
// and links with bandwidth/latency. The topology graph answers
// widest-path bandwidth queries between any two nodes, which the
// matcher and the simulator's network model both use.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace harmony::cluster {

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

struct NodeInfo {
  NodeId id = kInvalidNode;
  std::string hostname;
  std::string os;
  double speed = 1.0;      // relative to the 400 MHz PII reference machine
  double memory_mb = 0.0;  // physical memory
};

struct LinkInfo {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  double bandwidth_mbps = 0.0;
  double latency_ms = 0.0;
};

class Topology {
 public:
  // Hostname must be unique; returns the new node's id.
  Result<NodeId> add_node(std::string hostname, double speed, double memory_mb,
                          std::string os = "");
  // Undirected; replaces any existing a<->b link.
  Status add_link(NodeId a, NodeId b, double bandwidth_mbps,
                  double latency_ms = 0.0);

  size_t node_count() const { return nodes_.size(); }
  const std::vector<NodeInfo>& nodes() const { return nodes_; }
  const NodeInfo& node(NodeId id) const;
  Result<NodeId> find_by_hostname(const std::string& hostname) const;

  // Node ids whose hostname matches `hostname_glob` (and whose OS tag
  // equals `os` when non-empty), ascending by id — the same set and
  // order a filtered scan of nodes() yields. Globs of the form
  // "prefix*" (literal prefix, the only wildcard a trailing star) take
  // an indexed path over the ordered hostname map, O(log n + matches),
  // which keeps admissible-set probes on huge clusters proportional to
  // the footprint they select.
  std::vector<NodeId> match_nodes(const std::string& hostname_glob,
                                  const std::string& os = "") const;

  // The direct link between a and b, or nullptr if none.
  const LinkInfo* link(NodeId a, NodeId b) const;
  const std::vector<LinkInfo>& links() const { return links_; }

  // Bandwidth of the widest path a->b (bottleneck bandwidth), 0 if
  // disconnected. a == b yields +infinity (local communication).
  double path_bandwidth(NodeId a, NodeId b) const;
  // Total latency along the widest path (sum of per-hop latencies).
  double path_latency(NodeId a, NodeId b) const;
  bool connected(NodeId a, NodeId b) const {
    return a == b || path_bandwidth(a, b) > 0.0;
  }

  // Link indices (into links()) along the widest path a->b, in order.
  // Empty when a == b or disconnected. The network simulator routes
  // flows along this path.
  std::vector<size_t> path_links(NodeId a, NodeId b) const;

 private:
  struct PathResult {
    double bandwidth = 0.0;
    double latency = 0.0;
    std::vector<size_t> links;  // hop link indices, in order
  };
  PathResult widest_path(NodeId a, NodeId b) const;

  std::vector<NodeInfo> nodes_;
  std::vector<LinkInfo> links_;
  // Ordered so prefix globs can range-scan instead of visiting every
  // hostname.
  std::map<std::string, NodeId> by_hostname_;
  // adjacency: node -> list of link indices
  std::vector<std::vector<size_t>> adjacency_;
};

}  // namespace harmony::cluster
