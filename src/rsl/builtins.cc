// Builtin command set for the TCL-subset interpreter: variables,
// control flow, lists, strings, procs. Implements the subset the RSL
// and the paper's performance-model scripts need.
#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "rsl/expr.h"
#include "rsl/interp.h"
#include "rsl/value.h"

namespace harmony::rsl {

namespace {

using Args = std::vector<std::string>;
using R = Result<std::string>;

R arity_error(const std::string& cmd, const char* usage) {
  return Err<std::string>(ErrorCode::kEvalError,
                          "wrong # args: should be \"" + cmd + " " + usage + "\"");
}

ExprContext make_context(Interp& interp) {
  ExprContext ctx;
  ctx.var_lookup = [&interp](const std::string& name, std::string* out) {
    auto v = interp.get_var(name);
    if (!v.ok()) return false;
    *out = v.value();
    return true;
  };
  ctx.name_lookup = [&interp](const std::string& name, double* out) {
    if (interp.name_resolver()) return interp.name_resolver()(name, out);
    return false;
  };
  ctx.cmd_eval = [&interp](const std::string& script) {
    return interp.eval(script);
  };
  return ctx;
}

// Evaluates a condition string as a boolean expression.
Result<bool> eval_condition(Interp& interp, const std::string& cond) {
  auto ctx = make_context(interp);
  auto value = expr_eval(cond, ctx);
  if (!value.ok()) return Err<bool>(value.error().code, value.error().message);
  double number = 0;
  if (parse_double(value.value(), &number)) return number != 0.0;
  return !value.value().empty();
}

R cmd_set(Interp& interp, const Args& args) {
  if (args.size() == 2) return interp.get_var(args[1]);
  if (args.size() != 3) return arity_error("set", "varName ?newValue?");
  interp.set_var(args[1], args[2]);
  return args[2];
}

R cmd_unset(Interp& interp, const Args& args) {
  if (args.size() != 2) return arity_error("unset", "varName");
  interp.unset_var(args[1]);
  return std::string();
}

R cmd_global(Interp& interp, const Args& args) {
  // Our lookup falls through to the global frame for reads; `global`
  // only needs to make writes global. We approximate by copying the
  // global value into the local frame reference-style: unsupported, so
  // we just verify the names exist or create empty globals.
  for (size_t i = 1; i < args.size(); ++i) {
    if (!interp.has_var(args[i])) interp.set_global(args[i], "");
  }
  return std::string();
}

R cmd_incr(Interp& interp, const Args& args) {
  if (args.size() != 2 && args.size() != 3) {
    return arity_error("incr", "varName ?increment?");
  }
  long long amount = 1;
  if (args.size() == 3 && !parse_int64(args[2], &amount)) {
    return Err<std::string>(ErrorCode::kEvalError,
                            "expected integer but got \"" + args[2] + "\"");
  }
  long long current = 0;
  if (interp.has_var(args[1])) {
    auto value = interp.get_var(args[1]);
    if (!parse_int64(value.value(), &current)) {
      return Err<std::string>(
          ErrorCode::kEvalError,
          "expected integer but got \"" + value.value() + "\"");
    }
  }
  std::string next = str_format("%lld", current + amount);
  interp.set_var(args[1], next);
  return next;
}

R cmd_append(Interp& interp, const Args& args) {
  if (args.size() < 2) return arity_error("append", "varName ?value ...?");
  std::string value;
  if (interp.has_var(args[1])) value = interp.get_var(args[1]).value();
  for (size_t i = 2; i < args.size(); ++i) value += args[i];
  interp.set_var(args[1], value);
  return value;
}

R cmd_expr(Interp& interp, const Args& args) {
  if (args.size() < 2) return arity_error("expr", "arg ?arg ...?");
  std::string text;
  for (size_t i = 1; i < args.size(); ++i) {
    if (i > 1) text += ' ';
    text += args[i];
  }
  auto ctx = make_context(interp);
  return expr_eval(text, ctx);
}

R cmd_if(Interp& interp, const Args& args) {
  size_t i = 1;
  while (i < args.size()) {
    if (i + 1 >= args.size()) return arity_error("if", "cond body ?elseif ...? ?else body?");
    auto cond = eval_condition(interp, args[i]);
    if (!cond.ok()) return Err<std::string>(cond.error().code, cond.error().message);
    size_t body = i + 1;
    if (body < args.size() && args[body] == "then") ++body;
    if (body >= args.size()) return arity_error("if", "cond body");
    if (cond.value()) return interp.eval(args[body]);
    i = body + 1;
    if (i >= args.size()) return std::string();
    if (args[i] == "elseif") {
      ++i;
      continue;
    }
    if (args[i] == "else") {
      if (i + 1 >= args.size()) return arity_error("if", "... else body");
      return interp.eval(args[i + 1]);
    }
    return Err<std::string>(ErrorCode::kEvalError,
                            "expected \"elseif\" or \"else\" but got \"" +
                                args[i] + "\"");
  }
  return std::string();
}

constexpr int kMaxLoopIterations = 1'000'000;  // runaway-script guard

R cmd_while(Interp& interp, const Args& args) {
  if (args.size() != 3) return arity_error("while", "cond body");
  int iterations = 0;
  while (true) {
    auto cond = eval_condition(interp, args[1]);
    if (!cond.ok()) return Err<std::string>(cond.error().code, cond.error().message);
    if (!cond.value()) break;
    auto body = interp.eval(args[2]);
    if (!body.ok()) return body;
    if (interp.flow() == Interp::Flow::kBreak) {
      interp.set_flow(Interp::Flow::kNormal);
      break;
    }
    if (interp.flow() == Interp::Flow::kContinue) {
      interp.set_flow(Interp::Flow::kNormal);
    }
    if (interp.flow() == Interp::Flow::kReturn) break;
    if (++iterations > kMaxLoopIterations) {
      return Err<std::string>(ErrorCode::kEvalError, "while: iteration limit");
    }
  }
  return std::string();
}

R cmd_for(Interp& interp, const Args& args) {
  if (args.size() != 5) return arity_error("for", "init cond next body");
  auto init = interp.eval(args[1]);
  if (!init.ok()) return init;
  int iterations = 0;
  while (true) {
    auto cond = eval_condition(interp, args[2]);
    if (!cond.ok()) return Err<std::string>(cond.error().code, cond.error().message);
    if (!cond.value()) break;
    auto body = interp.eval(args[4]);
    if (!body.ok()) return body;
    if (interp.flow() == Interp::Flow::kBreak) {
      interp.set_flow(Interp::Flow::kNormal);
      break;
    }
    if (interp.flow() == Interp::Flow::kContinue) {
      interp.set_flow(Interp::Flow::kNormal);
    }
    if (interp.flow() == Interp::Flow::kReturn) break;
    auto next = interp.eval(args[3]);
    if (!next.ok()) return next;
    if (++iterations > kMaxLoopIterations) {
      return Err<std::string>(ErrorCode::kEvalError, "for: iteration limit");
    }
  }
  return std::string();
}

R cmd_foreach(Interp& interp, const Args& args) {
  if (args.size() != 4) return arity_error("foreach", "varName list body");
  auto items = list_parse(args[2]);
  if (!items.ok()) return Err<std::string>(items.error().code, items.error().message);
  for (const auto& item : items.value()) {
    interp.set_var(args[1], item);
    auto body = interp.eval(args[3]);
    if (!body.ok()) return body;
    if (interp.flow() == Interp::Flow::kBreak) {
      interp.set_flow(Interp::Flow::kNormal);
      break;
    }
    if (interp.flow() == Interp::Flow::kContinue) {
      interp.set_flow(Interp::Flow::kNormal);
    }
    if (interp.flow() == Interp::Flow::kReturn) break;
  }
  return std::string();
}

R cmd_break(Interp& interp, const Args& args) {
  if (args.size() != 1) return arity_error("break", "");
  interp.set_flow(Interp::Flow::kBreak);
  return std::string();
}

R cmd_continue(Interp& interp, const Args& args) {
  if (args.size() != 1) return arity_error("continue", "");
  interp.set_flow(Interp::Flow::kContinue);
  return std::string();
}

R cmd_return(Interp& interp, const Args& args) {
  if (args.size() > 2) return arity_error("return", "?value?");
  interp.set_flow(Interp::Flow::kReturn);
  return args.size() == 2 ? args[1] : std::string();
}

R cmd_error(Interp&, const Args& args) {
  if (args.size() != 2) return arity_error("error", "message");
  return Err<std::string>(ErrorCode::kEvalError, args[1]);
}

R cmd_catch(Interp& interp, const Args& args) {
  if (args.size() != 2 && args.size() != 3) {
    return arity_error("catch", "script ?resultVarName?");
  }
  auto result = interp.eval(args[1]);
  if (interp.flow() == Interp::Flow::kReturn) {
    interp.set_flow(Interp::Flow::kNormal);
  }
  if (args.size() == 3) {
    interp.set_var(args[2],
                   result.ok() ? result.value() : result.error().message);
  }
  return std::string(result.ok() ? "0" : "1");
}

R cmd_proc(Interp& interp, const Args& args) {
  if (args.size() != 4) return arity_error("proc", "name params body");
  auto params = list_parse(args[2]);
  if (!params.ok()) return Err<std::string>(params.error().code, params.error().message);
  Interp::Proc proc;
  for (size_t i = 0; i < params.value().size(); ++i) {
    const std::string& param = params.value()[i];
    if (param == "args" && i == params.value().size() - 1) {
      proc.has_varargs = true;
      continue;
    }
    auto parts = list_parse(param);
    if (!parts.ok() || parts.value().empty() || parts.value().size() > 2) {
      return Err<std::string>(ErrorCode::kEvalError,
                              "malformed parameter: \"" + param + "\"");
    }
    proc.params.emplace_back(parts.value()[0], parts.value().size() == 2
                                                   ? parts.value()[1]
                                                   : std::string());
  }
  proc.body = args[3];
  auto status = interp.define_proc(args[1], std::move(proc));
  if (!status.ok()) return Err<std::string>(status.error().code, status.error().message);
  return std::string();
}

R cmd_puts(Interp& interp, const Args& args) {
  bool newline = true;
  size_t i = 1;
  if (i < args.size() && args[i] == "-nonewline") {
    newline = false;
    ++i;
  }
  if (i + 1 != args.size()) return arity_error("puts", "?-nonewline? string");
  interp.append_output(args[i]);
  if (newline) interp.append_output("\n");
  return std::string();
}

R cmd_list(Interp&, const Args& args) {
  std::vector<std::string> items(args.begin() + 1, args.end());
  return list_build(items);
}

R cmd_llength(Interp&, const Args& args) {
  if (args.size() != 2) return arity_error("llength", "list");
  auto items = list_parse(args[1]);
  if (!items.ok()) return Err<std::string>(items.error().code, items.error().message);
  return str_format("%zu", items.value().size());
}

// Resolves a TCL index spec: integer, "end", or "end-N".
Result<long long> parse_index(const std::string& spec, size_t length) {
  long long index = 0;
  if (spec == "end") return static_cast<long long>(length) - 1;
  if (starts_with(spec, "end-")) {
    long long offset = 0;
    if (!parse_int64(spec.substr(4), &offset)) {
      return Err<long long>(ErrorCode::kEvalError, "bad index: " + spec);
    }
    return static_cast<long long>(length) - 1 - offset;
  }
  if (!parse_int64(spec, &index)) {
    return Err<long long>(ErrorCode::kEvalError, "bad index: " + spec);
  }
  return index;
}

R cmd_lindex(Interp&, const Args& args) {
  if (args.size() != 3) return arity_error("lindex", "list index");
  auto items = list_parse(args[1]);
  if (!items.ok()) return Err<std::string>(items.error().code, items.error().message);
  auto index = parse_index(args[2], items.value().size());
  if (!index.ok()) return Err<std::string>(index.error().code, index.error().message);
  if (index.value() < 0 ||
      index.value() >= static_cast<long long>(items.value().size())) {
    return std::string();
  }
  return items.value()[static_cast<size_t>(index.value())];
}

R cmd_lrange(Interp&, const Args& args) {
  if (args.size() != 4) return arity_error("lrange", "list first last");
  auto items = list_parse(args[1]);
  if (!items.ok()) return Err<std::string>(items.error().code, items.error().message);
  auto first = parse_index(args[2], items.value().size());
  if (!first.ok()) return Err<std::string>(first.error().code, first.error().message);
  auto last = parse_index(args[3], items.value().size());
  if (!last.ok()) return Err<std::string>(last.error().code, last.error().message);
  long long lo = std::max(0LL, first.value());
  long long hi = std::min<long long>(
      static_cast<long long>(items.value().size()) - 1, last.value());
  std::vector<std::string> slice;
  for (long long i = lo; i <= hi; ++i) {
    slice.push_back(items.value()[static_cast<size_t>(i)]);
  }
  return list_build(slice);
}

R cmd_lappend(Interp& interp, const Args& args) {
  if (args.size() < 2) return arity_error("lappend", "varName ?value ...?");
  std::string current;
  if (interp.has_var(args[1])) current = interp.get_var(args[1]).value();
  auto items = list_parse(current);
  if (!items.ok()) return Err<std::string>(items.error().code, items.error().message);
  for (size_t i = 2; i < args.size(); ++i) items.value().push_back(args[i]);
  std::string next = list_build(items.value());
  interp.set_var(args[1], next);
  return next;
}

R cmd_concat(Interp&, const Args& args) {
  std::string out;
  for (size_t i = 1; i < args.size(); ++i) {
    auto trimmed = trim(args[i]);
    if (trimmed.empty()) continue;
    if (!out.empty()) out += ' ';
    out.append(trimmed);
  }
  return out;
}

R cmd_join(Interp&, const Args& args) {
  if (args.size() != 2 && args.size() != 3) {
    return arity_error("join", "list ?joinString?");
  }
  auto items = list_parse(args[1]);
  if (!items.ok()) return Err<std::string>(items.error().code, items.error().message);
  std::string sep = args.size() == 3 ? args[2] : " ";
  return join(items.value(), sep);
}

R cmd_split(Interp&, const Args& args) {
  if (args.size() != 2 && args.size() != 3) {
    return arity_error("split", "string ?splitChars?");
  }
  std::vector<std::string> parts;
  if (args.size() == 2) {
    parts = split_whitespace(args[1]);
  } else if (args[2].empty()) {
    for (char c : args[1]) parts.emplace_back(1, c);
  } else {
    // Split on any of the given characters.
    std::string current;
    for (char c : args[1]) {
      if (args[2].find(c) != std::string::npos) {
        parts.push_back(current);
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    parts.push_back(current);
  }
  return list_build(parts);
}

R cmd_lsort(Interp&, const Args& args) {
  size_t i = 1;
  bool numeric = false;
  bool decreasing = false;
  while (i < args.size() - 1) {
    if (args[i] == "-integer" || args[i] == "-real") numeric = true;
    else if (args[i] == "-decreasing") decreasing = true;
    else if (args[i] == "-increasing") decreasing = false;
    else break;
    ++i;
  }
  if (i + 1 != args.size()) {
    return arity_error("lsort", "?-integer|-real? ?-decreasing? list");
  }
  auto items = list_parse(args[i]);
  if (!items.ok()) return Err<std::string>(items.error().code, items.error().message);
  auto& v = items.value();
  if (numeric) {
    std::stable_sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
      double x = 0, y = 0;
      parse_double(a, &x);
      parse_double(b, &y);
      return x < y;
    });
  } else {
    std::stable_sort(v.begin(), v.end());
  }
  if (decreasing) std::reverse(v.begin(), v.end());
  return list_build(v);
}

R cmd_switch(Interp& interp, const Args& args) {
  // switch ?-exact|-glob? value {pattern body pattern body ... ?default body?}
  // or the flat form: switch value pattern body ...
  size_t i = 1;
  bool use_glob = false;
  if (i < args.size() && args[i] == "-glob") {
    use_glob = true;
    ++i;
  } else if (i < args.size() && args[i] == "-exact") {
    ++i;
  }
  if (i >= args.size()) return arity_error("switch", "?-exact|-glob? value {pattern body ...}");
  const std::string value = args[i++];
  std::vector<std::string> clauses;
  if (args.size() - i == 1) {
    auto parsed = list_parse(args[i]);
    if (!parsed.ok()) return Err<std::string>(parsed.error().code, parsed.error().message);
    clauses = std::move(parsed).value();
  } else {
    clauses.assign(args.begin() + static_cast<long>(i), args.end());
  }
  if (clauses.size() % 2 != 0) {
    return Err<std::string>(ErrorCode::kEvalError,
                            "switch: pattern without a body");
  }
  for (size_t c = 0; c < clauses.size(); c += 2) {
    const std::string& pattern = clauses[c];
    bool matched = pattern == "default" ||
                   (use_glob ? glob_match(pattern, value) : pattern == value);
    if (!matched) continue;
    // "-" chains to the next body.
    size_t body = c + 1;
    while (body < clauses.size() && clauses[body] == "-") body += 2;
    if (body >= clauses.size()) {
      return Err<std::string>(ErrorCode::kEvalError,
                              "switch: no body after fall-through");
    }
    return interp.eval(clauses[body]);
  }
  return std::string();
}

R cmd_lsearch(Interp&, const Args& args) {
  if (args.size() != 3) return arity_error("lsearch", "list pattern");
  auto items = list_parse(args[1]);
  if (!items.ok()) return Err<std::string>(items.error().code, items.error().message);
  for (size_t i = 0; i < items.value().size(); ++i) {
    if (glob_match(args[2], items.value()[i])) {
      return str_format("%zu", i);
    }
  }
  return std::string("-1");
}

R cmd_lreverse(Interp&, const Args& args) {
  if (args.size() != 2) return arity_error("lreverse", "list");
  auto items = list_parse(args[1]);
  if (!items.ok()) return Err<std::string>(items.error().code, items.error().message);
  std::reverse(items.value().begin(), items.value().end());
  return list_build(items.value());
}

R cmd_string(Interp&, const Args& args) {
  if (args.size() < 3) return arity_error("string", "subcommand arg ?arg?");
  const std::string& sub = args[1];
  if (sub == "length") {
    return str_format("%zu", args[2].size());
  }
  if (sub == "tolower" || sub == "toupper") {
    std::string out = args[2];
    for (char& c : out) {
      c = sub == "tolower" ? static_cast<char>(std::tolower(c))
                           : static_cast<char>(std::toupper(c));
    }
    return out;
  }
  if (sub == "trim") {
    return std::string(trim(args[2]));
  }
  if (sub == "index") {
    if (args.size() != 4) return arity_error("string index", "string charIndex");
    auto index = parse_index(args[3], args[2].size());
    if (!index.ok()) return Err<std::string>(index.error().code, index.error().message);
    if (index.value() < 0 ||
        index.value() >= static_cast<long long>(args[2].size())) {
      return std::string();
    }
    return std::string(1, args[2][static_cast<size_t>(index.value())]);
  }
  if (sub == "range") {
    if (args.size() != 5) return arity_error("string range", "string first last");
    auto first = parse_index(args[3], args[2].size());
    auto last = parse_index(args[4], args[2].size());
    if (!first.ok()) return Err<std::string>(first.error().code, first.error().message);
    if (!last.ok()) return Err<std::string>(last.error().code, last.error().message);
    long long lo = std::max(0LL, first.value());
    long long hi = std::min<long long>(
        static_cast<long long>(args[2].size()) - 1, last.value());
    if (lo > hi) return std::string();
    return args[2].substr(static_cast<size_t>(lo),
                          static_cast<size_t>(hi - lo + 1));
  }
  if (sub == "equal") {
    if (args.size() != 4) return arity_error("string equal", "string string");
    return std::string(args[2] == args[3] ? "1" : "0");
  }
  if (sub == "compare") {
    if (args.size() != 4) return arity_error("string compare", "string string");
    int c = args[2].compare(args[3]);
    return std::string(c < 0 ? "-1" : (c > 0 ? "1" : "0"));
  }
  if (sub == "match") {
    if (args.size() != 4) return arity_error("string match", "pattern string");
    return std::string(glob_match(args[2], args[3]) ? "1" : "0");
  }
  if (sub == "first") {
    if (args.size() != 4) return arity_error("string first", "needle haystack");
    size_t pos = args[3].find(args[2]);
    return str_format("%lld",
                      pos == std::string::npos ? -1LL : static_cast<long long>(pos));
  }
  if (sub == "repeat") {
    if (args.size() != 4) return arity_error("string repeat", "string count");
    long long count = 0;
    if (!parse_int64(args[3], &count) || count < 0) {
      return Err<std::string>(ErrorCode::kEvalError, "bad count: " + args[3]);
    }
    std::string out;
    out.reserve(args[2].size() * static_cast<size_t>(count));
    for (long long i = 0; i < count; ++i) out += args[2];
    return out;
  }
  return Err<std::string>(ErrorCode::kEvalError,
                          "unknown string subcommand: " + sub);
}

R cmd_info(Interp& interp, const Args& args) {
  if (args.size() < 2) return arity_error("info", "subcommand ?arg?");
  const std::string& sub = args[1];
  if (sub == "exists") {
    if (args.size() != 3) return arity_error("info exists", "varName");
    return std::string(interp.has_var(args[2]) ? "1" : "0");
  }
  if (sub == "commands") {
    auto names = interp.command_names();
    std::sort(names.begin(), names.end());
    return list_build(names);
  }
  return Err<std::string>(ErrorCode::kEvalError,
                          "unknown info subcommand: " + sub);
}

R cmd_eval(Interp& interp, const Args& args) {
  if (args.size() < 2) return arity_error("eval", "arg ?arg ...?");
  std::string script;
  for (size_t i = 1; i < args.size(); ++i) {
    if (i > 1) script += ' ';
    script += args[i];
  }
  return interp.eval(script);
}

R cmd_format(Interp&, const Args& args) {
  if (args.size() < 2) return arity_error("format", "formatString ?arg ...?");
  const std::string& fmt = args[1];
  std::string out;
  size_t arg = 2;
  for (size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] != '%') {
      out.push_back(fmt[i]);
      continue;
    }
    ++i;
    if (i >= fmt.size()) break;
    if (fmt[i] == '%') {
      out.push_back('%');
      continue;
    }
    // Collect the spec: flags, width, precision, conversion.
    std::string spec = "%";
    while (i < fmt.size() &&
           (std::isdigit(static_cast<unsigned char>(fmt[i])) ||
            fmt[i] == '.' || fmt[i] == '-' || fmt[i] == '+' ||
            fmt[i] == ' ' || fmt[i] == '0' || fmt[i] == '#')) {
      spec.push_back(fmt[i]);
      ++i;
    }
    if (i >= fmt.size()) break;
    char conv = fmt[i];
    if (arg >= args.size()) {
      return Err<std::string>(ErrorCode::kEvalError,
                              "format: not enough arguments");
    }
    const std::string& value = args[arg++];
    switch (conv) {
      case 'd': case 'i': case 'x': case 'X': case 'o': {
        long long number = 0;
        double dnumber = 0;
        if (!parse_int64(value, &number)) {
          if (parse_double(value, &dnumber)) {
            number = static_cast<long long>(dnumber);
          } else {
            return Err<std::string>(ErrorCode::kEvalError,
                                    "format: expected integer: " + value);
          }
        }
        spec += "ll";
        spec.push_back(conv);
        out += str_format(spec.c_str(), number);
        break;
      }
      case 'f': case 'e': case 'g': case 'E': case 'G': {
        double number = 0;
        if (!parse_double(value, &number)) {
          return Err<std::string>(ErrorCode::kEvalError,
                                  "format: expected number: " + value);
        }
        spec.push_back(conv);
        out += str_format(spec.c_str(), number);
        break;
      }
      case 's': {
        spec.push_back('s');
        out += str_format(spec.c_str(), value.c_str());
        break;
      }
      default:
        return Err<std::string>(ErrorCode::kEvalError,
                                str_format("format: bad conversion %%%c", conv));
    }
  }
  return out;
}

}  // namespace

void register_builtins(Interp& interp) {
  interp.register_command("set", cmd_set);
  interp.register_command("unset", cmd_unset);
  interp.register_command("global", cmd_global);
  interp.register_command("incr", cmd_incr);
  interp.register_command("append", cmd_append);
  interp.register_command("expr", cmd_expr);
  interp.register_command("if", cmd_if);
  interp.register_command("while", cmd_while);
  interp.register_command("for", cmd_for);
  interp.register_command("foreach", cmd_foreach);
  interp.register_command("break", cmd_break);
  interp.register_command("continue", cmd_continue);
  interp.register_command("return", cmd_return);
  interp.register_command("error", cmd_error);
  interp.register_command("catch", cmd_catch);
  interp.register_command("proc", cmd_proc);
  interp.register_command("puts", cmd_puts);
  interp.register_command("list", cmd_list);
  interp.register_command("llength", cmd_llength);
  interp.register_command("lindex", cmd_lindex);
  interp.register_command("lrange", cmd_lrange);
  interp.register_command("lappend", cmd_lappend);
  interp.register_command("lsort", cmd_lsort);
  interp.register_command("lsearch", cmd_lsearch);
  interp.register_command("lreverse", cmd_lreverse);
  interp.register_command("switch", cmd_switch);
  interp.register_command("concat", cmd_concat);
  interp.register_command("join", cmd_join);
  interp.register_command("split", cmd_split);
  interp.register_command("string", cmd_string);
  interp.register_command("info", cmd_info);
  interp.register_command("eval", cmd_eval);
  interp.register_command("format", cmd_format);
}

}  // namespace harmony::rsl
