# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_db_adaptation "/root/repo/build/examples/db_adaptation")
set_tests_properties(example_db_adaptation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bag_of_tasks "/root/repo/build/examples/bag_of_tasks")
set_tests_properties(example_bag_of_tasks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_policy_console "/root/repo/build/examples/policy_console")
set_tests_properties(example_policy_console PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_socket_demo "/root/repo/build/examples/socket_demo")
set_tests_properties(example_socket_demo PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
