file(REMOVE_RECURSE
  "CMakeFiles/abl_perfmodel.dir/abl_perfmodel.cc.o"
  "CMakeFiles/abl_perfmodel.dir/abl_perfmodel.cc.o.d"
  "abl_perfmodel"
  "abl_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
