#include "cluster/pool.h"

#include <atomic>

#include "common/assert.h"
#include "common/strings.h"

namespace harmony::cluster {

namespace {
std::atomic<uint64_t> g_slots_allocated{0};
}  // namespace

uint64_t ResourcePool::slots_allocated() {
  return g_slots_allocated.load(std::memory_order_relaxed);
}

void ResourcePool::allocate_slots(size_t count) {
  reserved_memory_.assign(count, 0.0);
  processes_.assign(count, 0);
  external_load_.assign(count, 0);
  online_.assign(count, true);
  g_slots_allocated.fetch_add(count, std::memory_order_relaxed);
}

ResourcePool::ResourcePool(const Topology* topology) : topology_(topology) {
  HARMONY_ASSERT(topology != nullptr);
  allocate_slots(topology->node_count());
}

ResourcePool::ResourcePool(const Topology* topology, std::vector<NodeId> scope)
    : topology_(topology), scoped_(true), scope_(std::move(scope)) {
  HARMONY_ASSERT(topology != nullptr);
  for (NodeId node : scope_.nodes()) {
    HARMONY_ASSERT(node < topology_->node_count());
  }
  allocate_slots(scope_.size());
}

size_t ResourcePool::slot_count() const {
  return scoped_ ? scope_.size() : topology_->node_count();
}

size_t ResourcePool::slot_of(NodeId node) const {
  if (!scoped_) {
    return node < topology_->node_count() ? node : NodeScope::kNoSlot;
  }
  return scope_.slot(node);
}

std::vector<size_t> ResourcePool::extend_scope(
    const std::vector<NodeId>& nodes) {
  HARMONY_ASSERT_MSG(scoped_, "extend_scope on a full-cluster pool");
  for (NodeId node : nodes) {
    HARMONY_ASSERT(node < topology_->node_count());
  }
  const std::vector<NodeId> old_nodes = scope_.nodes();
  if (!scope_.extend(nodes)) return {};

  // Re-lay out dense state over the new slot assignment; added slots
  // start pristine (nothing reserved, no processes, online).
  std::vector<double> reserved(scope_.size(), 0.0);
  std::vector<int> processes(scope_.size(), 0);
  std::vector<int> external(scope_.size(), 0);
  std::vector<bool> online(scope_.size(), true);
  std::vector<size_t> remap(old_nodes.size(), NodeScope::kNoSlot);
  for (size_t old_slot = 0; old_slot < old_nodes.size(); ++old_slot) {
    size_t new_slot = scope_.slot(old_nodes[old_slot]);
    HARMONY_ASSERT(new_slot != NodeScope::kNoSlot);
    remap[old_slot] = new_slot;
    reserved[new_slot] = reserved_memory_[old_slot];
    processes[new_slot] = processes_[old_slot];
    external[new_slot] = external_load_[old_slot];
    online[new_slot] = online_[old_slot];
  }
  reserved_memory_ = std::move(reserved);
  processes_ = std::move(processes);
  external_load_ = std::move(external);
  online_ = std::move(online);
  g_slots_allocated.fetch_add(scope_.size() - old_nodes.size(),
                              std::memory_order_relaxed);
  return remap;
}

void ResourcePool::set_external_load(NodeId node, int tasks) {
  size_t slot = slot_of(node);
  HARMONY_ASSERT(slot != NodeScope::kNoSlot);
  HARMONY_ASSERT(tasks >= 0);
  external_load_[slot] = tasks;
}

int ResourcePool::external_load(NodeId node) const {
  size_t slot = slot_of(node);
  HARMONY_ASSERT(slot != NodeScope::kNoSlot);
  return external_load_[slot];
}

void ResourcePool::set_online(NodeId node, bool online) {
  size_t slot = slot_of(node);
  HARMONY_ASSERT(slot != NodeScope::kNoSlot);
  online_[slot] = online;
}

bool ResourcePool::is_online(NodeId node) const {
  size_t slot = slot_of(node);
  HARMONY_ASSERT(slot != NodeScope::kNoSlot);
  return online_[slot];
}

size_t ResourcePool::online_count() const {
  size_t count = 0;
  for (bool online : online_) {
    if (online) ++count;
  }
  return count;
}

double ResourcePool::total_memory(NodeId node) const {
  return topology_->node(node).memory_mb;
}

double ResourcePool::available_memory(NodeId node) const {
  size_t slot = slot_of(node);
  HARMONY_ASSERT(slot != NodeScope::kNoSlot);
  return topology_->node(node).memory_mb - reserved_memory_[slot];
}

Status ResourcePool::reserve_memory(NodeId node, double mb) {
  size_t slot = slot_of(node);
  if (slot == NodeScope::kNoSlot) {
    return Status(ErrorCode::kNotFound, "no such node");
  }
  if (mb < 0) {
    return Status(ErrorCode::kInvalidArgument, "negative reservation");
  }
  if (available_memory(node) + 1e-9 < mb) {
    return Status(ErrorCode::kCapacity,
                  str_format("node %s: %.1f MB requested, %.1f MB available",
                             topology_->node(node).hostname.c_str(), mb,
                             available_memory(node)));
  }
  reserved_memory_[slot] += mb;
  return Status::Ok();
}

Status ResourcePool::release_memory(NodeId node, double mb) {
  size_t slot = slot_of(node);
  if (slot == NodeScope::kNoSlot) {
    return Status(ErrorCode::kNotFound, "no such node");
  }
  if (mb < 0) {
    return Status(ErrorCode::kInvalidArgument, "negative release");
  }
  if (reserved_memory_[slot] + 1e-9 < mb) {
    return Status(ErrorCode::kCapacity, "releasing more memory than reserved");
  }
  reserved_memory_[slot] -= mb;
  if (reserved_memory_[slot] < 0) reserved_memory_[slot] = 0;  // absorb epsilon
  return Status::Ok();
}

int ResourcePool::process_count(NodeId node) const {
  size_t slot = slot_of(node);
  HARMONY_ASSERT(slot != NodeScope::kNoSlot);
  return processes_[slot];
}

void ResourcePool::add_process(NodeId node) {
  size_t slot = slot_of(node);
  HARMONY_ASSERT(slot != NodeScope::kNoSlot);
  ++processes_[slot];
}

Status ResourcePool::remove_process(NodeId node) {
  size_t slot = slot_of(node);
  if (slot == NodeScope::kNoSlot) {
    return Status(ErrorCode::kNotFound, "no such node");
  }
  if (processes_[slot] == 0) {
    return Status(ErrorCode::kCapacity, "no process to remove");
  }
  --processes_[slot];
  return Status::Ok();
}

int ResourcePool::total_processes() const {
  int total = 0;
  for (int count : processes_) total += count;
  return total;
}

bool ResourcePool::invariants_hold() const {
  for (size_t slot = 0; slot < reserved_memory_.size(); ++slot) {
    NodeId node = scoped_ ? scope_.node_at(slot) : static_cast<NodeId>(slot);
    if (reserved_memory_[slot] < -1e-9) return false;
    if (reserved_memory_[slot] > topology_->node(node).memory_mb + 1e-9) {
      return false;
    }
    if (processes_[slot] < 0) return false;
  }
  return true;
}

PoolOverlay::PoolOverlay(const ResourceView* base) : base_(base) {
  HARMONY_ASSERT(base != nullptr);
}

double PoolOverlay::reserved_delta(NodeId node) const {
  auto it = deltas_.find(node);
  return it == deltas_.end() ? 0.0 : it->second.memory_mb;
}

double PoolOverlay::total_memory(NodeId node) const {
  return base_->total_memory(node);
}

double PoolOverlay::available_memory(NodeId node) const {
  return base_->available_memory(node) - reserved_delta(node);
}

void PoolOverlay::apply(NodeId node, double memory_mb, int processes) {
  Delta& delta = deltas_[node];
  delta.memory_mb += memory_mb;
  delta.processes += processes;
  log_.push_back({node, memory_mb, processes});
}

Status PoolOverlay::reserve_memory(NodeId node, double mb) {
  if (node >= topology().node_count()) {
    return Status(ErrorCode::kNotFound, "no such node");
  }
  if (mb < 0) {
    return Status(ErrorCode::kInvalidArgument, "negative reservation");
  }
  if (available_memory(node) + 1e-9 < mb) {
    return Status(ErrorCode::kCapacity,
                  str_format("node %s: %.1f MB requested, %.1f MB available",
                             topology().node(node).hostname.c_str(), mb,
                             available_memory(node)));
  }
  apply(node, mb, 0);
  return Status::Ok();
}

Status PoolOverlay::release_memory(NodeId node, double mb) {
  if (node >= topology().node_count()) {
    return Status(ErrorCode::kNotFound, "no such node");
  }
  if (mb < 0) {
    return Status(ErrorCode::kInvalidArgument, "negative release");
  }
  // Effective reserved = base reserved + overlay delta; mirror the live
  // pool's over-release check and epsilon absorption.
  double reserved = (base_->total_memory(node) - base_->available_memory(node)) +
                    reserved_delta(node);
  if (reserved + 1e-9 < mb) {
    return Status(ErrorCode::kCapacity, "releasing more memory than reserved");
  }
  double applied = -mb;
  if (reserved - mb < 0) applied = -reserved;  // absorb epsilon
  apply(node, applied, 0);
  return Status::Ok();
}

int PoolOverlay::process_count(NodeId node) const {
  auto it = deltas_.find(node);
  return base_->process_count(node) +
         (it == deltas_.end() ? 0 : it->second.processes);
}

void PoolOverlay::add_process(NodeId node) {
  HARMONY_ASSERT(node < topology().node_count());
  apply(node, 0.0, 1);
}

Status PoolOverlay::remove_process(NodeId node) {
  if (node >= topology().node_count()) {
    return Status(ErrorCode::kNotFound, "no such node");
  }
  if (process_count(node) == 0) {
    return Status(ErrorCode::kCapacity, "no process to remove");
  }
  apply(node, 0.0, -1);
  return Status::Ok();
}

void PoolOverlay::rewind(Mark mark) {
  HARMONY_ASSERT(mark.log_size <= log_.size());
  while (log_.size() > mark.log_size) {
    const LogEntry& entry = log_.back();
    Delta& delta = deltas_[entry.node];
    delta.memory_mb -= entry.memory_mb;
    delta.processes -= entry.processes;
    log_.pop_back();
  }
}

void PoolOverlay::reset() {
  deltas_.clear();
  log_.clear();
}

Status MemoryReservation::reserve(NodeId node, double mb) {
  auto status = pool_->reserve_memory(node, mb);
  if (status.ok()) held_.emplace_back(node, mb);
  return status;
}

void MemoryReservation::rollback() {
  for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
    auto status = pool_->release_memory(it->first, it->second);
    HARMONY_ASSERT_MSG(status.ok(), "rollback release failed");
  }
  held_.clear();
}

}  // namespace harmony::cluster
