#include "net/framing.h"

#include <gtest/gtest.h>

#include "net/protocol.h"

namespace harmony::net {
namespace {

TEST(Framing, EncodeDecodeRoundTrip) {
  FrameBuffer buffer;
  buffer.feed(encode_frame("hello"));
  auto frame = buffer.next_frame();
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame.value().has_value());
  EXPECT_EQ(*frame.value(), "hello");
  // Buffer drained.
  auto next = buffer.next_frame();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next.value().has_value());
  EXPECT_EQ(buffer.buffered_bytes(), 0u);
}

TEST(Framing, EmptyPayload) {
  FrameBuffer buffer;
  buffer.feed(encode_frame(""));
  auto frame = buffer.next_frame();
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame.value().has_value());
  EXPECT_EQ(*frame.value(), "");
}

TEST(Framing, PartialDelivery) {
  std::string wire = encode_frame("split across reads");
  FrameBuffer buffer;
  for (size_t i = 0; i < wire.size(); ++i) {
    buffer.feed(std::string_view(&wire[i], 1));
    auto frame = buffer.next_frame();
    ASSERT_TRUE(frame.ok());
    if (i + 1 < wire.size()) {
      EXPECT_FALSE(frame.value().has_value()) << "byte " << i;
    } else {
      ASSERT_TRUE(frame.value().has_value());
      EXPECT_EQ(*frame.value(), "split across reads");
    }
  }
}

TEST(Framing, MultipleFramesInOneChunk) {
  FrameBuffer buffer;
  buffer.feed(encode_frame("one") + encode_frame("two") + encode_frame("three"));
  for (const char* expected : {"one", "two", "three"}) {
    auto frame = buffer.next_frame();
    ASSERT_TRUE(frame.ok());
    ASSERT_TRUE(frame.value().has_value());
    EXPECT_EQ(*frame.value(), expected);
  }
}

TEST(Framing, BinaryPayloadSurvives) {
  std::string payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  FrameBuffer buffer;
  buffer.feed(encode_frame(payload));
  auto frame = buffer.next_frame();
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame.value().has_value());
  EXPECT_EQ(*frame.value(), payload);
}

TEST(Framing, OversizedLengthIsProtocolError) {
  FrameBuffer buffer;
  buffer.feed(std::string("\xFF\xFF\xFF\xFF", 4));
  auto frame = buffer.next_frame();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.error().code, ErrorCode::kProtocol);
}

TEST(Protocol, MessageRoundTrip) {
  Message message{"REGISTER", {"harmonyBundle A:1 b {...}", "second arg"}};
  auto decoded = Message::decode(message.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().verb, "REGISTER");
  EXPECT_EQ(decoded.value().args, message.args);
}

TEST(Protocol, ArgsWithSpecialCharacters) {
  Message message{"UPDATE",
                  {"where.client.nodes", "sp2-00 sp2-01 {odd host}"}};
  auto decoded = Message::decode(message.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().args[1], "sp2-00 sp2-01 {odd host}");
}

TEST(Protocol, BundleScriptSurvivesRoundTrip) {
  const std::string script = R"(harmonyBundle DBclient:1 where {
  {QS {node server {hostname server} {seconds 18} {memory 20}}}
})";
  Message message{"REGISTER", {script}};
  auto decoded = Message::decode(message.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().args[0], script);
}

TEST(Protocol, HelperConstructors) {
  auto ok = Message::ok({"42"});
  EXPECT_EQ(ok.verb, "OK");
  auto err = Message::err(ErrorCode::kNoMatch, "nothing fits");
  EXPECT_EQ(err.verb, "ERR");
  EXPECT_EQ(err.args[0], "no_match");
  auto update = Message::update("where", "DS");
  EXPECT_EQ(update.verb, "UPDATE");
  EXPECT_EQ(update.args, (std::vector<std::string>{"where", "DS"}));
}

TEST(Protocol, MalformedRejected) {
  EXPECT_FALSE(Message::decode("").ok());
  EXPECT_FALSE(Message::decode("{unbalanced").ok());
}

}  // namespace
}  // namespace harmony::net
