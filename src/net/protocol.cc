#include "net/protocol.h"

#include <atomic>
#include <mutex>

#include "common/strings.h"
#include "core/domain.h"
#include "metric/telemetry.h"
#include "rsl/value.h"

namespace harmony::net {

namespace {

// Guarded snapshot plus a lock-free accepting flag: the shard read loop
// checks ha_accepting() per message, so that path must not take a lock.
std::mutex g_ha_mutex;
HaStatus& ha_status_storage() {
  static HaStatus status;
  return status;
}
std::atomic<bool> g_ha_accepting{true};

}  // namespace

std::string Message::encode() const {
  std::vector<std::string> items;
  items.reserve(1 + args.size());
  items.push_back(verb);
  items.insert(items.end(), args.begin(), args.end());
  return rsl::list_build(items);
}

Result<Message> Message::decode(const std::string& payload) {
  auto items = rsl::list_parse(payload);
  if (!items.ok()) {
    return Err<Message>(ErrorCode::kProtocol,
                        "malformed message: " + items.error().message);
  }
  if (items.value().empty()) {
    return Err<Message>(ErrorCode::kProtocol, "empty message");
  }
  Message message;
  message.verb = items.value()[0];
  message.args.assign(items.value().begin() + 1, items.value().end());
  return message;
}

Message Message::ok(std::vector<std::string> args) {
  return Message{"OK", std::move(args)};
}

Message Message::err(ErrorCode code, const std::string& message) {
  return Message{"ERR", {error_code_name(code), message}};
}

Message Message::update(const std::string& name, const std::string& value) {
  return Message{"UPDATE", {name, value}};
}

Message build_metrics_reply(const Message& request) {
  if (request.args.size() > 1) {
    return Message::err(ErrorCode::kProtocol,
                        "METRICS expects at most a format argument");
  }
  const std::string format = request.args.empty() ? "prom" : request.args[0];
  metric::telemetry_counter("net.metrics_scrapes_total").increment();
  if (format == "prom") {
    return Message::ok({metric::Telemetry::instance().render_prometheus()});
  }
  if (format == "json") {
    return Message::ok({metric::Telemetry::instance().render_json()});
  }
  if (format == "trace") {
    return Message::ok({metric::TraceBuffer::instance().render_chrome_json()});
  }
  return Message::err(ErrorCode::kProtocol,
                      "unknown METRICS format: " + format);
}

Message build_domains_reply(const Message& request) {
  if (!request.args.empty()) {
    return Message::err(ErrorCode::kProtocol, "DOMAINS expects no arguments");
  }
  bool published = false;
  auto domains = core::published_domains(&published);
  if (!published) {
    return Message::err(ErrorCode::kNotFound,
                        "no domain router in this server");
  }
  std::vector<std::string> rows;
  rows.reserve(domains.size());
  for (const auto& domain : domains) {
    rows.push_back(rsl::list_build(
        {str_format("%u", domain.id),
         str_format("%zu", domain.worker),
         rsl::list_build(domain.members),
         str_format("%llu", static_cast<unsigned long long>(domain.epochs)),
         format_number(domain.last_decision_ms),
         // Anytime-solver stats: {passes moves improvement}, all zero
         // when the solver is disabled.
         rsl::list_build(
             {str_format("%llu",
                         static_cast<unsigned long long>(domain.solver_passes)),
              str_format("%llu",
                         static_cast<unsigned long long>(domain.solver_moves)),
              format_number(domain.solver_improvement)})}));
  }
  return Message::ok({rsl::list_build(rows)});
}

void publish_ha_status(const HaStatus& status) {
  {
    std::lock_guard<std::mutex> lock(g_ha_mutex);
    ha_status_storage() = status;
  }
  g_ha_accepting.store(status.role == "primary", std::memory_order_release);
  metric::telemetry_gauge("harmony.role")
      .set(status.role == "primary" ? 2 : status.role == "candidate" ? 1 : 0);
}

HaStatus published_ha_status() {
  std::lock_guard<std::mutex> lock(g_ha_mutex);
  return ha_status_storage();
}

bool ha_accepting() {
  return g_ha_accepting.load(std::memory_order_acquire);
}

Message build_status_reply(const Message& request) {
  if (!request.args.empty()) {
    return Message::err(ErrorCode::kProtocol, "STATUS expects no arguments");
  }
  HaStatus status = published_ha_status();
  return Message::ok(
      {status.role,
       str_format("%llu", static_cast<unsigned long long>(status.term)),
       str_format("%llu", static_cast<unsigned long long>(status.generation)),
       status.primary_hint});
}

Message not_primary_reply() {
  return Message::err(ErrorCode::kNotPrimary,
                      published_ha_status().primary_hint);
}

bool is_decision_verb(const std::string& verb) {
  // Everything that reads or writes controller/session state. METRICS,
  // DOMAINS, STATUS, and the REPL subprotocol stay available on every
  // role.
  return verb == "REGISTER" || verb == "RESUME" || verb == "END" ||
         verb == "GET" || verb == "LOAD" || verb == "SET" ||
         verb == "RESIZE" || verb == "REEVALUATE";
}

}  // namespace harmony::net
