#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace harmony {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Err<int>(ErrorCode::kNotFound, "missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(r.error().message, "missing");
  EXPECT_EQ(r.error().to_string(), "not_found: missing");
}

TEST(Result, ValueOrFallsBack) {
  Result<int> ok(1);
  Result<int> err = Err<int>(ErrorCode::kTimeout, "late");
  EXPECT_EQ(ok.value_or(9), 1);
  EXPECT_EQ(err.value_or(9), 9);
}

TEST(Result, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 7);
}

TEST(Result, ArrowOperator) {
  Result<std::string> r(std::string("harmony"));
  EXPECT_EQ(r->size(), 7u);
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, CarriesError) {
  Status s(ErrorCode::kCapacity, "over-allocated");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::kCapacity);
  EXPECT_EQ(s.to_string(), "capacity: over-allocated");
}

TEST(ErrorCodeNames, AllDistinctAndStable) {
  EXPECT_STREQ(error_code_name(ErrorCode::kOk), "ok");
  EXPECT_STREQ(error_code_name(ErrorCode::kParseError), "parse_error");
  EXPECT_STREQ(error_code_name(ErrorCode::kEvalError), "eval_error");
  EXPECT_STREQ(error_code_name(ErrorCode::kNoMatch), "no_match");
  EXPECT_STREQ(error_code_name(ErrorCode::kTransport), "transport");
}

}  // namespace
}  // namespace harmony
