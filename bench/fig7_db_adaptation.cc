// Figure 7 reproduction — "Client-server database application: Harmony
// chooses query-shipping with one or two clients, but switches all
// clients to data-shipping when the third client starts."
//
// Full-scale setup: two Wisconsin relations of 100,000 x 208-byte
// tuples, indexed 10% selections joined on a unique attribute; clients
// arrive ~200 s apart on an SP-2-like switch. Output is the figure's
// series (mean query response time per client over time) plus the
// paper-vs-measured shape summary recorded in EXPERIMENTS.md.
#include <cstdio>
#include <vector>

#include "apps/db_app.h"
#include "apps/scenarios.h"
#include "common/strings.h"

namespace {

using namespace harmony;
using namespace harmony::apps;

constexpr double kArrivalGap = 200.0;
constexpr double kEnd = 900.0;

int run() {
  std::printf("=== Figure 7: online QS->DS adaptation of the client-server "
              "database ===\n");
  std::printf("cluster: 3 client nodes + 1 server (speed 2.25x), 320 Mbps "
              "switch\n");
  std::printf("relations: 2 x 100000 x 208-byte Wisconsin tuples, "
              "indexed 10%% selections, unique join\n\n");

  // As in the paper's experiment (§6), applications start in their
  // declared default configuration (query shipping) and a periodic
  // adaptation pass reconfigures them — this is what produces the
  // visible 3-client spike before the switch.
  core::ControllerConfig controller_config;
  controller_config.optimizer.initial_policy =
      core::OptimizerConfig::InitialPolicy::kFirstFeasible;
  controller_config.optimizer.reevaluate_on_arrival = false;
  SimHarness harness(controller_config);
  auto loaded = harness.controller().add_nodes_script(db_cluster_script(3));
  if (!loaded.ok() || !harness.finalize().ok()) {
    std::fprintf(stderr, "cluster setup failed\n");
    return 1;
  }
  db::DbEngine engine(100000, 42);
  // Shared server buffer pool: the source of the paper's "cooperative
  // caching effects on the server since all clients are accessing the
  // same relations" — later clients find the pages already warm.
  db::BufferPool server_pool(6000, 39);
  engine.set_server_cache(&server_pool);

  std::vector<std::unique_ptr<DbClientApp>> clients;
  for (int i = 1; i <= 3; ++i) {
    DbClientConfig config;
    config.client_host = str_format("sp2-%02d", i - 1);
    config.instance = i;
    config.seed = 7000 + i;
    clients.push_back(
        std::make_unique<DbClientApp>(harness.context(), &engine, config));
  }

  auto& sim = harness.engine();
  if (!clients[0]->start().ok()) return 1;
  sim.schedule(kArrivalGap, [&] {
    if (!clients[1]->start().ok()) std::fprintf(stderr, "client2 failed\n");
  });
  sim.schedule(2 * kArrivalGap, [&] {
    if (!clients[2]->start().ok()) std::fprintf(stderr, "client3 failed\n");
  });
  // Periodic adaptation pass every 100 s, phase-shifted off the arrival
  // times (arrivals and the evaluation timer are independent clocks; in
  // the paper the third client runs ~100 s of query shipping before the
  // reconfiguration event lands).
  std::function<void()> adapt = [&] {
    auto status = harness.controller().reevaluate();
    if (!status.ok()) std::fprintf(stderr, "reevaluate failed\n");
    if (sim.now() + 100 <= kEnd) sim.schedule(100, adapt);
  };
  sim.schedule(90, adapt);
  sim.run_until(kEnd);

  // --- the figure's series: mean response per 20 s bucket per client ---
  std::printf("time_s  client1  client2  client3   (mean query response, s; "
              "- = not active)\n");
  const double bucket = 20.0;
  for (double t0 = 0; t0 < kEnd; t0 += bucket) {
    std::printf("%6.0f", t0 + bucket);
    for (auto& client : clients) {
      const auto* series = harness.metrics().find(client->metric_name());
      if (series == nullptr) {
        std::printf("   %7s", "-");
        continue;
      }
      auto stats = series->stats_between(t0, t0 + bucket);
      if (stats.count() == 0) {
        std::printf("   %7s", "-");
      } else {
        std::printf("   %7.2f", stats.mean());
      }
    }
    std::printf("\n");
  }

  // --- reconfiguration events ---
  std::printf("\nreconfiguration events:\n");
  for (int i = 1; i <= 3; ++i) {
    const auto* placement =
        harness.metrics().find(str_format("db.client%d.placement", i));
    if (placement == nullptr) continue;
    for (const auto& sample : placement->samples()) {
      std::printf("  t=%7.2f  client%d -> %s\n", sample.time, i,
                  sample.value > 0.5 ? "data-shipping" : "query-shipping");
    }
  }

  std::printf("\nserver buffer pool: %.0f%% hit rate (%llu pages resident) — "
              "later clients start warm (cooperative caching, §6)\n",
              100.0 * server_pool.hit_rate(),
              static_cast<unsigned long long>(server_pool.resident_pages()));

  // --- shape summary vs the paper ---
  const auto* c1 = harness.metrics().find("db.client1.response");
  double phase1 = c1->stats_between(0, kArrivalGap).mean();
  double phase2 = c1->stats_between(kArrivalGap, 2 * kArrivalGap).mean();
  double phase3_peak = c1->stats_between(2 * kArrivalGap,
                                         2 * kArrivalGap + 100).mean();
  double phase3_settled = c1->stats_between(kEnd - 200, kEnd).mean();
  std::printf("\nshape summary (client 1):\n");
  std::printf("  1 client  (QS):        %6.2f s   [paper: ~10 s]\n", phase1);
  std::printf("  2 clients (QS):        %6.2f s   [paper: ~2x the 1-client "
              "time]  ratio=%.2f\n", phase2, phase2 / phase1);
  std::printf("  3 clients (peak):      %6.2f s   [paper: ~20 s spike]\n",
              phase3_peak);
  std::printf("  3 clients (after DS):  %6.2f s   [paper: back to ~2-client "
              "level]  vs 2-client=%.2fx\n",
              phase3_settled, phase3_settled / phase2);
  bool shape_holds = phase2 > 1.5 * phase1 && phase3_peak > phase2 &&
                     phase3_settled < phase3_peak &&
                     phase3_settled < 1.6 * phase2;
  std::printf("  shape holds: %s\n", shape_holds ? "YES" : "NO");
  return shape_holds ? 0 : 1;
}

}  // namespace

int main() { return run(); }
