#include "core/state.h"

#include "common/strings.h"

namespace harmony::core {

std::string OptionChoice::to_string() const {
  std::string out = option;
  for (const auto& [name, value] : variables) {
    out += str_format(" %s=%s", name.c_str(), format_number(value).c_str());
  }
  if (memory_grant != 1.0) {
    out += str_format(" mem*%s", format_number(memory_grant).c_str());
  }
  return out;
}

std::vector<OptionChoice> enumerate_choices(const rsl::OptionSpec& option) {
  std::vector<OptionChoice> out;
  out.push_back(OptionChoice{option.name, {}});
  for (const auto& variable : option.variables) {
    std::vector<OptionChoice> expanded;
    expanded.reserve(out.size() * variable.values.size());
    for (const auto& base : out) {
      for (double value : variable.values) {
        OptionChoice next = base;
        next.variables[variable.name] = value;
        expanded.push_back(std::move(next));
      }
    }
    out = std::move(expanded);
  }
  return out;
}

std::vector<OptionChoice> enumerate_choices(const rsl::BundleSpec& bundle) {
  std::vector<OptionChoice> out;
  for (const auto& option : bundle.options) {
    auto choices = enumerate_choices(option);
    out.insert(out.end(), choices.begin(), choices.end());
  }
  return out;
}

BundleState* InstanceState::find_bundle(const std::string& name) {
  for (auto& bundle : bundles) {
    if (bundle.spec.bundle == name) return &bundle;
  }
  return nullptr;
}

const BundleState* InstanceState::find_bundle(const std::string& name) const {
  for (const auto& bundle : bundles) {
    if (bundle.spec.bundle == name) return &bundle;
  }
  return nullptr;
}

std::string InstanceState::path() const {
  return application + "." + str_format("%llu",
                                        static_cast<unsigned long long>(id));
}

InstanceState* SystemState::find_instance(InstanceId id) {
  for (auto& instance : instances) {
    if (instance.id == id) return &instance;
  }
  return nullptr;
}

const InstanceState* SystemState::find_instance(InstanceId id) const {
  for (const auto& instance : instances) {
    if (instance.id == id) return &instance;
  }
  return nullptr;
}

std::map<cluster::NodeId, int> SystemState::node_load() const {
  std::map<cluster::NodeId, int> load;
  for (const auto& instance : instances) {
    for (const auto& bundle : instance.bundles) {
      if (!bundle.configured) continue;
      for (const auto& entry : bundle.allocation.entries) {
        ++load[entry.node];
      }
    }
  }
  // Load from outside Harmony's control, as reported through the
  // metric interface (§4.3).
  if (pool != nullptr) {
    for (cluster::NodeId id = 0; id < topology.node_count(); ++id) {
      int external = pool->external_load(id);
      if (external > 0) load[id] += external;
    }
  }
  return load;
}

}  // namespace harmony::core
