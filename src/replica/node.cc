#include "replica/node.h"

#include <filesystem>

#include "common/logging.h"

namespace harmony::replica {

HaNode::HaNode(HaNodeConfig config)
    : config_(std::move(config)), lease_(config_.lease_path) {
  config_.persist.dir = config_.data_dir;
  config_.standby.peers = config_.peers;
  config_.standby.node_id = config_.node_id;
}

HaNode::~HaNode() { teardown(); }

const char* HaNode::role_name(Role role) {
  switch (role) {
    case Role::kPrimary: return "primary";
    case Role::kCandidate: return "candidate";
    case Role::kStandby: return "standby";
  }
  return "unknown";
}

std::string HaNode::advertise_address() const {
  if (!config_.advertise.empty()) return config_.advertise;
  return "127.0.0.1:" + std::to_string(port_);
}

std::string HaNode::standby_hint() const {
  // Best effort: in the two-node arrangement the other peer is the
  // primary; with more peers clients walk their endpoint list anyway.
  if (config_.peers.empty()) return "";
  return config_.peers.front().host + ":" +
         std::to_string(config_.peers.front().port);
}

void HaNode::publish_status() {
  net::HaStatus status;
  status.role = role_name(role_);
  status.term = term_;
  status.generation = persistence_ ? persistence_->generation() : 0;
  status.primary_hint =
      role_ == Role::kPrimary ? advertise_address() : standby_hint();
  net::publish_ha_status(status);
}

Status HaNode::start() {
  Result<uint64_t> acquired =
      lease_.try_acquire(config_.node_id, config_.lease_ttl_ms);
  if (acquired.ok()) return start_primary(acquired.value());
  if (acquired.error().code != ErrorCode::kNotPrimary) {
    return Status(acquired.error());
  }
  return start_standby();
}

Status HaNode::start_primary(uint64_t lease_term) {
  term_ = lease_term;
  controller_ = std::make_unique<core::Controller>();
  if (config_.time_source) controller_->set_time_source(config_.time_source);
  Result<std::unique_ptr<persist::Persistence>> opened =
      persist::Persistence::open(config_.persist, *controller_);
  if (!opened.ok()) return Status(opened.error());
  persistence_ = std::move(opened.value());
  if (!persistence_->recovery().recovered && config_.bootstrap) {
    Status booted = config_.bootstrap(*controller_);
    if (!booted.ok()) return booted;
  }
  // Recovery leaves the controller's clock pinned at the last replayed
  // event; a live source must be reinstalled for new traffic.
  if (config_.time_source) controller_->set_time_source(config_.time_source);

  server_ = std::make_unique<net::HarmonyTcpServer>(
      controller_.get(), config_.port != 0 ? config_.port : port_,
      config_.server);
  server_->set_session_grace_ms(config_.session_grace_ms);
  server_->set_persistence(persistence_.get());
  source_ = std::make_unique<ReplicationSource>(persistence_.get());
  persistence_->set_replication_tap(source_.get());
  server_->set_replication_feed(source_.get());
  Result<uint16_t> port = server_->start();
  if (!port.ok()) return Status(port.error());
  port_ = port.value();

  role_ = Role::kPrimary;
  publish_status();
  start_renewal();
  HLOG_INFO("replica") << config_.node_id << " is primary at term " << term_
                       << " on port " << port_;
  return Status();
}

void HaNode::start_renewal() {
  stop_renewal();
  renew_stop_ = false;
  renew_deposed_.store(false, std::memory_order_relaxed);
  renew_thread_ = std::thread([this, term = term_] {
    std::unique_lock<std::mutex> lock(renew_mutex_);
    while (!renew_stop_) {
      if (renew_cv_.wait_for(lock,
                             std::chrono::milliseconds(config_.lease_renew_ms),
                             [this] { return renew_stop_; })) {
        return;
      }
      lock.unlock();
      Status renewed =
          lease_.renew(config_.node_id, term, config_.lease_ttl_ms);
      if (!renewed.ok()) {
        if (renewed.error().code == ErrorCode::kNotPrimary) {
          // Fenced out: a standby promoted past our term. Flag it and
          // stop touching the file; the poll thread does the demotion.
          HLOG_ERROR("replica")
              << config_.node_id << " deposed: " << renewed.to_string();
          renew_deposed_.store(true, std::memory_order_release);
          return;
        }
        HLOG_WARN("replica") << config_.node_id
                             << " lease renew error: " << renewed.to_string();
      }
      lock.lock();
    }
  });
}

void HaNode::stop_renewal() {
  if (!renew_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(renew_mutex_);
    renew_stop_ = true;
  }
  renew_cv_.notify_all();
  renew_thread_.join();
}

Status HaNode::start_standby() {
  controller_ = std::make_unique<core::Controller>();
  Result<std::unique_ptr<persist::Persistence>> opened =
      persist::Persistence::open_standby(config_.persist, *controller_);
  if (!opened.ok()) return Status(opened.error());
  persistence_ = std::move(opened.value());

  server_ = std::make_unique<net::HarmonyTcpServer>(
      controller_.get(), config_.port != 0 ? config_.port : port_,
      config_.server);
  server_->set_session_grace_ms(config_.session_grace_ms);
  server_->set_standby(true);
  Result<uint16_t> port = server_->start();
  if (!port.ok()) return Status(port.error());
  port_ = port.value();

  replicator_ =
      std::make_unique<StandbyReplicator>(config_.standby, persistence_.get());
  replicator_->start();

  role_ = Role::kStandby;
  last_lease_check_ms_ = LeaseFile::now_ms();
  publish_status();
  HLOG_INFO("replica") << config_.node_id << " is standby on port " << port_;
  return Status();
}

Status HaNode::promote_self(uint64_t lease_term) {
  term_ = lease_term;
  role_ = Role::kCandidate;
  publish_status();

  // Order matters: the replicator must be dead before promote() flips
  // the persistence mode (it is the only other writer), and the server
  // must re-park the mirrored sessions before it starts accepting, so
  // the first RESUME to race in finds its session.
  replicator_->stop();
  replicator_.reset();
  Status promoted = persistence_->promote();
  if (!promoted.ok()) {
    HLOG_ERROR("replica") << config_.node_id
                          << " promotion failed: " << promoted.to_string();
    role_ = Role::kStandby;
    publish_status();
    return promoted;
  }
  if (config_.time_source) controller_->set_time_source(config_.time_source);
  server_->set_persistence(persistence_.get());
  source_ = std::make_unique<ReplicationSource>(persistence_.get());
  persistence_->set_replication_tap(source_.get());
  server_->set_replication_feed(source_.get());
  server_->set_standby(false);

  role_ = Role::kPrimary;
  failovers_total_->increment();
  publish_status();
  start_renewal();
  HLOG_INFO("replica") << config_.node_id << " promoted to primary at term "
                       << term_ << " (generation "
                       << persistence_->generation() << ")";
  return Status();
}

Status HaNode::rebuild_standby() {
  HLOG_WARN("replica") << config_.node_id
                       << " mirror diverged; rebuilding from scratch";
  teardown();
  std::error_code ec;
  std::filesystem::remove_all(config_.data_dir, ec);
  if (ec) {
    return Status(ErrorCode::kIo,
                  "cannot wipe " + config_.data_dir + ": " + ec.message());
  }
  return start_standby();
}

void HaNode::teardown() {
  stop_renewal();
  if (replicator_) replicator_->stop();
  replicator_.reset();
  server_.reset();
  source_.reset();
  persistence_.reset();
  controller_.reset();
}

bool HaNode::poll(int timeout_ms) {
  const int64_t now = LeaseFile::now_ms();
  if (role_ == Role::kPrimary) {
    if (!deposed_ && renew_deposed_.load(std::memory_order_acquire)) {
      // The renewal thread found a higher term. Our state is stale
      // history now — refuse all decisions, forever.
      deposed_ = true;
      stop_renewal();
      server_->set_standby(true);
      role_ = Role::kStandby;
      publish_status();
    }
  } else if (!deposed_ && replicator_ != nullptr) {
    if (replicator_->needs_reset()) {
      Status rebuilt = rebuild_standby();
      if (!rebuilt.ok()) {
        HLOG_ERROR("replica") << config_.node_id << " rebuild failed: "
                              << rebuilt.to_string();
        return false;
      }
      return true;
    }
    if (now - last_lease_check_ms_ >= config_.lease_renew_ms) {
      last_lease_check_ms_ = now;
      Result<bool> expired = lease_.expired();
      if (expired.ok() && expired.value()) {
        Result<uint64_t> acquired =
            lease_.try_acquire(config_.node_id, config_.lease_ttl_ms);
        if (acquired.ok()) {
          (void)promote_self(acquired.value());
        }
        // Losing the race leaves us a standby following the winner.
      }
    }
  }
  return server_ != nullptr && server_->run_once(timeout_ms);
}

void HaNode::run(int timeout_ms) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    (void)poll(timeout_ms);
  }
}

void HaNode::stop() { stopping_.store(true, std::memory_order_relaxed); }

}  // namespace harmony::replica
