#include "replica/standby.h"

#include <poll.h>

#include <chrono>

#include "common/logging.h"
#include "common/strings.h"
#include "net/framing.h"
#include "net/tcp.h"

namespace harmony::replica {
namespace {

using Clock = std::chrono::steady_clock;

bool parse_u64(const std::string& text, uint64_t* out) {
  long long v = 0;
  if (!parse_int64(text, &v) || v < 0) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

}  // namespace

StandbyReplicator::StandbyReplicator(StandbyConfig config,
                                     persist::Persistence* persistence)
    : config_(std::move(config)), persistence_(persistence) {}

StandbyReplicator::~StandbyReplicator() { stop(); }

void StandbyReplicator::start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { run(); });
}

void StandbyReplicator::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

void StandbyReplicator::run() {
  int backoff_ms = config_.initial_backoff_ms;
  size_t cursor = 0;
  while (!stop_.load(std::memory_order_relaxed) &&
         !needs_reset_.load(std::memory_order_relaxed) &&
         !config_.peers.empty()) {
    const net::Endpoint& peer = config_.peers[cursor % config_.peers.size()];
    const Clock::time_point started = Clock::now();
    Status status = session(peer);
    connected_.store(false, std::memory_order_relaxed);
    if (stop_.load(std::memory_order_relaxed) ||
        needs_reset_.load(std::memory_order_relaxed)) {
      break;
    }
    ++cursor;
    reconnects_total_->increment();
    HLOG_INFO("replica") << "standby " << config_.node_id << " lost "
                         << peer.host << ":" << peer.port << " ("
                         << status.to_string() << "); reconnecting";
    // A session that streamed for a while earns a fresh backoff; rapid
    // failures keep doubling up to the cap.
    const auto lived = std::chrono::duration_cast<std::chrono::milliseconds>(
                           Clock::now() - started)
                           .count();
    if (lived > 1000) backoff_ms = config_.initial_backoff_ms;
    // Sleep in poll-interval slices so stop() stays responsive.
    int remaining = backoff_ms;
    while (remaining > 0 && !stop_.load(std::memory_order_relaxed)) {
      const int slice = std::min(remaining, config_.poll_interval_ms);
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      remaining -= slice;
    }
    backoff_ms = std::min(backoff_ms * 2, config_.max_backoff_ms);
  }
}

Status StandbyReplicator::send_ack(const net::Fd& fd) {
  const persist::ReplicationPosition pos = persistence_->replication_position();
  net::Message ack{
      "REPL",
      {"ACK", std::to_string(pos.generation), std::to_string(pos.offset),
       std::to_string(records_applied_.load(std::memory_order_relaxed))}};
  return net::write_all(fd, net::encode_frame(ack.encode()));
}

Status StandbyReplicator::session(const net::Endpoint& peer) {
  Result<net::Fd> dialed = net::connect_to(peer.host, peer.port);
  if (!dialed.ok()) return Status(dialed.error());
  net::Fd fd = std::move(dialed.value());

  // The stream restarts from the committed position; a torn tail
  // buffered from the previous connection will be re-sent.
  persistence_->reset_stream_tail();
  const persist::ReplicationPosition pos = persistence_->replication_position();
  // Byte offset the next BATCH frame must carry. Tracked locally (not
  // from replication_position) because chunked batches may split
  // mid-record: received bytes advance this even while the torn tail
  // sits in the stream buffer short of the committed offset.
  uint64_t stream_offset = pos.offset;
  uint64_t stream_generation = pos.generation;

  net::Message hello{"REPL",
                     {"HELLO", std::to_string(pos.generation),
                      std::to_string(pos.offset), config_.node_id}};
  Status sent = net::write_all(fd, net::encode_frame(hello.encode()));
  if (!sent.ok()) return sent;
  (void)net::set_nonblocking(fd, true);
  connected_.store(true, std::memory_order_relaxed);
  HLOG_INFO("replica") << "standby " << config_.node_id << " attached to "
                       << peer.host << ":" << peer.port << " at gen "
                       << pos.generation << " offset " << pos.offset;

  net::FrameBuffer inbound;
  bool in_resync = false;
  std::string snapshot_accum;
  uint64_t resync_generation = 0;
  Clock::time_point last_ack = Clock::now();

  while (!stop_.load(std::memory_order_relaxed)) {
    struct pollfd pfd = {fd.get(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, config_.poll_interval_ms);
    bool applied = false;
    if (ready > 0) {
      char buffer[64 * 1024];
      for (;;) {
        Result<size_t> got = net::read_some(fd, buffer, sizeof(buffer));
        if (!got.ok()) return Status(got.error());
        if (got.value() == 0) break;
        inbound.feed(std::string_view(buffer, got.value()));
        if (got.value() < sizeof(buffer)) break;
      }
      for (;;) {
        Result<std::optional<std::string>> frame = inbound.next_frame();
        if (!frame.ok()) return Status(frame.error());
        if (!frame.value().has_value()) break;
        Result<net::Message> decoded = net::Message::decode(**frame);
        if (!decoded.ok()) return Status(decoded.error());
        const net::Message& message = decoded.value();
        if (message.verb == "OK" || message.verb == "UPDATE") continue;
        if (message.verb == "ERR") {
          return Status(ErrorCode::kProtocol,
                        "primary refused replication: " + message.encode());
        }
        if (message.verb != "REPL" || message.args.empty()) {
          return Status(ErrorCode::kProtocol,
                        "unexpected frame: " + message.encode());
        }
        const std::string& op = message.args[0];
        if (op == "SNAP" && message.args.size() == 2) {
          if (!parse_u64(message.args[1], &resync_generation)) {
            return Status(ErrorCode::kProtocol, "bad SNAP generation");
          }
          in_resync = true;
          snapshot_accum.clear();
        } else if (op == "SNAPC" && message.args.size() == 2 && in_resync) {
          std::string chunk;
          if (!from_hex(message.args[1], &chunk)) {
            return Status(ErrorCode::kProtocol, "bad SNAPC hex");
          }
          snapshot_accum += chunk;
        } else if (op == "SNAPE" && message.args.size() == 2 && in_resync) {
          uint64_t end_generation = 0;
          if (!parse_u64(message.args[1], &end_generation) ||
              end_generation != resync_generation) {
            return Status(ErrorCode::kProtocol, "SNAPE generation mismatch");
          }
          Status installed =
              persistence_->install_snapshot(snapshot_accum, resync_generation);
          if (!installed.ok()) {
            if (installed.error().code == ErrorCode::kInvalidArgument) {
              // Local state diverged from the primary's history; this
              // mirror must be rebuilt from an empty directory.
              needs_reset_.store(true, std::memory_order_relaxed);
            }
            return installed;
          }
          in_resync = false;
          snapshot_accum.clear();
          stream_generation = resync_generation;
          stream_offset = 0;
          resyncs_.fetch_add(1, std::memory_order_relaxed);
          applied = true;
        } else if (op == "BATCH" && message.args.size() == 4) {
          uint64_t generation = 0;
          uint64_t offset = 0;
          std::string bytes;
          if (!parse_u64(message.args[1], &generation) ||
              !parse_u64(message.args[2], &offset) ||
              !from_hex(message.args[3], &bytes)) {
            return Status(ErrorCode::kProtocol, "bad BATCH frame");
          }
          if (generation != stream_generation || offset != stream_offset) {
            return Status(
                ErrorCode::kProtocol,
                "BATCH position mismatch: got gen " +
                    std::to_string(generation) + " offset " +
                    std::to_string(offset) + ", expected gen " +
                    std::to_string(stream_generation) + " offset " +
                    std::to_string(stream_offset));
          }
          uint64_t batch_records = 0;
          Status status = persistence_->apply_replicated(bytes, &batch_records);
          if (!status.ok()) return status;
          stream_offset += bytes.size();
          records_applied_.fetch_add(batch_records, std::memory_order_relaxed);
          bytes_applied_total_->add(bytes.size());
          applied = true;
        } else if (op == "COMPACT" && message.args.size() == 2) {
          uint64_t new_generation = 0;
          if (!parse_u64(message.args[1], &new_generation)) {
            return Status(ErrorCode::kProtocol, "bad COMPACT generation");
          }
          Status status = persistence_->apply_compaction(new_generation);
          if (!status.ok()) return status;
          stream_generation = new_generation;
          stream_offset = 0;
          applied = true;
        } else {
          return Status(ErrorCode::kProtocol,
                        "unexpected REPL frame: " + message.encode());
        }
      }
    } else if (ready < 0) {
      return Status(ErrorCode::kIo, "poll failed on replication socket");
    }

    const bool ack_due =
        applied || std::chrono::duration_cast<std::chrono::milliseconds>(
                       Clock::now() - last_ack)
                           .count() >= config_.ack_interval_ms;
    if (ack_due) {
      Status acked = send_ack(fd);
      if (!acked.ok()) return acked;
      last_ack = Clock::now();
    }
  }
  return Status();
}

}  // namespace harmony::replica
