#include "apps/bag_app.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace harmony::apps {

Result<std::string> bag_bundle_script(const BagConfig& config) {
  // Performance points follow the app's own scaling law
  // t(w) = sequential + parallel / w, evaluated at each worker count —
  // the piecewise-linear model of §3.4.
  std::string points;
  auto workers = split_whitespace(config.workers);
  if (workers.empty()) {
    return Err<std::string>(ErrorCode::kInvalidArgument,
                            "BagConfig.workers declares no worker counts");
  }
  for (const auto& w : workers) {
    double count = 0;
    if (!parse_double(w, &count) || !std::isfinite(count) || count <= 0) {
      return Err<std::string>(
          ErrorCode::kInvalidArgument,
          str_format("BagConfig.workers has invalid count \"%s\": worker "
                     "counts must be positive numbers",
                     w.c_str()));
    }
    points += str_format("{%s %g} ", w.c_str(),
                         config.sequential_ref_s +
                             config.parallel_ref_s / count);
  }
  double total = config.sequential_ref_s + config.parallel_ref_s;
  return str_format(
      "harmonyBundle Bag:%d parallelism {\n"
      "  {var\n"
      "    {variable workerNodes {%s}}\n"
      "    {node worker {seconds {%g / workerNodes}} {memory 16}\n"
      "          {replicate {workerNodes}}}\n"
      "    {communication {%g * workerNodes}}\n"
      "    {performance {%s}}\n"
      "    {granularity %g}}\n"
      "}\n",
      config.instance, config.workers.c_str(), total,
      config.task_message_mb * 2 * config.tasks_per_iteration, points.c_str(),
      config.granularity_s);
}

BagApp::BagApp(SimContext ctx, BagConfig config)
    : ctx_(ctx),
      config_(std::move(config)),
      rng_(config_.seed),
      metric_name_(str_format("bag.%d.iteration_time", config_.instance)) {
  transport_ = std::make_unique<client::InProcTransport>(ctx_.controller);
  client_ = std::make_unique<client::HarmonyClient>(transport_.get());
}

Status BagApp::start() {
  auto status = client_->startup(str_format("Bag-%d", config_.instance),
                                 config_.malleable);
  if (!status.ok()) return status;
  auto script = bag_bundle_script(config_);
  if (!script.ok()) {
    return Status(script.error().code, script.error().message);
  }
  status = client_->bundle_setup(script.value());
  if (!status.ok()) return status;
  client_->add_variable("workerNodes", "1");
  client_->add_variable("parallelism.worker.nodes", "");
  if (config_.malleable) {
    client_->set_interrupt_handler(
        [this](const std::string& name, const std::string&) {
          if (name == "parallelism.worker.nodes") on_workers_changed();
        });
  }
  status = client_->wait_for_update();
  if (!status.ok()) return status;
  status = refresh_workers();
  if (!status.ok()) return status;
  begin_iteration();
  return Status::Ok();
}

void BagApp::stop() { stop_requested_ = true; }

Status BagApp::apply_worker_list() {
  auto hosts = client_->var_list("parallelism.worker.nodes");
  std::vector<cluster::NodeId> nodes;
  for (const auto& host : hosts) {
    auto node = ctx_.node_of(host);
    if (!node.ok()) return Status(node.error().code, node.error().message);
    nodes.push_back(node.value());
  }
  if (nodes.size() != worker_nodes_.size()) {
    HLOG_INFO("bag_app") << metric_name_ << " now on " << nodes.size()
                         << " workers at t=" << ctx_.now();
    ctx_.metrics->record(str_format("bag.%d.workers", config_.instance),
                         ctx_.now(), static_cast<double>(nodes.size()));
  }
  worker_nodes_ = std::move(nodes);
  return Status::Ok();
}

Status BagApp::refresh_workers() {
  client_->poll_updates();
  auto status = apply_worker_list();
  if (!status.ok()) return status;
  if (worker_nodes_.empty()) {
    return Status(ErrorCode::kNotFound, "no workers assigned");
  }
  return Status::Ok();
}

bool BagApp::is_active(cluster::NodeId worker) const {
  return std::find(worker_nodes_.begin(), worker_nodes_.end(), worker) !=
         worker_nodes_.end();
}

void BagApp::begin_iteration() {
  if (stop_requested_ ||
      (config_.max_iterations > 0 &&
       iterations_completed_ >= config_.max_iterations)) {
    finished_ = true;
    if (client_->registered()) {
      auto status = client_->end();
      if (!status.ok()) {
        HLOG_WARN("bag_app") << "harmony_end failed: " << status.to_string();
      }
    }
    return;
  }
  // Shrink-to-empty guard: a displaced or fully-preempted bundle pushes
  // an empty assignment. A malleable app idles until the controller
  // grows it again; a polling app has no wake-up and winds down.
  if (worker_nodes_.empty()) {
    if (config_.malleable) {
      waiting_for_workers_ = true;
      return;
    }
    HLOG_WARN("bag_app") << metric_name_
                         << ": no workers assigned, stopping";
    finished_ = true;
    return;
  }
  iteration_started_ = ctx_.now();
  master_node_ = worker_nodes_[0];
  // Fill the task pool with perturbed task sizes summing to
  // parallel_ref_s on average.
  task_pool_.clear();
  double mean_task =
      config_.parallel_ref_s / static_cast<double>(config_.tasks_per_iteration);
  for (int i = 0; i < config_.tasks_per_iteration; ++i) {
    double jitter = 1.0 + config_.task_jitter * (2.0 * rng_.next_double() - 1.0);
    task_pool_.push_back(mean_task * jitter);
  }
  // Sequential master phase on the iteration's master node.
  ctx_.cpu->submit(master_node_, config_.sequential_ref_s,
                   [this] { run_parallel_phase(); });
}

void BagApp::run_parallel_phase() {
  tasks_outstanding_ = 0;
  in_parallel_phase_ = true;
  active_loops_.clear();
  // Snapshot the assignment: the loop set may change mid-phase.
  std::vector<cluster::NodeId> snapshot = worker_nodes_;
  for (cluster::NodeId worker : snapshot) start_pull_loop(worker);
}

void BagApp::start_pull_loop(cluster::NodeId worker) {
  ++active_loops_[worker];
  worker_pull(worker);
}

void BagApp::retire_pull_loop(cluster::NodeId worker) {
  auto it = active_loops_.find(worker);
  if (it != active_loops_.end() && --it->second <= 0) active_loops_.erase(it);
}

void BagApp::worker_pull(cluster::NodeId worker) {
  if (!in_parallel_phase_) return;
  // Retire: the worker was de-assigned (its in-flight task, if any,
  // already returned) or the pool ran dry.
  if (task_pool_.empty() || !is_active(worker)) {
    retire_pull_loop(worker);
    if (task_pool_.empty() && tasks_outstanding_ == 0) {
      in_parallel_phase_ = false;
      end_iteration();
    }
    return;
  }
  double work = task_pool_.back();
  task_pool_.pop_back();
  ++tasks_outstanding_;
  cluster::NodeId master = master_node_;
  // Fetch the task from the master, compute, return the result, pull
  // again.
  auto fetch = ctx_.net->transfer(master, worker, config_.task_message_mb,
                                  [this, worker, master, work] {
    ctx_.cpu->submit(worker, work, [this, worker, master] {
      auto ret = ctx_.net->transfer(worker, master, config_.task_message_mb,
                                    [this, worker] {
        --tasks_outstanding_;
        worker_pull(worker);
      });
      HARMONY_ASSERT(ret.ok());
    });
  });
  HARMONY_ASSERT(fetch.ok());
}

void BagApp::on_workers_changed() {
  auto status = apply_worker_list();
  if (!status.ok()) {
    HLOG_WARN("bag_app") << "worker update failed: " << status.to_string();
    return;
  }
  if (waiting_for_workers_ && !worker_nodes_.empty()) {
    waiting_for_workers_ = false;
    begin_iteration();
    return;
  }
  if (!in_parallel_phase_) return;
  // Join: start a pull loop for every assigned slot the node does not
  // already run. De-assigned nodes retire lazily at their next pull —
  // they finish the task in flight first.
  std::map<cluster::NodeId, int> desired;
  for (cluster::NodeId worker : worker_nodes_) ++desired[worker];
  for (const auto& [worker, want] : desired) {
    auto it = active_loops_.find(worker);
    int have = it == active_loops_.end() ? 0 : it->second;
    for (; have < want; ++have) start_pull_loop(worker);
  }
}

void BagApp::end_iteration() {
  ++iterations_completed_;
  ctx_.metrics->record(metric_name_, ctx_.now(),
                       ctx_.now() - iteration_started_);
  if (config_.malleable) {
    // Interrupt mode applied every update eagerly; just start the next
    // iteration on whatever the assignment is now.
    begin_iteration();
    return;
  }
  // Natural reconfiguration point: re-read Harmony's worker assignment.
  auto status = refresh_workers();
  if (!status.ok()) {
    HLOG_WARN("bag_app") << "worker refresh failed: " << status.to_string();
    finished_ = true;
    return;
  }
  begin_iteration();
}

}  // namespace harmony::apps
