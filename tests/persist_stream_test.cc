// Replication-stream differential tests: a standby Persistence fed the
// primary's journal tap must mirror the primary bit-for-bit — same
// decision fingerprints, byte-identical journal files — through torn
// batch boundaries, compactions, and full-resync handshakes; stale
// generations are refused and ack watermarks never regress.
#include "persist/persistence.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/controller.h"
#include "net/protocol.h"
#include "persist/journal.h"
#include "replica/source.h"
#include "test_scenarios.h"

namespace harmony::persist {
namespace {

using harmony::testing::bag_bundle;
using harmony::testing::db_client_bundle;
using harmony::testing::fingerprint;
using harmony::testing::simple_bundle;
using harmony::testing::sp2_cluster_script;

constexpr int kLastStep = 13;

// The scripted history of persist_recovery_test: every journal-able
// event kind at least once.
void apply_step(core::Controller& c, int s) {
  switch (s) {
    case 1:
      ASSERT_TRUE(c.add_nodes_script(sp2_cluster_script(6)).ok());
      ASSERT_TRUE(c.finalize_cluster().ok());
      break;
    case 2: ASSERT_TRUE(c.register_script(bag_bundle("1 2 3 4", 0)).ok()); break;
    case 3: ASSERT_TRUE(c.register_script(db_client_bundle("sp2-00", 1)).ok()); break;
    case 4: ASSERT_TRUE(c.report_external_load("sp2-01", 3).ok()); break;
    case 5: ASSERT_TRUE(c.register_script(db_client_bundle("sp2-01", 2)).ok()); break;
    case 6: ASSERT_TRUE(c.set_node_online("sp2-02", false).ok()); break;
    case 7: ASSERT_TRUE(c.reevaluate().ok()); break;
    case 8: ASSERT_TRUE(c.register_script(db_client_bundle("sp2-03", 3)).ok()); break;
    case 9: ASSERT_TRUE(c.unregister(2).ok()); break;
    case 10: ASSERT_TRUE(c.set_node_online("sp2-02", true).ok()); break;
    case 11: ASSERT_TRUE(c.report_external_load("sp2-01", 0).ok()); break;
    case 12: ASSERT_TRUE(c.register_script(simple_bundle(2)).ok()); break;
    case 13: ASSERT_TRUE(c.reevaluate().ok()); break;
  }
}

// Tap that applies the stream to a standby persistence immediately —
// the in-process equivalent of a zero-latency replication link.
class MirrorTap : public ReplicationTap {
 public:
  explicit MirrorTap(Persistence* standby) : standby_(standby) {}
  void on_journal_commit(uint64_t, uint64_t, std::string_view bytes) override {
    uint64_t applied = 0;
    Status status = standby_->apply_replicated(bytes, &applied);
    if (!status.ok() && last_error_.ok()) last_error_ = status;
    records_ += applied;
  }
  void on_compaction(uint64_t new_generation) override {
    Status status = standby_->apply_compaction(new_generation);
    if (!status.ok() && last_error_.ok()) last_error_ = status;
  }
  const Status& last_error() const { return last_error_; }
  uint64_t records() const { return records_; }

 private:
  Persistence* standby_;
  Status last_error_;
  uint64_t records_ = 0;
};

// Tap that records the stream for later (re-chunked) application.
class CaptureTap : public ReplicationTap {
 public:
  struct Item {
    bool compact = false;
    uint64_t generation = 0;
    std::string bytes;
  };
  void on_journal_commit(uint64_t generation, uint64_t,
                         std::string_view bytes) override {
    items_.push_back({false, generation, std::string(bytes)});
  }
  void on_compaction(uint64_t new_generation) override {
    items_.push_back({true, new_generation, {}});
  }
  std::vector<Item> items_;
};

bool parse_u64(const std::string& text, uint64_t* out) {
  long long value = 0;
  if (!parse_int64(text, &value) || value < 0) return false;
  *out = static_cast<uint64_t>(value);
  return true;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

class StreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "stream_" + std::to_string(::getpid()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    primary_dir_ = base_ + "_p";
    standby_dir_ = base_ + "_s";
    clean(primary_dir_);
    clean(standby_dir_);
  }
  void TearDown() override {
    clean(primary_dir_);
    clean(standby_dir_);
  }

  static void clean(const std::string& dir) {
    std::remove((dir + "/journal.wal").c_str());
    std::remove((dir + "/snapshot.hsn").c_str());
    std::remove((dir + "/snapshot.tmp").c_str());
    ::rmdir(dir.c_str());
  }

  void install_clock(core::Controller& controller) {
    controller.set_time_source([this] { return clock_; });
  }

  void drive(std::initializer_list<core::Controller*> controllers, int from,
             int to) {
    for (int s = from; s <= to; ++s) {
      clock_ += 5.0;
      for (core::Controller* c : controllers) apply_step(*c, s);
    }
  }

  // The real protocol bootstraps a fresh mirror through the handshake's
  // full resync (snapshot transfer + the journal from byte zero, see
  // ReplicationSource::handshake); the zero-latency tap tests below do
  // the same by hand before going live on the stream. Cluster setup
  // does not pass through journal epochs — it reaches standbys only in
  // the snapshot — so skipping this step would replay registrations
  // into a node-less controller.
  void bootstrap_mirror(Persistence& primary, Persistence& standby) {
    ASSERT_TRUE(primary.flush().ok());
    ASSERT_TRUE(standby
                    .install_snapshot(read_file(primary.snapshot_path()),
                                      primary.generation())
                    .ok());
    const ReplicationPosition pos = primary.replication_position();
    const std::string journal = read_file(primary.journal_path());
    ASSERT_LE(pos.offset, journal.size());
    uint64_t applied = 0;
    ASSERT_TRUE(standby
                    .apply_replicated(
                        std::string_view(journal).substr(0, pos.offset),
                        &applied)
                    .ok());
  }

  PersistConfig config(const std::string& dir, uint64_t snapshot_every = 0) {
    PersistConfig config;
    config.dir = dir;
    config.snapshot_every_epochs = snapshot_every;
    config.snapshot_min_journal_bytes = 0;
    config.fsync_every_epochs = 4;
    return config;
  }

  std::string base_, primary_dir_, standby_dir_;
  double clock_ = 0.0;
};

TEST_F(StreamTest, MirroredStandbyMatchesPrimaryBitForBit) {
  core::Controller reference;
  install_clock(reference);

  core::Controller standby_controller;
  auto standby =
      Persistence::open_standby(config(standby_dir_), standby_controller);
  ASSERT_TRUE(standby.ok()) << standby.error().to_string();
  MirrorTap tap(standby->get());

  core::Controller primary;
  install_clock(primary);
  auto persistence = Persistence::open(config(primary_dir_), primary);
  ASSERT_TRUE(persistence.ok()) << persistence.error().to_string();

  drive({&primary, &reference}, 1, 1);
  bootstrap_mirror(**persistence, **standby);
  (*persistence)->set_replication_tap(&tap);

  drive({&primary, &reference}, 2, kLastStep);
  ASSERT_TRUE((*persistence)->flush().ok());
  ASSERT_TRUE(tap.last_error().ok()) << tap.last_error().to_string();
  EXPECT_GT(tap.records(), 0u);

  EXPECT_EQ(fingerprint(standby_controller), fingerprint(reference));
  EXPECT_EQ(fingerprint(standby_controller), fingerprint(primary));
  EXPECT_EQ((*standby)->generation(), (*persistence)->generation());
  // The mirrored journal is the primary's journal, byte for byte.
  ASSERT_TRUE((*standby)->sync_replica().ok());
  EXPECT_EQ(read_file((*standby)->journal_path()),
            read_file((*persistence)->journal_path()));
}

TEST_F(StreamTest, CompactionsStreamAndTheMirrorStaysRecoverable) {
  core::Controller reference;
  install_clock(reference);

  core::Controller standby_controller;
  auto standby =
      Persistence::open_standby(config(standby_dir_), standby_controller);
  ASSERT_TRUE(standby.ok()) << standby.error().to_string();
  MirrorTap tap(standby->get());

  core::Controller primary;
  install_clock(primary);
  // Compact every 3 epochs: several mid-run generations stream COMPACT
  // markers through the tap.
  auto persistence =
      Persistence::open(config(primary_dir_, /*snapshot_every=*/3), primary);
  ASSERT_TRUE(persistence.ok()) << persistence.error().to_string();

  drive({&primary, &reference}, 1, 1);
  bootstrap_mirror(**persistence, **standby);
  (*persistence)->set_replication_tap(&tap);

  drive({&primary, &reference}, 2, kLastStep);
  ASSERT_TRUE((*persistence)->flush().ok());
  ASSERT_TRUE(tap.last_error().ok()) << tap.last_error().to_string();
  EXPECT_GT((*persistence)->generation(), 1u);
  EXPECT_EQ((*standby)->generation(), (*persistence)->generation());
  EXPECT_EQ(fingerprint(standby_controller), fingerprint(reference));

  // The standby's on-disk mirror must be a valid recovery image: a
  // fresh controller recovered from it fingerprints identically.
  standby->reset();  // closes journal fd, keeps the files
  core::Controller recovered;
  auto reopened = Persistence::open(config(standby_dir_), recovered);
  ASSERT_TRUE(reopened.ok()) << reopened.error().to_string();
  EXPECT_TRUE((*reopened)->recovery().recovered);
  EXPECT_EQ(fingerprint(recovered), fingerprint(reference));
}

TEST_F(StreamTest, TornBatchesAcrossArbitraryBoundaries) {
  core::Controller reference;
  install_clock(reference);

  core::Controller standby_controller;
  auto standby =
      Persistence::open_standby(config(standby_dir_), standby_controller);
  ASSERT_TRUE(standby.ok()) << standby.error().to_string();

  CaptureTap capture;
  core::Controller primary;
  install_clock(primary);
  auto persistence =
      Persistence::open(config(primary_dir_, /*snapshot_every=*/4), primary);
  ASSERT_TRUE(persistence.ok()) << persistence.error().to_string();

  drive({&primary, &reference}, 1, 1);
  bootstrap_mirror(**persistence, **standby);
  (*persistence)->set_replication_tap(&capture);
  drive({&primary, &reference}, 2, kLastStep);
  ASSERT_TRUE((*persistence)->flush().ok());

  // Re-deliver the captured stream in 7-byte slivers: every record is
  // torn across calls, including mid-length-prefix and mid-CRC.
  uint64_t total_records = 0;
  for (const CaptureTap::Item& item : capture.items_) {
    if (item.compact) {
      ASSERT_TRUE((*standby)->apply_compaction(item.generation).ok());
      continue;
    }
    for (size_t at = 0; at < item.bytes.size(); at += 7) {
      uint64_t applied = 0;
      const std::string_view piece =
          std::string_view(item.bytes).substr(at, 7);
      ASSERT_TRUE((*standby)->apply_replicated(piece, &applied).ok());
      total_records += applied;
    }
  }
  EXPECT_GT(total_records, 0u);
  EXPECT_EQ(fingerprint(standby_controller), fingerprint(reference));
  EXPECT_EQ((*standby)->generation(), (*persistence)->generation());
}

TEST_F(StreamTest, StaleGenerationTailIsRefused) {
  core::Controller standby_controller;
  auto standby =
      Persistence::open_standby(config(standby_dir_), standby_controller);
  ASSERT_TRUE(standby.ok()) << standby.error().to_string();

  // A journal stream from generation 3 against a generation-0 mirror is
  // a divergent history — exactly the stale pre-compaction tail case —
  // and must be refused, not applied.
  const std::string stale = encode_record("GEN 3");
  uint64_t applied = 7;
  Status status = (*standby)->apply_replicated(stale, &applied);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kCorruption);
  EXPECT_EQ(applied, 0u);

  // The matching generation is accepted.
  core::Controller standby2_controller;
  clean(standby_dir_);
  auto standby2 =
      Persistence::open_standby(config(standby_dir_), standby2_controller);
  ASSERT_TRUE(standby2.ok()) << standby2.error().to_string();
  applied = 0;
  EXPECT_TRUE(
      (*standby2)->apply_replicated(encode_record("GEN 0"), &applied).ok());
  EXPECT_EQ(applied, 1u);
}

TEST_F(StreamTest, CompactionWithBufferedTailIsRejected) {
  core::Controller standby_controller;
  auto standby =
      Persistence::open_standby(config(standby_dir_), standby_controller);
  ASSERT_TRUE(standby.ok()) << standby.error().to_string();
  // Half a record in the buffer: a COMPACT marker now would discard it.
  const std::string record = encode_record("GEN 0");
  uint64_t applied = 0;
  ASSERT_TRUE((*standby)
                  ->apply_replicated(
                      std::string_view(record).substr(0, record.size() - 2),
                      &applied)
                  .ok());
  EXPECT_EQ(applied, 0u);
  EXPECT_FALSE((*standby)->apply_compaction(1).ok());
  // Completing the record and compacting in order succeeds.
  ASSERT_TRUE((*standby)
                  ->apply_replicated(
                      std::string_view(record).substr(record.size() - 2),
                      &applied)
                  .ok());
  EXPECT_EQ(applied, 1u);
}

// Applies the REPL frames a ReplicationSource handshake produced to a
// standby persistence — what StandbyReplicator does on the wire.
void apply_frames(Persistence& standby,
                  const std::vector<net::Message>& frames) {
  std::string snapshot_accum;
  uint64_t resync_generation = 0;
  for (const net::Message& frame : frames) {
    ASSERT_EQ(frame.verb, "REPL");
    ASSERT_FALSE(frame.args.empty());
    const std::string& op = frame.args[0];
    if (op == "SNAP") {
      snapshot_accum.clear();
      ASSERT_TRUE(parse_u64(frame.args[1], &resync_generation));
    } else if (op == "SNAPC") {
      std::string chunk;
      ASSERT_TRUE(from_hex(frame.args[1], &chunk));
      snapshot_accum += chunk;
    } else if (op == "SNAPE") {
      ASSERT_TRUE(
          standby.install_snapshot(snapshot_accum, resync_generation).ok());
    } else if (op == "BATCH") {
      std::string bytes;
      ASSERT_TRUE(from_hex(frame.args[3], &bytes));
      uint64_t applied = 0;
      ASSERT_TRUE(standby.apply_replicated(bytes, &applied).ok());
    } else if (op == "COMPACT") {
      uint64_t generation = 0;
      ASSERT_TRUE(parse_u64(frame.args[1], &generation));
      ASSERT_TRUE(standby.apply_compaction(generation).ok());
    } else {
      FAIL() << "unexpected frame op " << op;
    }
  }
}

TEST_F(StreamTest, LateJoinerFullResyncsThroughHandshake) {
  core::Controller primary;
  install_clock(primary);
  auto persistence =
      Persistence::open(config(primary_dir_, /*snapshot_every=*/3), primary);
  ASSERT_TRUE(persistence.ok()) << persistence.error().to_string();
  replica::ReplicationSource source(persistence->get());
  (*persistence)->set_replication_tap(&source);

  // History runs (and compacts, repeatedly) before the standby exists.
  drive({&primary}, 1, kLastStep);
  ASSERT_TRUE((*persistence)->flush().ok());
  ASSERT_GT((*persistence)->generation(), 1u);

  // A fresh standby at (gen 0, offset 0) joins: its generation is stale
  // relative to every compaction that already ran, so the handshake
  // must discard that position and ship a full snapshot resync.
  core::Controller standby_controller;
  auto standby =
      Persistence::open_standby(config(standby_dir_), standby_controller);
  ASSERT_TRUE(standby.ok()) << standby.error().to_string();
  std::vector<net::Message> frames = source.handshake(1, "joiner", 0, 0);
  ASSERT_FALSE(frames.empty());
  EXPECT_EQ(frames.front().args[0], "SNAP");
  apply_frames(**standby, frames);

  EXPECT_EQ((*standby)->generation(), (*persistence)->generation());
  EXPECT_EQ(fingerprint(standby_controller), fingerprint(primary));

  // The attached standby now rides the live stream: more (re-appliable)
  // history flows through take_pending and keeps the mirror identical.
  clock_ += 5.0;
  apply_step(primary, 4);
  clock_ += 5.0;
  apply_step(primary, 7);
  clock_ += 5.0;
  apply_step(primary, 11);
  ASSERT_TRUE((*persistence)->flush().ok());
  apply_frames(**standby, source.take_pending(1));
  EXPECT_EQ(fingerprint(standby_controller), fingerprint(primary));
}

TEST_F(StreamTest, AckWatermarksNeverRegress) {
  core::Controller primary;
  install_clock(primary);
  auto persistence = Persistence::open(config(primary_dir_), primary);
  ASSERT_TRUE(persistence.ok()) << persistence.error().to_string();
  replica::ReplicationSource source(persistence->get());
  (*persistence)->set_replication_tap(&source);

  drive({&primary}, 1, 2);
  ASSERT_TRUE((*persistence)->flush().ok());
  const ReplicationPosition joined = (*persistence)->replication_position();
  (void)source.handshake(1, "s1", joined.generation, joined.offset);
  drive({&primary}, 3, 5);
  ASSERT_TRUE((*persistence)->flush().ok());

  const ReplicationPosition pos = (*persistence)->replication_position();
  ASSERT_GT(pos.offset, 16u);
  EXPECT_FALSE(source.acked_through(pos.generation, pos.offset));
  source.note_ack(1, pos.generation, pos.offset, 5);
  EXPECT_TRUE(source.acked_through(pos.generation, pos.offset));

  // A regressed ack (confused standby, replayed frame) is ignored: the
  // released watermark stands.
  source.note_ack(1, pos.generation, pos.offset - 16, 1);
  EXPECT_TRUE(source.acked_through(pos.generation, pos.offset));
  // Beyond the acked point is still unacked.
  EXPECT_FALSE(source.acked_through(pos.generation, pos.offset + 1));
  // With no subscribers the quorum is vacuously empty, never satisfied
  // by a stale watermark.
  source.detach(1);
  EXPECT_FALSE(source.acked_through(pos.generation, pos.offset));
  EXPECT_FALSE(source.has_subscribers());
}

}  // namespace
}  // namespace harmony::persist
