// Differential test for the partitioned decision core: drive a
// DomainRouter and a plain single-threaded Controller through the same
// event sequence and require bit-identical fingerprints after every
// event. Covers (a) fully-independent domains, (b) workloads that force
// domain merge and split mid-run, and (c) crash recovery from the
// domain-tagged journal (fork + SIGKILL, the persist_crash_test
// pattern). This is the proof obligation behind partitioning: sharding
// the optimizer by admissible-node components must never change a
// decision.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/controller.h"
#include "core/domain.h"
#include "persist/persistence.h"
#include "test_scenarios.h"

namespace harmony::core {
namespace {

using harmony::testing::bridge_bundle;
using harmony::testing::fingerprint;
using harmony::testing::grouped_cluster_script;
using harmony::testing::pinned_group_bundle;

struct DiffHarness {
  std::shared_ptr<double> clock = std::make_shared<double>(0.0);
  DomainRouter router;
  Controller reference;

  explicit DiffHarness(int workers, bool single_domain = false)
      : router(make_config(workers, single_domain)) {
    auto source = [clock = clock] { return *clock; };
    router.set_time_source(source);
    reference.set_time_source(source);
  }

  static DomainRouterConfig make_config(int workers, bool single_domain) {
    DomainRouterConfig config;
    config.workers = workers;
    config.single_domain = single_domain;
    return config;
  }

  void init(const std::string& cluster) {
    ASSERT_TRUE(router.add_nodes_script(cluster).ok());
    ASSERT_TRUE(router.finalize_cluster().ok());
    ASSERT_TRUE(reference.add_nodes_script(cluster).ok());
    ASSERT_TRUE(reference.finalize_cluster().ok());
  }

  void check(const char* what) {
    EXPECT_EQ(fingerprint(router), fingerprint(reference)) << what;
  }

  InstanceId reg(const std::string& script) {
    *clock += 10;
    auto a = router.register_script(script);
    auto b = reference.register_script(script);
    EXPECT_EQ(a.ok(), b.ok()) << "register outcome diverged";
    if (a.ok() && b.ok()) EXPECT_EQ(a.value(), b.value());
    check("register");
    return a.ok() ? a.value() : 0;
  }

  void drop(InstanceId id) {
    *clock += 10;
    auto a = router.unregister(id);
    auto b = reference.unregister(id);
    EXPECT_EQ(a.ok(), b.ok()) << "unregister outcome diverged";
    check("unregister");
  }

  void load(const std::string& host, int tasks) {
    *clock += 10;
    auto a = router.report_external_load(host, tasks);
    auto b = reference.report_external_load(host, tasks);
    EXPECT_EQ(a.ok(), b.ok()) << "load outcome diverged";
    check("external_load");
  }

  void toggle(const std::string& host, bool online) {
    *clock += 10;
    auto a = router.set_node_online(host, online);
    auto b = reference.set_node_online(host, online);
    EXPECT_EQ(a.ok(), b.ok()) << "node toggle outcome diverged";
    check("node_toggle");
  }

  void reevaluate() {
    *clock += 10;
    auto a = router.reevaluate();
    auto b = reference.reevaluate();
    EXPECT_EQ(a.ok(), b.ok()) << "reevaluate outcome diverged";
    check("reevaluate");
  }

  void steer(InstanceId id, const std::string& bundle,
             const OptionChoice& choice) {
    *clock += 10;
    auto a = router.set_option(id, bundle, choice);
    auto b = reference.set_option(id, bundle, choice);
    EXPECT_EQ(a.ok(), b.ok()) << "steer outcome diverged";
    if (!a.ok() && !b.ok()) EXPECT_EQ(a.error().code, b.error().code);
    check("steer");
  }
};

TEST(DomainDifferentialTest, IndependentDomainsMatchReference) {
  const std::vector<std::string> groups = {"ga", "gb", "gc", "gd"};
  DiffHarness h(/*workers=*/3);
  h.init(grouped_cluster_script(groups, 3));
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_TRUE(h.router.partitioned());

  std::vector<InstanceId> ids;
  int tag = 1;
  for (const auto& group : groups) {
    ids.push_back(h.reg(pinned_group_bundle(group, tag++)));
    ids.push_back(h.reg(pinned_group_bundle(group, tag++)));
  }
  EXPECT_EQ(h.router.domain_count(), groups.size());

  h.load("ga-01", 2);
  h.load("gc-00", 3);
  h.toggle("gb-02", false);
  h.reevaluate();
  h.load("ga-01", 0);
  h.toggle("gb-02", true);
  h.reevaluate();

  // Steering an instance routes to its owning domain; both sides must
  // agree on the outcome either way.
  OptionChoice narrow;
  narrow.option = "narrow";
  h.steer(ids[0], "Appga:1", narrow);

  // Departures retire one group's domain entirely.
  h.drop(ids[0]);
  h.drop(ids[1]);
  EXPECT_EQ(h.router.domain_count(), groups.size() - 1);
  h.reevaluate();
}

TEST(DomainDifferentialTest, SingleDomainModeIsTheReferencePath) {
  DiffHarness h(/*workers=*/2, /*single_domain=*/true);
  h.init(grouped_cluster_script({"ga", "gb"}, 3));
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_FALSE(h.router.partitioned());
  h.reg(pinned_group_bundle("ga", 1));
  h.reg(pinned_group_bundle("gb", 2));
  // Everything shares one domain regardless of footprint.
  EXPECT_EQ(h.router.domain_count(), 1u);
  h.load("gb-00", 2);
  h.reevaluate();
}

TEST(DomainDifferentialTest, NonSeparableObjectiveCollapsesToOneDomain) {
  DiffHarness h(/*workers=*/2);
  // Makespan couples every instance's predicted time; the router must
  // refuse to partition.
  DomainRouterConfig config;
  config.controller.objective = "makespan";
  DomainRouter router(config);
  EXPECT_FALSE(router.partitioned());
}

TEST(DomainDifferentialTest, MergeAndSplitMidRun) {
  DiffHarness h(/*workers=*/2);
  h.init(grouped_cluster_script({"ga", "gb"}, 3));
  if (::testing::Test::HasFatalFailure()) return;

  const InstanceId a = h.reg(pinned_group_bundle("ga", 1));
  const InstanceId b = h.reg(pinned_group_bundle("gb", 2));
  EXPECT_EQ(h.router.domain_count(), 2u);

  // The bridge spans both groups: its registration must merge the two
  // domains, and every pre-merge decision must carry over bit-for-bit.
  const InstanceId bridge = h.reg(bridge_bundle("ga", "gb", 3));
  EXPECT_EQ(h.router.domain_count(), 1u);

  h.load("ga-01", 2);
  h.toggle("gb-01", false);
  h.reevaluate();

  // The bridge departs: the remaining instances no longer share nodes,
  // so the domain splits back into two.
  h.drop(bridge);
  EXPECT_EQ(h.router.domain_count(), 2u);

  h.load("gb-02", 1);
  h.toggle("gb-01", true);
  h.reevaluate();

  // Merge again after a split — fresh domain ids must route correctly.
  const InstanceId bridge2 = h.reg(bridge_bundle("ga", "gb", 4));
  EXPECT_EQ(h.router.domain_count(), 1u);
  h.drop(bridge2);
  EXPECT_EQ(h.router.domain_count(), 2u);

  h.drop(a);
  EXPECT_EQ(h.router.domain_count(), 1u);
  h.drop(b);
  EXPECT_EQ(h.router.domain_count(), 0u);
}

TEST(DomainDifferentialTest, UnownedNodeEventsReachLaterDomains) {
  DiffHarness h(/*workers=*/2);
  h.init(grouped_cluster_script({"ga", "gz"}, 3));
  if (::testing::Test::HasFatalFailure()) return;

  h.reg(pinned_group_bundle("ga", 1));
  // gz has no instances: these land in the router's master node state
  // (and its domain-0 journal stream), not in any worker.
  h.load("gz-00", 3);
  h.toggle("gz-01", false);
  h.reevaluate();

  // The first gz registration builds a fresh domain, which must see the
  // load and the offline node or its decisions diverge immediately.
  h.reg(pinned_group_bundle("gz", 2));
  EXPECT_EQ(h.router.domain_count(), 2u);
  h.reevaluate();
  h.load("gz-00", 0);
  h.toggle("gz-01", true);
  h.reevaluate();
}

// --- crash recovery from the domain-tagged journal --------------------------

bool write_all(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

bool read_all(int fd, void* data, size_t size) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    ssize_t n = ::read(fd, p, size);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

constexpr int kCrashSteps = 9;

const std::vector<std::string>& crash_groups() {
  static const std::vector<std::string> groups = {"ga", "gb", "gz"};
  return groups;
}

// One step of the partitioned history: registrations across groups, a
// merge, a split, unowned-node events, steady-state re-evaluation.
void child_apply_step(DomainRouter& r, int s) {
  switch (s) {
    case 1: if (!r.register_script(pinned_group_bundle("ga", 1)).ok()) std::abort(); break;
    case 2: if (!r.register_script(pinned_group_bundle("gb", 2)).ok()) std::abort(); break;
    case 3: if (!r.report_external_load("ga-01", 2).ok()) std::abort(); break;
    case 4: if (!r.register_script(bridge_bundle("ga", "gb", 3)).ok()) std::abort(); break;
    case 5: if (!r.set_node_online("gb-01", false).ok()) std::abort(); break;
    case 6: if (!r.unregister(3).ok()) std::abort(); break;
    case 7: if (!r.report_external_load("gz-00", 1).ok()) std::abort(); break;
    case 8: if (!r.register_script(pinned_group_bundle("gz", 4)).ok()) std::abort(); break;
    case 9: if (!r.reevaluate().ok()) std::abort(); break;
  }
}

// Child: a persisted DomainRouter reports its fingerprint after every
// durable step; the parent SIGKILLs it mid-protocol and recovers.
[[noreturn]] void run_child(const std::string& dir, int out_fd, int ack_fd) {
  const std::string cluster = grouped_cluster_script(crash_groups(), 3);
  double clock = 0;
  // The scratch controller carries the cluster for the baseline
  // snapshot; it never hosts an instance.
  Controller scratch;
  if (!scratch.add_nodes_script(cluster).ok()) std::abort();
  if (!scratch.finalize_cluster().ok()) std::abort();
  persist::PersistConfig config;
  config.dir = dir;
  config.snapshot_every_epochs = 0;  // baseline only: partitioned mode
  config.fsync_every_epochs = 0;     // synchronous: every epoch durable
  auto opened = persist::Persistence::open(config, scratch);
  if (!opened.ok()) std::abort();
  auto persistence = std::move(opened).value();

  DomainRouterConfig router_config;
  router_config.workers = 2;
  DomainRouter router(router_config);
  router.set_time_source([&clock] { return clock; });
  if (!router.add_nodes_script(cluster).ok()) std::abort();
  if (!router.finalize_cluster().ok()) std::abort();
  router.attach_journal(persistence.get());

  for (int s = 1; s <= kCrashSteps; ++s) {
    clock += 5.0;
    child_apply_step(router, s);
    if (!persistence->flush().ok()) std::abort();
    const std::string print = fingerprint(router);
    uint32_t length = static_cast<uint32_t>(print.size());
    if (!write_all(out_fd, &length, sizeof(length))) std::abort();
    if (!write_all(out_fd, print.data(), print.size())) std::abort();
    char ack = 0;
    if (!read_all(ack_fd, &ack, 1)) std::abort();
  }
  for (;;) pause();
}

class DomainCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "domain_crash_" +
           std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    clean();
  }
  void TearDown() override { clean(); }

  void clean() {
    std::remove((dir_ + "/journal.wal").c_str());
    std::remove((dir_ + "/snapshot.hsn").c_str());
    std::remove((dir_ + "/snapshot.tmp").c_str());
    ::rmdir(dir_.c_str());
  }

  std::string run_until_kill(int kill_after) {
    int to_parent[2];
    int to_child[2];
    EXPECT_EQ(::pipe(to_parent), 0);
    EXPECT_EQ(::pipe(to_child), 0);
    pid_t pid = ::fork();
    if (pid == 0) {
      ::close(to_parent[0]);
      ::close(to_child[1]);
      run_child(dir_, to_parent[1], to_child[0]);
    }
    ::close(to_parent[1]);
    ::close(to_child[0]);
    std::string last;
    for (int s = 1; s <= kill_after; ++s) {
      uint32_t length = 0;
      EXPECT_TRUE(read_all(to_parent[0], &length, sizeof(length)));
      std::string print(length, '\0');
      EXPECT_TRUE(read_all(to_parent[0], print.data(), length));
      last = print;
      // The final fingerprint is not acked: the child is parked in
      // read(2) with nothing past the reported state journaled when
      // the SIGKILL lands.
      if (s < kill_after) {
        char ack = 'k';
        EXPECT_TRUE(write_all(to_child[1], &ack, 1));
      }
    }
    EXPECT_EQ(::kill(pid, SIGKILL), 0);
    int wstatus = 0;
    EXPECT_EQ(::waitpid(pid, &wstatus, 0), pid);
    EXPECT_TRUE(WIFSIGNALED(wstatus));
    ::close(to_parent[0]);
    ::close(to_child[1]);
    return last;
  }

  // Recovery replays the merged, domain-tagged journal into one plain
  // controller: decision identity makes that equivalent to re-running
  // every domain, and the per-domain sequence check proves no worker's
  // stream lost or reordered an event.
  std::string recover_fingerprint() {
    Controller recovered;
    persist::PersistConfig config;
    config.dir = dir_;
    config.snapshot_every_epochs = 0;
    auto persistence = persist::Persistence::open(config, recovered);
    EXPECT_TRUE(persistence.ok()) << persistence.error().to_string();
    if (!persistence.ok()) return "";
    EXPECT_TRUE((*persistence)->recovery().recovered);
    return fingerprint(recovered);
  }

  std::string dir_;
};

TEST_F(DomainCrashTest, SigkillAfterEveryStepRecoversTheAckedState) {
  for (int kill_after = 1; kill_after <= kCrashSteps; ++kill_after) {
    SCOPED_TRACE("kill_after=" + std::to_string(kill_after));
    clean();
    const std::string acked = run_until_kill(kill_after);
    ASSERT_FALSE(acked.empty());
    EXPECT_EQ(recover_fingerprint(), acked);
  }
}

}  // namespace
}  // namespace harmony::core
