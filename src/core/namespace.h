// Hierarchical namespace shared between the adaptation controller and
// applications (paper §3.2). Paths are dotted names rooted at
// application instances, e.g. "DBclient.66.where.DS.client.memory".
// Leaves hold numeric values (resource amounts, variable settings) or
// strings (hostnames, chosen option names).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "rsl/expr.h"

namespace harmony::core {

class Namespace {
 public:
  Status set(const std::string& path, double value);
  Status set_string(const std::string& path, const std::string& value);

  Result<double> get(const std::string& path) const;
  Result<std::string> get_string(const std::string& path) const;
  bool has(const std::string& path) const;

  // Removes a leaf or a whole subtree ("DBclient.66" drops everything
  // the instance published). Removing an absent path is a no-op.
  void erase(const std::string& path);

  // Direct children of a prefix ("" lists the roots), sorted.
  std::vector<std::string> list(const std::string& prefix) const;
  // All leaf paths under a prefix, sorted (diagnostics / tests).
  std::vector<std::string> leaves(const std::string& prefix = "") const;

  size_t size() const { return numbers_.size() + strings_.size(); }

  // Read-through parent consulted by get / get_string / has when a
  // name is absent locally. Lets a domain controller resolve the
  // shared, immutable cluster names (cluster.<host>.speed, ...)
  // published once by the router's template controller instead of
  // copying O(cluster) entries into every domain. Writes, erase and
  // enumeration (list / leaves / size) stay local-only by design: a
  // domain never publishes into — or lists — the shared tier. The
  // fallback must outlive this namespace and never change (enforced by
  // the router: the template namespace is frozen at finalize).
  void set_fallback(const Namespace* fallback) { fallback_ = fallback; }
  const Namespace* fallback() const { return fallback_; }

  // Name resolver for RSL expressions, optionally rebasing relative
  // names: with base "DBclient.66.where.DS", the expression name
  // "client.memory" resolves to "DBclient.66.where.DS.client.memory",
  // falling back to the absolute path.
  rsl::ExprContext expr_context(const std::string& base = "") const;

 private:
  static bool valid_path(const std::string& path);
  std::map<std::string, double> numbers_;
  std::map<std::string, std::string> strings_;
  const Namespace* fallback_ = nullptr;
};

}  // namespace harmony::core
