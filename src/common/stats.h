// Small statistics helpers used by the metric interface and the
// experiment harnesses.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace harmony {

// Streaming mean / variance (Welford).
class RunningStats {
 public:
  void add(double x);
  void reset();

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  // sample variance; 0 when count < 2
  double stddev() const;
  // Empty-window identities (+inf / -inf), not 0.0: min(empty, x) must
  // be x, and a spurious 0.0 min/max poisons merged bench aggregates.
  double min() const {
    return count_ ? min_ : std::numeric_limits<double>::infinity();
  }
  double max() const {
    return count_ ? max_ : -std::numeric_limits<double>::infinity();
  }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Percentile over a sample set (nearest-rank on a sorted copy).
// q in [0, 1]; returns 0 on an empty sample.
double percentile(std::vector<double> samples, double q);

// Linear interpolation over (x, y) breakpoints, clamped at both ends.
// Breakpoints must be sorted by x. This is the paper's "piecewise linear
// curve based on the supplied values" used by the `performance` tag.
double piecewise_linear(const std::vector<std::pair<double, double>>& points,
                        double x);

}  // namespace harmony
