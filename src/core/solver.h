// Anytime plan-improvement solver (ROADMAP item 1): a bounded local
// search that starts from the greedy pass's plan and tries to improve
// the joint (option, memory-grant, placement) assignment under a
// wall-clock budget.
//
// Shape of the problem: each configured bundle is one "slot" of a
// multiple-choice knapsack — exactly one (option, grant) candidate per
// slot, candidates priced by the system objective with frictional
// switching cost charged exactly as Optimizer::plan_objective does.
// Placements come from multi-capacity vector bin-packing heuristics
// (cluster::MatchPolicy::kVectorBestFit / kVectorWorstFit) alongside
// the optimizer's own policy.
//
// Anytime contract:
//   - The greedy plan is always the starting point; the solver only
//     ever *replaces* it with a strictly better plan, so the worst case
//     degrades gracefully to today's greedy decision.
//   - All exploration happens on a PoolOverlay copy-on-write view;
//     live state is mutated only when the final best plan commits.
//   - budget_ms = 0 disables the solver entirely: decisions are
//     bit-identical to greedy by construction.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "cluster/matcher.h"
#include "common/result.h"
#include "core/state.h"

namespace harmony::core {

class Optimizer;
struct Decision;

struct SolverConfig {
  // Wall-clock budget per improvement pass, in milliseconds. 0 (the
  // default) disables the solver: the optimizer commits the pure greedy
  // plan, bit-identical to a build without a solver.
  double budget_ms = 0;
  // Hard cap on local-search rounds; 0 = unlimited (budget-bound only).
  // Tests use a large budget plus max_rounds for wall-clock-free
  // determinism.
  int max_rounds = 0;
  // Placement policies tried for each move, in order, after the
  // optimizer's own match policy. Deduplicated at use.
  std::vector<cluster::MatchPolicy> placement_policies = {
      cluster::MatchPolicy::kVectorBestFit,
      cluster::MatchPolicy::kVectorWorstFit,
  };
  // Dimension weights for the vector bin-packing policies.
  cluster::DimensionNorm norm;
  // Pair-swap trials attempted per round.
  int swap_pairs_per_round = 64;
  // Candidate (option, grant) choices considered per slot in a swap
  // (the current choice plus the first swap_choices - 1 others).
  int swap_choices = 3;
  // Seed for the deterministic move-ordering RNG.
  uint64_t seed = 0x5eed5eedULL;

  bool enabled() const { return budget_ms > 0; }
};

struct SolverStats {
  uint64_t passes = 0;            // improve() invocations
  uint64_t improved_passes = 0;   // passes that beat the greedy plan
  uint64_t rounds = 0;            // local-search rounds across passes
  uint64_t candidates = 0;        // candidate plans scored
  uint64_t moves_accepted = 0;    // accepted improving moves
  uint64_t budget_exhausted = 0;  // passes stopped by the deadline
  double last_improvement = 0;    // greedy_objective - best_objective
  double total_improvement = 0;
  double last_budget_used_ms = 0;
};

// One solver instance per Optimizer (hence per DomainRouter worker —
// each domain's Controller owns a private Optimizer). Not thread-safe;
// serialized by the owning worker like the optimizer itself.
class Solver {
 public:
  Solver(Optimizer& optimizer, const SolverConfig& config);
  ~Solver();

  // Pre-pass snapshot of one bundle's configuration, used to price
  // friction against the state *before* this epoch's greedy pass (so
  // reverting a greedy switch costs nothing extra, and keeping it costs
  // exactly what greedy already paid).
  struct Previous {
    bool configured = false;
    OptionChoice choice;
  };

  // Improves the committed plan in `state` in place. `previous` is
  // indexed [instance index][bundle index] as of entry into the greedy
  // pass. Updates `decisions` for every bundle the improved plan
  // changes. Never worsens the objective; on any internal failure the
  // greedy plan stands.
  Status improve(SystemState& state, double now,
                 std::chrono::steady_clock::time_point deadline,
                 const std::vector<std::vector<Previous>>& previous,
                 std::vector<Decision>& decisions);

  const SolverStats& stats() const { return stats_; }
  const SolverConfig& config() const { return config_; }

 private:
  Optimizer& opt_;
  SolverConfig config_;
  SolverStats stats_;
};

}  // namespace harmony::core
