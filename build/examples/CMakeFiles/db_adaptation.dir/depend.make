# Empty dependencies file for db_adaptation.
# This may be replaced when dependencies are built.
