// Minimal leveled logger. Experiments run on a virtual clock, so log
// lines carry an optional simulated timestamp set by the caller via
// set_sim_time_source().
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace harmony {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  // When set, every line is prefixed with "[t=<seconds>]".
  void set_sim_time_source(std::function<double()> source) {
    sim_time_ = std::move(source);
  }
  void clear_sim_time_source() { sim_time_ = nullptr; }

  void log(LogLevel level, const std::string& tag, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::function<double()> sim_time_;
};

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* tag) : level_(level), tag_(tag) {}
  ~LogLine() { Logger::instance().log(level_, tag_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace harmony

#define HLOG(severity, tag)                                          \
  if (static_cast<int>(::harmony::LogLevel::severity) <              \
      static_cast<int>(::harmony::Logger::instance().level()))       \
    ;                                                                \
  else                                                               \
    ::harmony::detail::LogLine(::harmony::LogLevel::severity, tag)

#define HLOG_DEBUG(tag) HLOG(kDebug, tag)
#define HLOG_INFO(tag) HLOG(kInfo, tag)
#define HLOG_WARN(tag) HLOG(kWarn, tag)
#define HLOG_ERROR(tag) HLOG(kError, tag)
