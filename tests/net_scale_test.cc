// Scale and backpressure coverage for the sharded epoll front end: a
// few hundred concurrent clients must every one observe a consistent
// UPDATE sequence while the controller is steered and load reports
// arrive, and a consumer that stops reading must be cut at the
// high-water mark — parked when it is resumable (v2), departed when it
// is not (v1) — without disturbing healthy connections.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "core/controller.h"
#include "net/framing.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/tcp.h"
#include "net/tcp_transport.h"

namespace harmony::net {
namespace {

constexpr int kGroupNodes = 16;

// Group nodes carry the swarm; scratch nodes exist only to absorb LOAD
// reports (no instance ever places on them, so the incremental
// optimizer skips everyone on those passes).
std::string swarm_cluster_script() {
  std::string script;
  for (int i = 0; i < kGroupNodes; ++i) {
    script += str_format(
        "harmonyNode grp-%02d {speed 1.0} {memory 256} {os linux}\n", i);
  }
  script += "harmonyNode scratch-0 {speed 1.0} {memory 256} {os linux}\n";
  script += "harmonyNode scratch-1 {speed 1.0} {memory 256} {os linux}\n";
  return script;
}

// Two-option bundle with constant performance models, pinned to one
// group node. First-feasible initial policy configures it as `fast`;
// steering flips it between the two.
std::string swarm_bundle(int i) {
  return str_format(
      "harmonyBundle Swarm:%d place {\n"
      "  {fast {node work {hostname grp-%02d} {seconds 0.5} {memory 4}}\n"
      "        {performance expr {1.0}}}\n"
      "  {slow {node work {hostname grp-%02d} {seconds 0.5} {memory 4}}\n"
      "        {performance expr {2.0}}}\n"
      "}\n",
      i, i % kGroupNodes, i % kGroupNodes);
}

class ScaleTest : public ::testing::Test {
 protected:
  void start_server(ServerConfig config) {
    core::ControllerConfig controller_config;
    controller_config.optimizer.initial_policy =
        core::OptimizerConfig::InitialPolicy::kFirstFeasible;
    controller_config.optimizer.reevaluate_on_arrival = false;
    controller_config.record_objective_metric = false;
    controller_ = std::make_unique<core::Controller>(controller_config);
    ASSERT_TRUE(controller_->add_nodes_script(swarm_cluster_script()).ok());
    ASSERT_TRUE(controller_->finalize_cluster().ok());
    server_ = std::make_unique<HarmonyTcpServer>(controller_.get(),
                                                 /*port=*/0, config);
    auto bound = server_->start();
    ASSERT_TRUE(bound.ok()) << bound.error().to_string();
    port_ = bound.value();
    server_thread_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    if (server_thread_.joinable()) {
      server_->stop();
      server_thread_.join();
    }
  }

  // Spins until `predicate` holds (the server applies overflow cuts and
  // parking asynchronously).
  template <typename Predicate>
  bool wait_for(Predicate predicate, int timeout_ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (predicate()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return predicate();
  }

  std::unique_ptr<core::Controller> controller_;
  std::unique_ptr<HarmonyTcpServer> server_;
  std::thread server_thread_;
  uint16_t port_ = 0;
};

// A protocol client that deliberately never reads: registers, then sits
// on the socket with a tiny receive buffer so pushed UPDATE frames pile
// up server-side until the high-water mark cuts it.
struct StuckClient {
  Fd fd;
  FrameBuffer inbound;

  Status connect_and_shrink(uint16_t port) {
    auto connected = connect_to("localhost", port);
    if (!connected.ok()) {
      return Status(connected.error().code, connected.error().message);
    }
    fd = std::move(connected).value();
    int rcvbuf = 1024;
    (void)::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                       sizeof(rcvbuf));
    return Status::Ok();
  }

  // Blocking request/response; skips pushed UPDATE frames.
  Result<Message> call(const Message& request) {
    auto sent = write_all(fd, encode_frame(request.encode()));
    if (!sent.ok()) return Err<Message>(sent.error().code, sent.error().message);
    while (true) {
      auto frame = inbound.next_frame();
      if (!frame.ok()) {
        return Err<Message>(frame.error().code, frame.error().message);
      }
      if (frame.value().has_value()) {
        auto message = Message::decode(*frame.value());
        if (!message.ok()) return message;
        if (message.value().verb == "UPDATE") continue;
        return message;
      }
      char buffer[4096];
      auto n = read_some(fd, buffer, sizeof(buffer));
      if (!n.ok()) return Err<Message>(n.error().code, n.error().message);
      if (n.value() == 0) continue;
      inbound.feed(std::string_view(buffer, n.value()));
    }
  }

  // Drains whatever the server managed to push before cutting the
  // connection; true when the drain ended in EOF/reset.
  bool drain_to_eof() {
    char buffer[4096];
    while (true) {
      auto n = read_some(fd, buffer, sizeof(buffer));
      if (!n.ok()) return n.error().code == ErrorCode::kClosed;
      if (n.value() == 0) continue;  // blocking fd: 0 only under EAGAIN
    }
  }
};

TEST_F(ScaleTest, SwarmSeesConsistentUpdateSequencesUnderSteering) {
  ServerConfig config;
  config.io_shards = 2;
  start_server(config);

  constexpr int kClients = 200;
  constexpr int kRounds = 6;
  struct SwarmClient {
    std::unique_ptr<TcpTransport> transport;
    core::InstanceId id = 0;
    std::vector<std::string> options;  // every `place` UPDATE, in order
  };
  std::vector<SwarmClient> swarm(kClients);
  for (int i = 0; i < kClients; ++i) {
    auto& client = swarm[i];
    client.transport = std::make_unique<TcpTransport>();
    ASSERT_TRUE(client.transport->connect("localhost", port_).ok());
    auto id = client.transport->register_app(swarm_bundle(i));
    ASSERT_TRUE(id.ok()) << id.error().to_string();
    client.id = id.value();
    ASSERT_TRUE(client.transport
                    ->subscribe(client.id,
                                [&client](const std::string& name,
                                          const std::string& value) {
                                  if (name == "place") {
                                    client.options.push_back(value);
                                  }
                                })
                    .ok());
    // Exactly one configuration push: the subscription snapshot
    // supersedes (and drops) the arrival decision queued before it.
    ASSERT_EQ(client.options.size(), 1u) << "client " << i;
    EXPECT_EQ(client.options[0], "fast") << "client " << i;
  }
  EXPECT_EQ(controller_->live_instances(), static_cast<size_t>(kClients));
  EXPECT_TRUE(wait_for([this] {
    return server_->connection_count() == static_cast<size_t>(kClients);
  }));

  TcpTransport driver;
  ASSERT_TRUE(driver.connect("localhost", port_).ok());
  // External load on nodes nobody placed on: the re-evaluation passes
  // these trigger must leave every configuration alone (the incremental
  // planner skips bundles whose inputs did not change).
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(driver.report_load("scratch-0", i + 1).ok());
    ASSERT_TRUE(driver.report_load("scratch-1", i + 1).ok());
  }

  // Alternating steering rounds: every client must observe exactly one
  // `place` update per round, in round order.
  for (int round = 0; round < kRounds; ++round) {
    const std::string option = (round % 2 == 0) ? "slow" : "fast";
    for (auto& client : swarm) {
      auto set = driver.set_option(client.id, "place", option);
      ASSERT_TRUE(set.ok()) << set.error().to_string();
    }
  }

  const std::string final_option = (kRounds % 2 == 1) ? "slow" : "fast";
  for (int i = 0; i < kClients; ++i) {
    auto& client = swarm[i];
    ASSERT_TRUE(wait_for([&client] {
      if (!client.transport->pump().ok()) return true;
      return client.options.size() >= 1u + kRounds;
    })) << "client " << i << " saw " << client.options.size() << " updates";
    ASSERT_EQ(client.options.size(), 1u + kRounds) << "client " << i;
    for (int round = 0; round < kRounds; ++round) {
      EXPECT_EQ(client.options[1 + round],
                (round % 2 == 0) ? "slow" : "fast")
          << "client " << i << " round " << round;
    }
    auto option = client.transport->get_variable(client.id, "place.option");
    ASSERT_TRUE(option.ok());
    EXPECT_EQ(option.value(), final_option);
  }
}

TEST_F(ScaleTest, SlowV1ConsumerIsDroppedAndDeparted) {
  ServerConfig config;
  config.io_shards = 2;
  config.outbound_high_water = 64u << 10;
  config.sndbuf_bytes = 4096;
  start_server(config);

  StuckClient stuck;
  ASSERT_TRUE(stuck.connect_and_shrink(port_).ok());
  auto reply = stuck.call(Message{"REGISTER", {swarm_bundle(0)}});
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  ASSERT_EQ(reply.value().verb, "OK");
  ASSERT_EQ(reply.value().args.size(), 1u);  // v1: no session token
  unsigned long long stuck_id = 0;
  ASSERT_EQ(std::sscanf(reply.value().args[0].c_str(), "%llu", &stuck_id), 1);

  TcpTransport observer;
  ASSERT_TRUE(observer.connect("localhost", port_).ok());
  auto observer_id = observer.register_app(swarm_bundle(1));
  ASSERT_TRUE(observer_id.ok());
  int observer_updates = 0;
  ASSERT_TRUE(observer
                  .subscribe(observer_id.value(),
                             [&observer_updates](const std::string& name,
                                                 const std::string&) {
                               if (name == "place") ++observer_updates;
                             })
                  .ok());

  // Flood the non-reading client with reconfigurations until its
  // outbound backlog crosses the high-water mark. The cut surfaces as a
  // failing SET: a v1 departure unregisters the instance.
  TcpTransport driver;
  ASSERT_TRUE(driver.connect("localhost", port_).ok());
  bool departed = false;
  for (int i = 0; i < 5000; ++i) {
    auto set = driver.set_option(static_cast<core::InstanceId>(stuck_id),
                                 "place", (i % 2 == 0) ? "slow" : "fast");
    if (!set.ok()) {
      departed = true;
      break;
    }
  }
  ASSERT_TRUE(departed) << "slow consumer was never cut";
  EXPECT_EQ(controller_->live_instances(), 1u);
  EXPECT_EQ(server_->parked_session_count(), 0u);
  EXPECT_TRUE(stuck.drain_to_eof());

  // The server stays fully functional for healthy connections.
  observer_updates = 0;
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(driver
                    .set_option(observer_id.value(), "place",
                                (round % 2 == 0) ? "slow" : "fast")
                    .ok());
  }
  EXPECT_TRUE(wait_for([&] {
    if (!observer.pump().ok()) return true;
    return observer_updates >= 3;
  }));
  EXPECT_EQ(observer_updates, 3);
}

TEST_F(ScaleTest, SlowV2ConsumerIsParkedAndResumable) {
  ServerConfig config;
  config.io_shards = 2;
  config.outbound_high_water = 64u << 10;
  config.sndbuf_bytes = 4096;
  start_server(config);

  StuckClient stuck;
  ASSERT_TRUE(stuck.connect_and_shrink(port_).ok());
  auto reply = stuck.call(Message{"REGISTER", {swarm_bundle(0), "2"}});
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  ASSERT_EQ(reply.value().verb, "OK");
  ASSERT_EQ(reply.value().args.size(), 2u);
  unsigned long long stuck_id = 0;
  ASSERT_EQ(std::sscanf(reply.value().args[0].c_str(), "%llu", &stuck_id), 1);
  const std::string token = reply.value().args[1];
  ASSERT_FALSE(token.empty());

  // A resumable slow consumer parks instead of departing: the instance
  // stays registered (SETs keep succeeding), only delivery stops.
  TcpTransport driver;
  ASSERT_TRUE(driver.connect("localhost", port_).ok());
  for (int i = 0; i < 5000; ++i) {
    auto set = driver.set_option(static_cast<core::InstanceId>(stuck_id),
                                 "place", (i % 2 == 0) ? "slow" : "fast");
    ASSERT_TRUE(set.ok()) << set.error().to_string();
    if (server_->parked_session_count() == 1u) break;
  }
  ASSERT_TRUE(wait_for([this] {
    return server_->parked_session_count() == 1u;
  })) << "slow v2 consumer was never parked";
  EXPECT_EQ(controller_->live_instances(), 1u);
  EXPECT_TRUE(stuck.drain_to_eof());

  // A fresh connection RESUMEs the parked session; the server replays
  // the current configuration before the OK.
  StuckClient resumer;
  ASSERT_TRUE(resumer.connect_and_shrink(port_).ok());
  auto sent = write_all(resumer.fd, encode_frame(
                                        Message{"RESUME", {token}}.encode()));
  ASSERT_TRUE(sent.ok());
  std::vector<Message> replayed;
  Message resume_reply;
  while (true) {
    auto frame = resumer.inbound.next_frame();
    ASSERT_TRUE(frame.ok());
    if (frame.value().has_value()) {
      auto message = Message::decode(*frame.value());
      ASSERT_TRUE(message.ok());
      if (message.value().verb == "UPDATE") {
        replayed.push_back(message.value());
        continue;
      }
      resume_reply = message.value();
      break;
    }
    char buffer[4096];
    auto n = read_some(resumer.fd, buffer, sizeof(buffer));
    ASSERT_TRUE(n.ok()) << n.error().to_string();
    if (n.value() > 0) {
      resumer.inbound.feed(std::string_view(buffer, n.value()));
    }
  }
  EXPECT_EQ(resume_reply.verb, "OK");
  ASSERT_EQ(resume_reply.args.size(), 1u);
  EXPECT_EQ(resume_reply.args[0], str_format("%llu", stuck_id));
  bool saw_place = false;
  for (const auto& update : replayed) {
    if (!update.args.empty() && update.args[0] == "place") saw_place = true;
  }
  EXPECT_TRUE(saw_place) << "resume did not replay the configuration";
  EXPECT_TRUE(wait_for([this] {
    return server_->parked_session_count() == 0u;
  }));
  EXPECT_EQ(controller_->live_instances(), 1u);
}

}  // namespace
}  // namespace harmony::net
