# Empty compiler generated dependencies file for apps_external_load_test.
# This may be replaced when dependencies are built.
