file(REMOVE_RECURSE
  "CMakeFiles/core_namespace_test.dir/core_namespace_test.cc.o"
  "CMakeFiles/core_namespace_test.dir/core_namespace_test.cc.o.d"
  "core_namespace_test"
  "core_namespace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_namespace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
