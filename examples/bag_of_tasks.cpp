// Variable parallelism under Harmony: a bag-of-tasks application
// stretches and shrinks as other jobs come and go (paper §3.4 and
// Figure 4). Shows the granularity mechanism: the app only applies a
// new worker count at iteration boundaries.
//
// Build & run:  ./build/examples/bag_of_tasks
#include <cstdio>

#include "apps/bag_app.h"
#include "apps/scenarios.h"
#include "apps/simple_app.h"

using namespace harmony;
using namespace harmony::apps;

int main() {
  std::printf("Active Harmony bag-of-tasks demo (paper §3.4, Figure 4)\n");
  std::printf("------------------------------------------------------\n");

  SimHarness harness;
  if (!harness.controller().add_nodes_script(worker_cluster_script(8)).ok() ||
      !harness.finalize().ok()) {
    std::fprintf(stderr, "cluster setup failed\n");
    return 1;
  }
  auto& sim = harness.engine();

  BagConfig bag_config;
  bag_config.seed = 3;
  BagApp bag(harness.context(), bag_config);
  if (!bag.start().ok()) {
    std::fprintf(stderr, "bag registration failed\n");
    return 1;
  }
  std::printf("[t=%6.0f] bag app starts with %d workers\n", sim.now(),
              bag.current_workers());

  SimpleConfig rigid_config;
  rigid_config.workers = 3;
  rigid_config.max_iterations = 2;
  SimpleApp rigid(harness.context(), rigid_config);
  sim.schedule(300, [&] {
    if (rigid.start().ok()) {
      std::printf("[t=%6.0f] rigid 3-node job arrives; Harmony tells the bag "
                  "app to shrink\n", sim.now());
    }
  });

  // Report at iteration boundaries via the workers metric.
  sim.run_until(3000);
  bag.stop();
  sim.run_until(4000);

  std::printf("\nbag worker-count timeline (changes only):\n");
  const auto* workers = harness.metrics().find("bag.1.workers");
  for (const auto& sample : workers->samples()) {
    std::printf("  t=%7.1f  ->  %2.0f workers\n", sample.time, sample.value);
  }
  std::printf("\nbag iteration times:\n");
  const auto* iterations = harness.metrics().find("bag.1.iteration_time");
  for (const auto& sample : iterations->samples()) {
    std::printf("  finished t=%7.1f  took %6.1f s\n", sample.time,
                sample.value);
  }
  std::printf("\nnote how iterations slow while the rigid job holds 3 nodes "
              "(bag on 5) and recover once it leaves (bag back on 8),\n"
              "with every change taking effect only at an iteration boundary "
              "— the paper's granularity mechanism.\n");
  return 0;
}
