// End-to-end external-load adaptation (§4.3: "adapt the system due to
// changes out of Harmony's control"): background work appears on a
// job's nodes, the metric path reports it, the controller migrates the
// job at its next iteration boundary, and the measured iteration times
// recover.
#include <gtest/gtest.h>

#include "apps/scenarios.h"
#include "apps/simple_app.h"

namespace harmony::apps {
namespace {

// Keeps `tasks` concurrent background CPU tasks running on a node,
// representing work outside Harmony's control.
class BackgroundLoad {
 public:
  BackgroundLoad(SimContext ctx, cluster::NodeId node, int tasks)
      : ctx_(ctx), node_(node) {
    for (int i = 0; i < tasks; ++i) spin();
  }
  void stop() { stopped_ = true; }

 private:
  void spin() {
    if (stopped_) return;
    ctx_.cpu->submit(node_, 50.0, [this] { spin(); });
  }
  SimContext ctx_;
  cluster::NodeId node_;
  bool stopped_ = false;
};

TEST(ExternalLoadE2E, JobMigratesAndRecovers) {
  SimHarness harness;
  ASSERT_TRUE(
      harness.controller().add_nodes_script(worker_cluster_script(6)).ok());
  ASSERT_TRUE(harness.finalize().ok());
  auto ctx = harness.context();

  SimpleConfig config;
  config.workers = 3;
  config.seconds_per_worker = 100;
  config.max_iterations = 8;
  SimpleApp job(ctx, config);
  ASSERT_TRUE(job.start().ok());
  // Initially on the first three nodes.
  EXPECT_EQ(job.nodes(), (std::vector<cluster::NodeId>{0, 1, 2}));

  // At t=150, two background tasks land on each of the job's nodes and
  // the monitoring path reports them to Harmony.
  std::vector<std::unique_ptr<BackgroundLoad>> noise;
  harness.engine().schedule(150, [&] {
    for (cluster::NodeId node : {0u, 1u, 2u}) {
      noise.push_back(std::make_unique<BackgroundLoad>(ctx, node, 2));
    }
    for (const char* host : {"sp2-00", "sp2-01", "sp2-02"}) {
      ASSERT_TRUE(harness.controller().report_external_load(host, 2).ok());
    }
  });
  harness.engine().run_until(4000);
  for (auto& n : noise) n->stop();
  harness.engine().run_until(8000);

  ASSERT_TRUE(job.finished());
  // The job ended up on the three idle nodes.
  EXPECT_EQ(job.nodes(), (std::vector<cluster::NodeId>{3, 4, 5}));

  const auto* series = harness.metrics().find("simple.1.iteration_time");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->size(), 8u);
  // Iteration 1 ran clean (~100 s); the iteration in flight when the
  // noise landed was slowed; after migration the times recover.
  double first = series->samples()[0].value;
  double worst = 0;
  for (const auto& s : series->samples()) worst = std::max(worst, s.value);
  double last = series->samples().back().value;
  EXPECT_NEAR(first, 100.25, 1.0);
  EXPECT_GT(worst, 180.0) << "contended iteration visibly slower";
  EXPECT_NEAR(last, 100.25, 1.0) << "post-migration iterations are clean";
}

}  // namespace
}  // namespace harmony::apps
