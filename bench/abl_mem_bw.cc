// Ablation A5 — the memory <-> bandwidth tradeoff of the data-shipping
// option (Figure 3's parameterized link). §3.5: "the amount of required
// bandwidth is dependent on the amount of memory allocated on the
// client machine. Harmony can then decide to allocate additional memory
// resources at the client in order to reduce bandwidth requirements."
// The client's bucket cache makes this real: sweep the granted memory
// and measure predicted link load, simulated cache hit rate, actual
// bytes shipped, and mean query response.
#include <cstdio>

#include "apps/db_app.h"
#include "apps/scenarios.h"
#include "common/strings.h"
#include "core/controller.h"
#include "rsl/expr.h"

namespace {

using namespace harmony;
using namespace harmony::apps;

struct SweepPoint {
  double predicted_link_mb = 0;  // the bundle's DS link expression
  double hit_rate = 0;
  double shipped_mb_per_query = 0;
  double mean_response_s = 0;
  bool ok = true;
};

// Runs a single data-shipping client with a fixed memory grant: the
// closed query loop executes for real against the engine, with the
// bucket cache sized to the grant.
SweepPoint run_with_memory(double memory_mb, db::DbEngine& engine) {
  SweepPoint point;
  // Predicted link load straight from the paper's (intent-corrected)
  // expression.
  rsl::ExprContext ctx;
  ctx.name_lookup = [memory_mb](const std::string& name, double* out) {
    if (name != "client.memory") return false;
    *out = memory_mb;
    return true;
  };
  auto predicted = rsl::expr_eval_number(
      "4.2 * (1 - (client.memory > 42 ? 42 : client.memory) / 42)", ctx);
  point.predicted_link_mb = predicted.ok() ? predicted.value() : -1;

  db::BucketCache cache(memory_mb);
  Rng rng(5);
  double shipped_total = 0;
  double response_total = 0;
  const int kQueries = 400;
  for (int q = 0; q < kQueries; ++q) {
    db::BenchmarkQuery query;
    query.left_ten_percent = static_cast<int32_t>(rng.next_below(10));
    query.right_ten_percent = static_cast<int32_t>(rng.next_below(10));
    auto profile =
        engine.execute(query, db::Placement::kDataShipping, &cache);
    // Single closed-loop client: response = server CPU at speed 2.25 +
    // wire time at 320 Mbps + client CPU at speed 1.
    double response = profile.server_cpu_s / 2.25 +
                      profile.transfer_mb * 8.0 / 320.0 +
                      profile.client_cpu_s;
    shipped_total += profile.transfer_mb;
    response_total += response;
  }
  point.hit_rate = static_cast<double>(cache.hits()) /
                   static_cast<double>(cache.hits() + cache.misses());
  point.shipped_mb_per_query = shipped_total / kQueries;
  point.mean_response_s = response_total / kQueries;
  return point;
}

int run() {
  std::printf("=== Ablation A5: client memory vs data-shipping bandwidth "
              "===\n");
  std::printf("100k-row relations; 400 queries over 10 buckets/relation "
              "(~2.1 MB per bucket, 41.6 MB hot set)\n\n");
  std::printf("client_mem_MB  predicted_link_MB  cache_hit_rate  "
              "shipped_MB/query  mean_response_s\n");
  bool ok = true;
  double first_shipped = -1, last_shipped = -1;
  db::DbEngine engine(100000, 4242);
  for (double memory : {4.0, 8.0, 17.0, 25.0, 34.0, 42.0, 64.0}) {
    auto point = run_with_memory(memory, engine);
    ok = ok && point.ok;
    std::printf("%13.0f  %17.2f  %14.2f  %16.3f  %15.2f\n", memory,
                point.predicted_link_mb, point.hit_rate,
                point.shipped_mb_per_query, point.mean_response_s);
    if (first_shipped < 0) first_shipped = point.shipped_mb_per_query;
    last_shipped = point.shipped_mb_per_query;
  }
  std::printf("\nsummary: growing the client grant from 4 MB to 64 MB cuts "
              "shipped data %.1fx — memory profitably buys bandwidth, as "
              "§3.5 argues.\n",
              first_shipped / std::max(last_shipped, 1e-9));

  // --- the controller making that decision online ------------------------
  // With grant levels offered, Harmony itself picks the larger grant
  // when the bandwidth saving pays for it ("Harmony can then decide to
  // allocate additional memory resources at the client").
  std::printf("\n=== online grant choice by the controller ===\n");
  const char* steep_bundle = R"(harmonyBundle DBclient:1 where {
  {DS {node server {hostname server} {seconds 1} {memory 20}}
      {node client {hostname sp2-00} {memory >=17} {seconds 2}}
      {link client server {200 - 5 * (client.memory > 34 ? 34 : client.memory)}}}
})";
  std::printf("grant_levels      chosen_grant  client_mem_MB  predicted_s\n");
  bool grant_chosen = false;
  for (std::vector<double> levels :
       {std::vector<double>{1.0}, std::vector<double>{1.0, 1.5, 2.0}}) {
    core::ControllerConfig config;
    config.optimizer.memory_grant_levels = levels;
    core::Controller controller(config);
    if (!controller.add_nodes_script(db_cluster_script(1)).ok() ||
        !controller.finalize_cluster().ok()) {
      ok = false;
      continue;
    }
    auto id = controller.register_script(steep_bundle);
    if (!id.ok()) {
      ok = false;
      continue;
    }
    const auto* bundle = controller.bundle_state(id.value(), "where");
    double memory = bundle->allocation.entries[1].requirement.memory_mb;
    auto predicted = controller.predictions();
    std::string level_text;
    for (double level : levels) level_text += str_format("%gx ", level);
    std::printf("%-16s  %12gx  %13.0f  %11.2f\n", level_text.c_str(),
                bundle->choice.memory_grant, memory,
                predicted.ok() ? predicted.value()[0].second : -1);
    if (bundle->choice.memory_grant > 1.0) grant_chosen = true;
  }
  std::printf("\nwith levels offered, the controller grants 2x the minimum "
              "because the transfer saving exceeds the cost: %s\n",
              grant_chosen ? "yes" : "no");
  return ok && last_shipped < first_shipped && grant_chosen ? 0 : 1;
}

}  // namespace

int main() { return run(); }
