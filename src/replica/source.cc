#include "replica/source.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "common/logging.h"
#include "common/strings.h"

namespace harmony::replica {
namespace {

// Payload bytes per BATCH / SNAPC frame. Hex encoding doubles this on
// the wire, keeping every frame well under the 16 MiB frame cap.
constexpr size_t kChunkBytes = 4 * 1024 * 1024;
// A standby that falls this many queued bytes behind is dropped; it
// reconnects and resyncs from the files instead of growing the queue
// without bound.
constexpr size_t kMaxQueuedBytes = 64 * 1024 * 1024;
constexpr size_t kRecordHeaderBytes = 8;

uint32_t read_u32(const char* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Counts the framed records in `bytes`; both ends must be commit
// boundaries (true for tap batches and for journal-file slices, whose
// bounds are committed offsets).
uint64_t count_records(std::string_view bytes) {
  uint64_t n = 0;
  size_t at = 0;
  while (at + kRecordHeaderBytes <= bytes.size()) {
    const uint32_t len = read_u32(bytes.data() + at);
    at += kRecordHeaderBytes + len;
    ++n;
  }
  return n;
}

// Reads `length` bytes of `path` starting at `offset`.
Result<std::string> read_file_slice(const std::string& path, uint64_t offset,
                                    uint64_t length) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error{ErrorCode::kIo, "replication source: cannot open " + path};
  }
  in.seekg(static_cast<std::streamoff>(offset));
  std::string data(length, '\0');
  in.read(data.data(), static_cast<std::streamsize>(length));
  if (static_cast<uint64_t>(in.gcount()) != length) {
    return Error{ErrorCode::kIo, "replication source: short read of " + path};
  }
  return data;
}

Result<std::string> read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Error{ErrorCode::kIo, "replication source: cannot open " + path};
  }
  const std::streamoff size = in.tellg();
  in.seekg(0);
  std::string data(static_cast<size_t>(size), '\0');
  in.read(data.data(), size);
  if (in.gcount() != size) {
    return Error{ErrorCode::kIo, "replication source: short read of " + path};
  }
  return data;
}

net::Message batch_frame(uint64_t generation, uint64_t offset,
                         std::string_view chunk) {
  return net::Message{"REPL",
                      {"BATCH", std::to_string(generation),
                       std::to_string(offset), to_hex(chunk)}};
}

// Splits `bytes` into BATCH frames of at most kChunkBytes. Splits may
// land mid-record; the standby's stream buffer reassembles them.
void append_batch_frames(uint64_t generation, uint64_t offset,
                         std::string_view bytes,
                         std::vector<net::Message>* out) {
  size_t at = 0;
  while (at < bytes.size()) {
    const size_t take = std::min(kChunkBytes, bytes.size() - at);
    out->push_back(batch_frame(generation, offset + at,
                               bytes.substr(at, take)));
    at += take;
  }
}

}  // namespace

ReplicationSource::ReplicationSource(persist::Persistence* persistence)
    : persistence_(persistence) {
  const persist::ReplicationPosition pos = persistence_->replication_position();
  head_generation_ = pos.generation;
  head_offset_ = pos.offset;
}

void ReplicationSource::on_journal_commit(uint64_t generation,
                                          uint64_t start_offset,
                                          std::string_view bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  head_generation_ = generation;
  head_offset_ = start_offset + bytes.size();
  for (auto& [conn, sub] : subscribers_) {
    if (sub.overflowed) continue;
    if (sub.queued_bytes + bytes.size() > kMaxQueuedBytes) {
      HLOG_WARN("replica") << "standby " << sub.standby_id
                           << " overflowed the replication queue; dropping";
      sub.overflowed = true;
      sub.queue.clear();
      sub.queued_bytes = 0;
      continue;
    }
    Event event;
    event.kind = Event::Kind::kBatch;
    event.generation = generation;
    event.offset = start_offset;
    event.bytes.assign(bytes.data(), bytes.size());
    sub.queued_bytes += event.bytes.size();
    sub.queue.push_back(std::move(event));
  }
  refresh_lag_locked();
}

void ReplicationSource::on_compaction(uint64_t new_generation) {
  std::lock_guard<std::mutex> lock(mutex_);
  head_generation_ = new_generation;
  head_offset_ = 0;
  for (auto& [conn, sub] : subscribers_) {
    if (sub.overflowed) continue;
    Event event;
    event.kind = Event::Kind::kCompact;
    event.generation = new_generation;
    sub.queue.push_back(std::move(event));
  }
}

std::vector<net::Message> ReplicationSource::handshake(
    uint64_t conn, const std::string& standby_id, uint64_t generation,
    uint64_t offset) {
  // Register first, so commits that land while we read the backlog from
  // the files queue behind it; the overlap is deduped below.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Subscriber sub;
    sub.standby_id = standby_id;
    sub.syncing = true;
    subscribers_[conn] = std::move(sub);
    subscribers_gauge_->set(static_cast<int64_t>(subscribers_.size()));
  }

  // Read the backlog without holding our mutex (replication_position
  // takes the journal mutex; the tap fires under it and takes ours —
  // holding both here would invert that order). A compaction between
  // the position read and the file reads changes the generation; retry.
  persist::ReplicationPosition pos;
  bool resync = false;
  std::string snapshot_bytes;
  std::string journal_bytes;
  uint64_t journal_from = 0;
  bool ok = false;
  for (int attempt = 0; attempt < 3 && !ok; ++attempt) {
    pos = persistence_->replication_position();
    resync = generation != pos.generation || offset > pos.offset;
    journal_from = resync ? 0 : offset;
    snapshot_bytes.clear();
    journal_bytes.clear();
    if (resync && pos.generation > 0) {
      Result<std::string> snap = read_whole_file(persistence_->snapshot_path());
      if (!snap.ok()) {
        HLOG_ERROR("replica") << "handshake with " << standby_id
                              << " failed: " << snap.error().to_string();
        detach(conn);
        return {};
      }
      snapshot_bytes = std::move(snap.value());
    }
    if (pos.offset > journal_from) {
      Result<std::string> slice = read_file_slice(
          persistence_->journal_path(), journal_from,
          pos.offset - journal_from);
      if (!slice.ok()) {
        HLOG_ERROR("replica") << "handshake with " << standby_id
                              << " failed: " << slice.error().to_string();
        detach(conn);
        return {};
      }
      journal_bytes = std::move(slice.value());
    }
    // The reads only describe generation `pos.generation`; a compaction
    // in between truncated the journal and made them stale.
    ok = persistence_->replication_position().generation == pos.generation;
  }
  if (!ok) {
    HLOG_ERROR("replica") << "handshake with " << standby_id
                          << " raced compaction three times; giving up";
    detach(conn);
    return {};
  }

  std::vector<net::Message> frames;
  if (resync) {
    resyncs_total_->increment();
    frames.push_back(
        net::Message{"REPL", {"SNAP", std::to_string(pos.generation)}});
    for (size_t at = 0; at < snapshot_bytes.size(); at += kChunkBytes) {
      const size_t take = std::min(kChunkBytes, snapshot_bytes.size() - at);
      frames.push_back(net::Message{
          "REPL",
          {"SNAPC", to_hex(std::string_view(snapshot_bytes).substr(at, take))}});
    }
    frames.push_back(
        net::Message{"REPL", {"SNAPE", std::to_string(pos.generation)}});
  }
  append_batch_frames(pos.generation, journal_from, journal_bytes, &frames);

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = subscribers_.find(conn);
  if (it == subscribers_.end()) return {};
  Subscriber& sub = it->second;
  // Drop queued events the file reads already cover.
  while (!sub.queue.empty()) {
    const Event& event = sub.queue.front();
    const bool covered =
        event.generation < pos.generation ||
        (event.generation == pos.generation &&
         (event.kind == Event::Kind::kCompact ||
          event.offset < pos.offset));
    if (!covered) break;
    sub.queued_bytes -= event.bytes.size();
    sub.queue.pop_front();
  }
  sub.streamed_records += count_records(journal_bytes);
  // Ship anything that queued past the file snapshot in the same turn.
  for (const Event& event : sub.queue) {
    if (event.kind == Event::Kind::kCompact) {
      frames.push_back(
          net::Message{"REPL", {"COMPACT", std::to_string(event.generation)}});
    } else {
      append_batch_frames(event.generation, event.offset, event.bytes,
                          &frames);
      sub.streamed_records += count_records(event.bytes);
    }
  }
  sub.queue.clear();
  sub.queued_bytes = 0;
  sub.syncing = false;
  batches_total_->increment();
  HLOG_INFO("replica") << "standby " << standby_id << " attached at gen "
                       << generation << " offset " << offset
                       << (resync ? " (full resync)" : " (journal tail)");
  return frames;
}

void ReplicationSource::note_ack(uint64_t conn, uint64_t generation,
                                 uint64_t offset, uint64_t records) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = subscribers_.find(conn);
  if (it == subscribers_.end()) return;
  Subscriber& sub = it->second;
  // Acks never move backwards: a regression means a confused standby
  // (or a replayed frame) and is ignored rather than un-acknowledging
  // bytes semi-sync replies may already have released against.
  if (generation < sub.acked_generation ||
      (generation == sub.acked_generation && offset < sub.acked_offset)) {
    HLOG_WARN("replica") << "standby " << sub.standby_id
                         << " ack regressed (gen " << generation << " offset "
                         << offset << " behind gen " << sub.acked_generation
                         << " offset " << sub.acked_offset << "); ignored";
    return;
  }
  sub.acked_generation = generation;
  sub.acked_offset = offset;
  sub.acked_records = std::max(sub.acked_records, records);
  refresh_lag_locked();
}

void ReplicationSource::detach(uint64_t conn) {
  std::lock_guard<std::mutex> lock(mutex_);
  subscribers_.erase(conn);
  subscribers_gauge_->set(static_cast<int64_t>(subscribers_.size()));
  refresh_lag_locked();
}

std::vector<net::Message> ReplicationSource::take_pending(uint64_t conn) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = subscribers_.find(conn);
  if (it == subscribers_.end()) return {};
  Subscriber& sub = it->second;
  if (sub.syncing || sub.overflowed || sub.queue.empty()) return {};
  std::vector<net::Message> frames;
  for (const Event& event : sub.queue) {
    if (event.kind == Event::Kind::kCompact) {
      frames.push_back(
          net::Message{"REPL", {"COMPACT", std::to_string(event.generation)}});
    } else {
      append_batch_frames(event.generation, event.offset, event.bytes,
                          &frames);
      sub.streamed_records += count_records(event.bytes);
    }
  }
  sub.queue.clear();
  sub.queued_bytes = 0;
  batches_total_->increment();
  return frames;
}

bool ReplicationSource::acked_through(uint64_t generation, uint64_t offset) {
  std::lock_guard<std::mutex> lock(mutex_);
  bool any = false;
  for (const auto& [conn, sub] : subscribers_) {
    if (sub.overflowed) continue;
    any = true;
    const bool acked = sub.acked_generation > generation ||
                       (sub.acked_generation == generation &&
                        sub.acked_offset >= offset);
    if (!acked) return false;
  }
  return any;
}

bool ReplicationSource::has_subscribers() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [conn, sub] : subscribers_) {
    if (!sub.overflowed) return true;
  }
  return false;
}

size_t ReplicationSource::subscriber_count() {
  std::lock_guard<std::mutex> lock(mutex_);
  return subscribers_.size();
}

void ReplicationSource::refresh_lag_locked() {
  int64_t lag_bytes = 0;
  int64_t lag_records = 0;
  for (const auto& [conn, sub] : subscribers_) {
    if (sub.overflowed || sub.syncing) continue;
    int64_t bytes = 0;
    if (sub.acked_generation == head_generation_) {
      bytes = static_cast<int64_t>(head_offset_) -
              static_cast<int64_t>(sub.acked_offset);
    } else {
      // Behind a compaction: everything in the current journal plus
      // whatever is queued for it is unacked.
      bytes = static_cast<int64_t>(head_offset_ + sub.queued_bytes);
    }
    lag_bytes = std::max(lag_bytes, bytes);
    lag_records =
        std::max(lag_records, static_cast<int64_t>(sub.streamed_records) -
                                  static_cast<int64_t>(sub.acked_records));
  }
  lag_bytes_->set(std::max<int64_t>(0, lag_bytes));
  lag_records_->set(std::max<int64_t>(0, lag_records));
}

}  // namespace harmony::replica
