file(REMOVE_RECURSE
  "CMakeFiles/cluster_pool_test.dir/cluster_pool_test.cc.o"
  "CMakeFiles/cluster_pool_test.dir/cluster_pool_test.cc.o.d"
  "cluster_pool_test"
  "cluster_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
