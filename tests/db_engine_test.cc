#include "db/engine.h"

#include <gtest/gtest.h>

namespace harmony::db {
namespace {

// A 10,000-row engine keeps tests fast; selectivities are identical to
// the paper's 100,000-row relations.
class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : engine_(10000, 42) {}
  DbEngine engine_;
};

TEST_F(EngineTest, RelationsBuilt) {
  EXPECT_EQ(engine_.left().row_count(), 10000u);
  EXPECT_EQ(engine_.right().row_count(), 10000u);
  EXPECT_TRUE(engine_.left().has_index(Attr::kTenPercent));
  EXPECT_TRUE(engine_.right().has_index(Attr::kUnique1));
  EXPECT_NEAR(engine_.bucket_mb(), 1000 * 208 / 1e6, 1e-12);
}

TEST_F(EngineTest, BenchmarkQuerySelectivity) {
  auto result = run_benchmark_query(engine_.left(), engine_.right(),
                                    BenchmarkQuery{3, 7});
  // 10% of each side selected.
  EXPECT_EQ(result.work.rows_selected_left, 1000u);
  EXPECT_EQ(result.work.rows_selected_right, 1000u);
  // Join on the unique attribute: each left row matches exactly one
  // right row, which survives the independent right selection with
  // p = 10%, so the result is ~1% of the selected set.
  EXPECT_NEAR(static_cast<double>(result.work.result_rows), 100.0, 40.0);
  EXPECT_EQ(result.rows.size(), result.work.result_rows);
  // Every result pair really joins and satisfies both predicates.
  for (const auto& row : result.rows) {
    EXPECT_EQ(engine_.left().row(row.left).unique1,
              engine_.right().row(row.right).unique1);
    EXPECT_EQ(engine_.left().row(row.left).ten_percent, 3);
    EXPECT_EQ(engine_.right().row(row.right).ten_percent, 7);
  }
}

TEST_F(EngineTest, QueryShippingProfile) {
  auto profile = engine_.execute(BenchmarkQuery{1, 2},
                                 Placement::kQueryShipping);
  // All heavy CPU at the server.
  EXPECT_GT(profile.server_cpu_s, profile.client_cpu_s * 10);
  // Only result tuples cross: result pairs * 416 bytes.
  EXPECT_NEAR(profile.transfer_mb,
              static_cast<double>(profile.work.result_rows) * 416 / 1e6, 1e-9);
  EXPECT_GT(profile.work.result_rows, 0u);
}

TEST_F(EngineTest, DataShippingProfile) {
  auto profile = engine_.execute(BenchmarkQuery{1, 2},
                                 Placement::kDataShipping);
  // Join runs at the client.
  EXPECT_GT(profile.client_cpu_s, profile.server_cpu_s * 2);
  // Two full buckets cross (no cache).
  EXPECT_NEAR(profile.transfer_mb, 2 * engine_.bucket_mb(), 1e-9);
  EXPECT_EQ(profile.cache_misses, 2u);
}

TEST_F(EngineTest, PlacementsComputeTheSameResult) {
  auto qs = engine_.execute(BenchmarkQuery{4, 4}, Placement::kQueryShipping);
  auto ds = engine_.execute(BenchmarkQuery{4, 4}, Placement::kDataShipping);
  EXPECT_EQ(qs.work.result_rows, ds.work.result_rows);
  EXPECT_EQ(qs.work.rows_selected_left, ds.work.rows_selected_left);
}

TEST_F(EngineTest, QsShipsLessDataButLoadsServerMore) {
  // The structural tradeoff the paper's Figure 3 bundle encodes.
  auto qs = engine_.execute(BenchmarkQuery{0, 0}, Placement::kQueryShipping);
  auto ds = engine_.execute(BenchmarkQuery{0, 0}, Placement::kDataShipping);
  EXPECT_LT(qs.transfer_mb, ds.transfer_mb);
  EXPECT_GT(qs.server_cpu_s, ds.server_cpu_s);
  EXPECT_LT(qs.client_cpu_s, ds.client_cpu_s);
}

TEST_F(EngineTest, CacheEliminatesRepeatTransfers) {
  BucketCache cache(10.0);  // plenty for a 10k-row engine
  auto first = engine_.execute(BenchmarkQuery{5, 6},
                               Placement::kDataShipping, &cache);
  EXPECT_EQ(first.cache_misses, 2u);
  EXPECT_GT(first.transfer_mb, 0.0);
  auto second = engine_.execute(BenchmarkQuery{5, 6},
                                Placement::kDataShipping, &cache);
  EXPECT_EQ(second.cache_hits, 2u);
  EXPECT_DOUBLE_EQ(second.transfer_mb, 0.0);
}

TEST_F(EngineTest, PartialCacheHit) {
  BucketCache cache(10.0);
  (void)engine_.execute(BenchmarkQuery{5, 6}, Placement::kDataShipping, &cache);
  auto mixed = engine_.execute(BenchmarkQuery{5, 9},
                               Placement::kDataShipping, &cache);
  EXPECT_EQ(mixed.cache_hits, 1u);
  EXPECT_EQ(mixed.cache_misses, 1u);
  EXPECT_NEAR(mixed.transfer_mb, engine_.bucket_mb(), 1e-9);
}

TEST_F(EngineTest, CostModelScalesCpu) {
  CostModel cheap;
  cheap.select_per_row = 0;
  cheap.build_per_row = 0;
  cheap.probe_per_row = 0;
  cheap.result_per_row = 0;
  cheap.parse_cost = 0;
  auto profile = engine_.execute(BenchmarkQuery{1, 1},
                                 Placement::kQueryShipping, nullptr, cheap);
  EXPECT_DOUBLE_EQ(profile.server_cpu_s, 0.0);
  EXPECT_DOUBLE_EQ(profile.client_cpu_s, 0.0);
}

// Calibration property used by the Figure 7 reproduction: with default
// costs and 100k-row relations, the full query costs ~18 reference
// seconds at the server under QS (≈9 s on the paper's 2x server).
TEST(EngineCalibration, FullScaleQueryCost) {
  DbEngine engine(100000, 7);
  auto qs = engine.execute(BenchmarkQuery{2, 8}, Placement::kQueryShipping);
  EXPECT_NEAR(qs.server_cpu_s, 18.0, 2.5);
  auto ds = engine.execute(BenchmarkQuery{2, 8}, Placement::kDataShipping);
  EXPECT_NEAR(ds.server_cpu_s, 2.0, 0.5);
  EXPECT_NEAR(ds.client_cpu_s, 16.1, 2.0);
  EXPECT_NEAR(ds.transfer_mb, 4.16, 0.1);
}

// --- server buffer pool (cooperative caching) --------------------------------

TEST(BufferPoolUnit, HitAndMissAccounting) {
  BufferPool pool(4, 10);  // 4 pages of 10 tuples
  EXPECT_FALSE(pool.touch(0, 5));   // page 0: cold
  EXPECT_TRUE(pool.touch(0, 9));    // same page: warm
  EXPECT_FALSE(pool.touch(0, 10));  // page 1: cold
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 2u);
  EXPECT_EQ(pool.resident_pages(), 2u);
  EXPECT_NEAR(pool.hit_rate(), 1.0 / 3.0, 1e-12);
}

TEST(BufferPoolUnit, LruEvictsColdestPage) {
  BufferPool pool(2, 10);
  (void)pool.touch(0, 0);    // page A
  (void)pool.touch(0, 10);   // page B
  (void)pool.touch(0, 0);    // A is now MRU
  (void)pool.touch(0, 20);   // page C evicts B
  EXPECT_TRUE(pool.touch(0, 0)) << "A survived";
  EXPECT_FALSE(pool.touch(0, 10)) << "B was evicted";
}

TEST(BufferPoolUnit, TablesDoNotCollide) {
  BufferPool pool(8, 10);
  (void)pool.touch(0, 0);
  EXPECT_FALSE(pool.touch(1, 0)) << "same page number, different table";
}

TEST(BufferPoolUnit, TouchRowsAggregates) {
  BufferPool pool(100, 10);
  auto touched = pool.touch_rows(0, {0, 1, 2, 10, 11, 20});
  EXPECT_EQ(touched.misses, 3u) << "three distinct pages";
  EXPECT_EQ(touched.hits, 3u);
}

TEST_F(EngineTest, ServerBufferPoolWarmsUp) {
  BufferPool pool(2000, 39);  // holds both 10k-row relations
  engine_.set_server_cache(&pool);
  auto cold = engine_.execute(BenchmarkQuery{3, 4},
                              Placement::kQueryShipping);
  EXPECT_GT(cold.page_misses, 0u);
  auto warm = engine_.execute(BenchmarkQuery{3, 4},
                              Placement::kQueryShipping);
  EXPECT_EQ(warm.page_misses, 0u) << "same buckets: fully cached";
  EXPECT_LT(warm.server_cpu_s, cold.server_cpu_s)
      << "page misses cost server time";
  engine_.set_server_cache(nullptr);
}

TEST_F(EngineTest, CooperativeCachingAcrossClients) {
  // Client 1 warms the pool; client 2's first query over the same
  // buckets is already cheap — the paper's Figure 7 observation.
  BufferPool pool(2000, 39);
  engine_.set_server_cache(&pool);
  auto client1 = engine_.execute(BenchmarkQuery{7, 8},
                                 Placement::kQueryShipping);
  BucketCache client2_cache(17.0);
  auto client2 = engine_.execute(BenchmarkQuery{7, 8},
                                 Placement::kDataShipping, &client2_cache);
  EXPECT_GT(client1.page_misses, 0u);
  EXPECT_EQ(client2.page_misses, 0u)
      << "all clients share the server's buffer pool";
  engine_.set_server_cache(nullptr);
}

TEST(BucketCacheUnit, LruEviction) {
  BucketCache cache(2.0);
  EXPECT_FALSE(cache.lookup_or_insert(0, 1, 1.0));
  EXPECT_FALSE(cache.lookup_or_insert(0, 2, 1.0));
  EXPECT_TRUE(cache.lookup_or_insert(0, 1, 1.0));  // touch 1 -> MRU
  EXPECT_FALSE(cache.lookup_or_insert(0, 3, 1.0)); // evicts 2
  EXPECT_TRUE(cache.lookup_or_insert(0, 1, 1.0));
  EXPECT_FALSE(cache.lookup_or_insert(0, 2, 1.0)) << "2 was evicted";
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(BucketCacheUnit, OversizedBucketNeverCached) {
  BucketCache cache(0.5);
  EXPECT_FALSE(cache.lookup_or_insert(0, 1, 1.0));
  EXPECT_FALSE(cache.lookup_or_insert(0, 1, 1.0)) << "still a miss";
  EXPECT_EQ(cache.buckets(), 0u);
}

TEST(BucketCacheUnit, ResizeEvicts) {
  BucketCache cache(4.0);
  for (int b = 0; b < 4; ++b) {
    EXPECT_FALSE(cache.lookup_or_insert(0, b, 1.0));
  }
  EXPECT_EQ(cache.buckets(), 4u);
  cache.resize(2.0);
  EXPECT_EQ(cache.buckets(), 2u);
  EXPECT_LE(cache.used_mb(), 2.0);
  // Most recently used buckets survive.
  EXPECT_TRUE(cache.lookup_or_insert(0, 3, 1.0));
  EXPECT_TRUE(cache.lookup_or_insert(0, 2, 1.0));
}

TEST(BucketCacheUnit, Clear) {
  BucketCache cache(4.0);
  (void)cache.lookup_or_insert(0, 1, 1.0);
  cache.clear();
  EXPECT_EQ(cache.buckets(), 0u);
  EXPECT_DOUBLE_EQ(cache.used_mb(), 0.0);
}

}  // namespace
}  // namespace harmony::db
