# Empty dependencies file for harmony_db.
# This may be replaced when dependencies are built.
