// Heap table over Wisconsin tuples with integer-attribute accessors and
// hash indexes. Tornadito (the paper's engine) sat on the SHORE storage
// manager; this is the minimal storage substrate the experiments need:
// stable row ids, full scans, and indexed lookups with work accounting.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "db/tuple.h"

namespace harmony::db {

// Integer attributes addressable by name (index keys / predicates).
enum class Attr {
  kUnique1,
  kUnique2,
  kTen,
  kOnePercent,
  kTenPercent,
  kTwentyPercent,
};

const char* attr_name(Attr attr);
int32_t attr_value(const WisconsinTuple& tuple, Attr attr);

class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t row_count() const { return rows_.size(); }
  size_t bytes() const { return rows_.size() * kTupleBytes; }

  RowId insert(const WisconsinTuple& tuple);
  void bulk_load(std::vector<WisconsinTuple> tuples);

  const WisconsinTuple& row(RowId id) const;

  // Builds (or rebuilds) a hash index on the attribute.
  void build_index(Attr attr);
  bool has_index(Attr attr) const;

  // Row ids matching attr == value. Uses the index when present
  // (counting one probe per matching row), else a full scan (counting
  // every row examined). The examined-row count feeds the simulator's
  // CPU cost model.
  std::vector<RowId> select_eq(Attr attr, int32_t value,
                               uint64_t* rows_examined = nullptr) const;

  // Full-scan filter (diagnostics / non-indexed predicates).
  std::vector<RowId> scan_filter(
      const std::function<bool(const WisconsinTuple&)>& predicate,
      uint64_t* rows_examined = nullptr) const;

 private:
  std::string name_;
  std::vector<WisconsinTuple> rows_;
  std::unordered_map<int, std::unordered_multimap<int32_t, RowId>> indexes_;
};

}  // namespace harmony::db
