#include "metric/metric.h"

#include <algorithm>

#include "common/assert.h"
#include "common/strings.h"

namespace harmony::metric {

void TimeSeries::add(double time, double value) {
  HARMONY_ASSERT_MSG(samples_.empty() || time >= samples_.back().time - 1e-9,
                     "metric samples must be time-ordered");
  if (samples_.size() >= retention_) evict_oldest_block();
  samples_.push_back({time, value});
}

void TimeSeries::set_retention(size_t max_samples) {
  HARMONY_ASSERT_MSG(max_samples >= 2, "retention must hold >= 2 samples");
  retention_ = max_samples;
  if (samples_.size() >= retention_) evict_oldest_block();
}

// Folds the oldest half of the retained window into the evicted
// aggregate and erases it in one block. Block eviction keeps add()
// amortized O(1) where a per-add pop_front would be O(n) — the same
// quadratic shape the FrameBuffer fix removes from the net layer.
void TimeSeries::evict_oldest_block() {
  size_t drop = samples_.size() - retention_ / 2;
  if (drop == 0 || drop > samples_.size()) drop = samples_.size() / 2;
  for (size_t i = 0; i < drop; ++i) evicted_.add(samples_[i].value);
  samples_.erase(samples_.begin(),
                 samples_.begin() + static_cast<ptrdiff_t>(drop));
}

double TimeSeries::last_value() const {
  HARMONY_ASSERT(!samples_.empty());
  return samples_.back().value;
}

double TimeSeries::last_time() const {
  HARMONY_ASSERT(!samples_.empty());
  return samples_.back().time;
}

RunningStats TimeSeries::stats_between(double from, double to) const {
  RunningStats stats;
  auto lo = std::lower_bound(
      samples_.begin(), samples_.end(), from,
      [](const Sample& s, double t) { return s.time < t; });
  for (auto it = lo; it != samples_.end() && it->time <= to; ++it) {
    stats.add(it->value);
  }
  return stats;
}

RunningStats TimeSeries::stats_window(double window) const {
  if (samples_.empty()) return {};
  double to = samples_.back().time;
  return stats_between(to - window, to);
}

double TimeSeries::mean() const { return total_stats().mean(); }

RunningStats TimeSeries::total_stats() const {
  RunningStats stats = evicted_;
  for (const auto& s : samples_) stats.add(s.value);
  return stats;
}

void MetricRegistry::record(const std::string& name, double time,
                            double value) {
  series_[name].add(time, value);
  for (const auto& observer : observers_) observer(name, time, value);
}

const TimeSeries* MetricRegistry::find(const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

std::vector<std::string> MetricRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, ts] : series_) out.push_back(name);
  return out;
}

std::string MetricRegistry::export_csv(const std::string& name) const {
  const TimeSeries* ts = find(name);
  if (ts == nullptr) return "";
  std::string out = "time,value\n";
  for (const auto& s : ts->samples()) {
    // Shortest exact round-trip, not a fixed precision: %.6f flattens
    // sub-microsecond times and mangles large values.
    out += format_number(s.time);
    out += ',';
    out += format_number(s.value);
    out += '\n';
  }
  return out;
}

}  // namespace harmony::metric
