#include "core/state.h"

#include <gtest/gtest.h>

#include "core/binding.h"

namespace harmony::core {
namespace {

rsl::BundleSpec parse(const std::string& app, const std::string& bundle,
                      const std::string& options) {
  auto r = rsl::parse_bundle(app, bundle, options);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  return r.value();
}

TEST(OptionChoice, EqualityAndToString) {
  OptionChoice a{"QS", {}};
  OptionChoice b{"QS", {}};
  OptionChoice c{"DS", {}};
  OptionChoice d{"QS", {{"workerNodes", 4}}};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
  EXPECT_EQ(d.to_string(), "QS workerNodes=4");
}

TEST(EnumerateChoices, OptionWithoutVariables) {
  auto bundle = parse("A", "b", "{QS {node s {seconds 1}}} {DS {node s {seconds 2}}}");
  auto choices = enumerate_choices(bundle);
  ASSERT_EQ(choices.size(), 2u);
  EXPECT_EQ(choices[0].option, "QS");
  EXPECT_EQ(choices[1].option, "DS");
  EXPECT_TRUE(choices[0].variables.empty());
}

TEST(EnumerateChoices, VariableExpansion) {
  auto bundle = parse("Bag", "p",
                      "{var {variable workerNodes {1 2 4 8}} "
                      "{node w {seconds 1}}}");
  auto choices = enumerate_choices(bundle);
  ASSERT_EQ(choices.size(), 4u);
  EXPECT_DOUBLE_EQ(choices[0].variables.at("workerNodes"), 1);
  EXPECT_DOUBLE_EQ(choices[3].variables.at("workerNodes"), 8);
}

TEST(EnumerateChoices, CartesianProductOfVariables) {
  auto bundle = parse("A", "b",
                      "{opt {variable x {1 2}} {variable y {10 20 30}} "
                      "{node n {seconds 1}}}");
  auto choices = enumerate_choices(bundle);
  ASSERT_EQ(choices.size(), 6u);
  // Definition-order nesting: x varies slowest.
  EXPECT_DOUBLE_EQ(choices[0].variables.at("x"), 1);
  EXPECT_DOUBLE_EQ(choices[0].variables.at("y"), 10);
  EXPECT_DOUBLE_EQ(choices[5].variables.at("x"), 2);
  EXPECT_DOUBLE_EQ(choices[5].variables.at("y"), 30);
}

TEST(InstanceState, FindBundleAndPath) {
  InstanceState instance;
  instance.id = 66;
  instance.application = "DBclient";
  BundleState bundle;
  bundle.spec = parse("DBclient", "where", "{QS {node s {seconds 1}}}");
  instance.bundles.push_back(std::move(bundle));
  EXPECT_EQ(instance.path(), "DBclient.66");
  EXPECT_NE(instance.find_bundle("where"), nullptr);
  EXPECT_EQ(instance.find_bundle("nope"), nullptr);
}

TEST(SystemState, NodeLoadCountsConfiguredAllocations) {
  SystemState state;
  ASSERT_TRUE(state.mutable_topology().add_node("a", 1, 64).ok());
  ASSERT_TRUE(state.mutable_topology().add_node("b", 1, 64).ok());
  state.init_pool();

  InstanceState i1;
  i1.id = 1;
  BundleState b1;
  b1.spec = parse("X", "b", "{o {node n {seconds 1}}}");
  b1.configured = true;
  b1.allocation.entries.push_back({{"n", 0, "*", "", 8}, 0});
  b1.allocation.entries.push_back({{"n", 1, "*", "", 8}, 1});
  i1.bundles.push_back(b1);
  state.instances.push_back(i1);

  InstanceState i2;
  i2.id = 2;
  BundleState b2 = b1;
  b2.configured = false;  // unconfigured allocations do not count
  i2.bundles.push_back(b2);
  state.instances.push_back(i2);

  auto load = state.node_load();
  EXPECT_EQ(load[0], 1);
  EXPECT_EQ(load[1], 1);
}

// --- bind_option ---------------------------------------------------------

TEST(BindOption, ReplicatesNodes) {
  auto bundle = parse("Bag", "p",
                      "{var {variable workerNodes {4}} "
                      "{node worker {seconds {1200.0 / workerNodes}} "
                      "{memory 16} {replicate {workerNodes}}}}");
  OptionChoice choice{"var", {{"workerNodes", 4}}};
  auto bound = bind_option(bundle.options[0], choice, {});
  ASSERT_TRUE(bound.ok()) << (bound.ok() ? "" : bound.error().message);
  ASSERT_EQ(bound.value().node_requirements.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(bound.value().node_requirements[i].role, "worker");
    EXPECT_EQ(bound.value().node_requirements[i].index, i);
    EXPECT_DOUBLE_EQ(bound.value().node_requirements[i].memory_mb, 16);
  }
}

TEST(BindOption, LinksMapToRequirementIndices) {
  auto bundle = parse("DB", "w",
                      "{QS {node server {hostname server} {seconds 9} "
                      "{memory 20}} {node client {seconds 1} {memory 2}} "
                      "{link client server 10}}");
  auto bound = bind_option(bundle.options[0], {"QS", {}}, {});
  ASSERT_TRUE(bound.ok());
  ASSERT_EQ(bound.value().link_requirements.size(), 1u);
  EXPECT_EQ(bound.value().link_requirements[0].from, 1u) << "client is req 1";
  EXPECT_EQ(bound.value().link_requirements[0].to, 0u);
  ASSERT_EQ(bound.value().link_specs.size(), 1u);
  EXPECT_EQ(bound.value().link_specs[0]->from, "client");
}

TEST(BindOption, MemoryConstraintUsesMinimum) {
  auto bundle = parse("DB", "w",
                      "{DS {node client {memory >=17} {seconds 9}}}");
  auto bound = bind_option(bundle.options[0], {"DS", {}}, {});
  ASSERT_TRUE(bound.ok());
  EXPECT_DOUBLE_EQ(bound.value().node_requirements[0].memory_mb, 17);
}

TEST(BindOption, MemoryGrantScalesOpenEndedConstraints) {
  auto bundle = parse("DB", "w",
                      "{DS {node client {memory >=17} {seconds 9}}"
                      " {node server {memory 20} {seconds 1}}}");
  OptionChoice generous{"DS", {}};
  generous.memory_grant = 2.0;
  auto bound = bind_option(bundle.options[0], generous, {});
  ASSERT_TRUE(bound.ok());
  EXPECT_DOUBLE_EQ(bound.value().node_requirements[0].memory_mb, 34)
      << ">= constraints scale with the grant";
  EXPECT_DOUBLE_EQ(bound.value().node_requirements[1].memory_mb, 20)
      << "exact requirements never inflate";
}

TEST(OptionChoice, MemoryGrantInEqualityAndToString) {
  OptionChoice a{"DS", {}};
  OptionChoice b{"DS", {}};
  b.memory_grant = 2.0;
  EXPECT_FALSE(a == b);
  EXPECT_EQ(b.to_string(), "DS mem*2");
  EXPECT_EQ(a.to_string(), "DS");
}

TEST(BindOption, RejectsBadReplicate) {
  auto zero = parse("A", "b", "{o {node n {seconds 1} {replicate 0}}}");
  EXPECT_FALSE(bind_option(zero.options[0], {"o", {}}, {}).ok());
  auto frac = parse("A", "b", "{o {node n {seconds 1} {replicate 2.5}}}");
  EXPECT_FALSE(bind_option(frac.options[0], {"o", {}}, {}).ok());
}

TEST(BindOption, RejectsLinkToUnknownRole) {
  auto bundle = parse("A", "b",
                      "{o {node n {seconds 1}} {link n ghost 5}}");
  auto bound = bind_option(bundle.options[0], {"o", {}}, {});
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.error().code, ErrorCode::kInvalidArgument);
}

TEST(ChoiceContext, VariablesShadowNames) {
  rsl::ExprContext names;
  names.name_lookup = [](const std::string& name, double* out) {
    if (name != "workerNodes") return false;
    *out = 99;
    return true;
  };
  OptionChoice choice{"o", {{"workerNodes", 4}}};
  auto ctx = choice_context(choice, names);
  double out = 0;
  ASSERT_TRUE(ctx.name_lookup("workerNodes", &out));
  EXPECT_DOUBLE_EQ(out, 4) << "choice variable wins over namespace";
  std::string str;
  ASSERT_TRUE(ctx.var_lookup("workerNodes", &str));
  EXPECT_EQ(str, "4") << "variables also visible as $vars";
}

}  // namespace
}  // namespace harmony::core
