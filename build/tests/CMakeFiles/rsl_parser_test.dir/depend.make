# Empty dependencies file for rsl_parser_test.
# This may be replaced when dependencies are built.
