file(REMOVE_RECURSE
  "CMakeFiles/abl_mem_bw.dir/abl_mem_bw.cc.o"
  "CMakeFiles/abl_mem_bw.dir/abl_mem_bw.cc.o.d"
  "abl_mem_bw"
  "abl_mem_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_mem_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
