#include "core/controller.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "common/logging.h"
#include "common/strings.h"

namespace harmony::core {

namespace {

// Controller-built paths are valid by construction; a failure here is a
// programming error, not a recoverable condition.
void must_set(Namespace& names, const std::string& path, double value) {
  auto status = names.set(path, value);
  HARMONY_ASSERT_MSG(status.ok(), path.c_str());
}

void must_set_string(Namespace& names, const std::string& path,
                     const std::string& value) {
  auto status = names.set_string(path, value);
  HARMONY_ASSERT_MSG(status.ok(), path.c_str());
}

}  // namespace

Controller::Controller(ControllerConfig config) : config_(std::move(config)) {
  objective_ = make_objective(config_.objective);
  HARMONY_ASSERT_MSG(objective_ != nullptr, "unknown objective name");
  predictor_ = Predictor(config_.local_bandwidth_mbps);
  predictor_.set_comm_occupancy(config_.comm_occupancy_s_per_mb);
  optimizer_ = std::make_unique<Optimizer>(&predictor_, objective_.get(),
                                           config_.optimizer);
}

double Controller::now() const {
  return time_source_ ? time_source_() : 0.0;
}

void Controller::assert_owner() const {
  // Fires only while a serve loop is bound (see bind_owner_thread): a
  // controller entry from any other thread is a data race in the
  // making, not a recoverable condition.
  HARMONY_ASSERT_MSG(on_owner_thread(),
                     "controller entered off its owner thread");
}

Controller::EpochScope::EpochScope(Controller& controller)
    : controller_(controller) {
  controller_.begin_epoch();
}

Controller::EpochScope::~EpochScope() { controller_.end_epoch(); }

void Controller::begin_epoch() {
  if (epoch_depth_++ > 0) return;
  epoch_applied_ = false;
  epoch_wall_start_ = std::chrono::steady_clock::now();
  epoch_start_us_ = metric::telemetry_now_us();
  epoch_candidates_start_ = optimizer_->candidates_evaluated();
  epoch_predictor_start_ = optimizer_->predictor_calls();
  epoch_skipped_start_ = optimizer_->bundles_skipped();
}

void Controller::end_epoch() {
  HARMONY_ASSERT(epoch_depth_ > 0);
  if (--epoch_depth_ > 0) return;
  if (epoch_applied_) {
    const double latency_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - epoch_wall_start_)
            .count();
    const double t = now();
    metrics_.record("controller.decision_latency_ms", t, latency_ms);
    metrics_.record("optimizer.epoch_candidates", t,
                    static_cast<double>(optimizer_->candidates_evaluated() -
                                        epoch_candidates_start_));
    metrics_.record("optimizer.epoch_predictor_calls", t,
                    static_cast<double>(optimizer_->predictor_calls() -
                                        epoch_predictor_start_));
    metrics_.record("optimizer.epoch_bundles_skipped", t,
                    static_cast<double>(optimizer_->bundles_skipped() -
                                        epoch_skipped_start_));
    metrics_.record("optimizer.cache_hit_rate", t,
                    optimizer_->cache_stats().hit_rate());
    // Thread-safe mirrors for live scrapes; the registry above remains
    // the simulation-time record.
    const uint64_t end_us = metric::telemetry_now_us();
    tl_epochs_total_->increment();
    tl_candidates_total_->add(optimizer_->candidates_evaluated() -
                              epoch_candidates_start_);
    tl_skips_total_->add(optimizer_->bundles_skipped() -
                         epoch_skipped_start_);
    tl_epoch_us_->record(end_us - epoch_start_us_);
    if (metric::TraceBuffer::instance().enabled()) {
      metric::TraceBuffer::instance().record("epoch.reevaluate",
                                             epoch_start_us_,
                                             end_us - epoch_start_us_);
    }
  }
  // One coherent flush per external event, however many decision
  // batches it produced.
  if (config_.auto_flush) flush_pending_vars();
  // Journal batching point: the persist layer writes (and fsyncs) all
  // events of this epoch as one batch, keeping the decision path free
  // of per-event disk latency.
  if (sink_ != nullptr) sink_->on_epoch_commit();
}

void Controller::emit_event(ControllerEvent event) {
  if (sink_ == nullptr) return;
  event.time = now();
  sink_->on_controller_event(event);
}

Status Controller::add_node(const rsl::NodeAd& ad) {
  if (cluster_finalized()) {
    return Status(ErrorCode::kClosed, "cluster is finalized");
  }
  auto id =
      state_.mutable_topology().add_node(ad.name, ad.speed, ad.memory_mb,
                                         ad.os);
  if (!id.ok()) return Status(id.error().code, id.error().message);
  for (const auto& link : ad.links) {
    pending_links_.push_back(
        {ad.name, link.peer, link.bandwidth_mbps, link.latency_ms});
  }
  must_set(names_, "cluster." + ad.name + ".speed", ad.speed);
  must_set(names_, "cluster." + ad.name + ".memory", ad.memory_mb);
  return Status::Ok();
}

Status Controller::add_nodes_script(const std::string& rsl_script) {
  rsl::RslHost host;
  host.on_node([this](const rsl::NodeAd& ad) { return add_node(ad); });
  return host.eval_script(rsl_script);
}

Status Controller::link_hosts(const std::string& host_a,
                              const std::string& host_b,
                              double bandwidth_mbps, double latency_ms) {
  if (cluster_finalized()) {
    return Status(ErrorCode::kClosed, "cluster is finalized");
  }
  pending_links_.push_back({host_a, host_b, bandwidth_mbps, latency_ms});
  return Status::Ok();
}

Status Controller::finalize_cluster() {
  if (cluster_finalized()) return Status::Ok();
  for (const auto& link : pending_links_) {
    auto a = state_.topology().find_by_hostname(link.from);
    auto b = state_.topology().find_by_hostname(link.to);
    if (!a.ok() || !b.ok()) {
      return Status(ErrorCode::kNotFound,
                    "link references unknown host: " + link.from + "<->" +
                        link.to);
    }
    auto status = state_.mutable_topology().add_link(a.value(), b.value(),
                                                     link.bandwidth_mbps,
                                                     link.latency_ms);
    if (!status.ok()) return status;
  }
  pending_links_.clear();
  if (state_.topology().node_count() == 0) {
    return Status(ErrorCode::kInvalidArgument, "cluster has no nodes");
  }
  state_.init_pool();
  optimizer_->set_names(names_context());
  return Status::Ok();
}

Status Controller::adopt_cluster(
    std::shared_ptr<const cluster::Topology> topology,
    std::vector<cluster::NodeId> scope, const Namespace* cluster_names) {
  if (cluster_finalized() || state_.topology().node_count() > 0) {
    return Status(ErrorCode::kClosed,
                  "adopt_cluster requires a pristine controller");
  }
  if (topology == nullptr || topology->node_count() == 0) {
    return Status(ErrorCode::kInvalidArgument, "empty shared topology");
  }
  for (cluster::NodeId node : scope) {
    if (node >= topology->node_count()) {
      return Status(ErrorCode::kInvalidArgument, "scope node out of range");
    }
  }
  // A scope spanning the whole cluster is just a full pool; dropping
  // the scope keeps this path bit-identical to finalize_cluster().
  if (scope.size() >= topology->node_count()) scope.clear();
  state_.adopt_topology(std::move(topology));
  names_.set_fallback(cluster_names);
  state_.init_pool(std::move(scope));
  optimizer_->set_names(names_context());
  return Status::Ok();
}

Result<InstanceId> Controller::register_application(
    const std::vector<rsl::BundleSpec>& bundles,
    const std::string& script_text) {
  assert_owner();
  if (bundles.empty()) {
    return Err<InstanceId>(ErrorCode::kInvalidArgument,
                           "application has no bundles");
  }
  for (size_t i = 1; i < bundles.size(); ++i) {
    if (bundles[i].application != bundles[0].application) {
      return Err<InstanceId>(ErrorCode::kInvalidArgument,
                             "bundles belong to different applications");
    }
  }
  auto finalized = finalize_cluster();
  if (!finalized.ok()) {
    return Err<InstanceId>(finalized.error().code, finalized.error().message);
  }
  EpochScope epoch(*this);

  InstanceState instance;
  instance.id = next_instance_id_++;
  instance.application = bundles[0].application;
  instance.arrival_time = now();
  if (!script_text.empty()) {
    instance.script = script_text;
  } else {
    for (const auto& spec : bundles) {
      instance.script += rsl::bundle_to_script(spec);
    }
  }
  for (const auto& spec : bundles) {
    if (instance.find_bundle(spec.bundle) != nullptr) {
      return Err<InstanceId>(ErrorCode::kAlreadyExists,
                             "duplicate bundle: " + spec.bundle);
    }
    BundleState bundle;
    bundle.spec = spec;
    instance.bundles.push_back(std::move(bundle));
  }
  state_.instances.push_back(std::move(instance));
  InstanceId id = state_.instances.back().id;

  auto decisions = optimizer_->on_arrival(state_, id, now());
  if (!decisions.ok()) {
    // Arrival failed (no feasible configuration): withdraw the instance.
    state_.instances.pop_back();
    return Err<InstanceId>(decisions.error().code, decisions.error().message);
  }
  apply_decisions(decisions.value());
  HLOG_INFO("controller") << "registered " << bundles[0].application << "."
                          << id;
  ControllerEvent event;
  event.kind = ControllerEvent::Kind::kRegister;
  event.instance = id;
  event.text = state_.instances.back().script;
  emit_event(std::move(event));
  return id;
}

Result<InstanceId> Controller::register_script(const std::string& rsl_script) {
  std::vector<rsl::BundleSpec> bundles;
  rsl::RslHost host;
  host.on_bundle([&bundles](const rsl::BundleSpec& bundle) {
    bundles.push_back(bundle);
    return Status::Ok();
  });
  auto status = host.eval_script(rsl_script);
  if (!status.ok()) {
    return Err<InstanceId>(status.error().code, status.error().message);
  }
  return register_application(bundles, rsl_script);
}

Status Controller::unregister(InstanceId id) {
  assert_owner();
  auto it = std::find_if(state_.instances.begin(), state_.instances.end(),
                         [id](const InstanceState& i) { return i.id == id; });
  if (it == state_.instances.end()) {
    return Status(ErrorCode::kNotFound, "no such instance");
  }
  EpochScope epoch(*this);
  for (auto& bundle : it->bundles) {
    if (bundle.configured) {
      auto released = cluster::Matcher::release(bundle.allocation,
                                                *state_.pool);
      HARMONY_ASSERT(released.ok());
      state_.touch_allocation(bundle.allocation);
    }
  }
  names_.erase(it->path());
  // The departed instance's names are gone, but memoized predictions
  // survive: cache keys embed the values read through the context, so
  // entries that depended on the erased names can no longer be hit.
  subscribers_.erase(id);
  pending_vars_.erase(id);
  state_.instances.erase(it);
  HLOG_INFO("controller") << "unregistered instance " << id;
  // "harmony_end(): the application is about to terminate and Harmony
  // should re-evaluate the application's resources."
  auto decisions = optimizer_->reevaluate(state_, now());
  if (!decisions.ok()) {
    return Status(decisions.error().code, decisions.error().message);
  }
  apply_decisions(decisions.value());
  ControllerEvent event;
  event.kind = ControllerEvent::Kind::kDepart;
  event.instance = id;
  emit_event(std::move(event));
  return Status::Ok();
}

Status Controller::reevaluate() {
  assert_owner();
  if (!cluster_finalized()) {
    return Status(ErrorCode::kInvalidArgument, "cluster not finalized");
  }
  EpochScope epoch(*this);
  auto decisions = optimizer_->reevaluate(state_, now());
  if (!decisions.ok()) {
    return Status(decisions.error().code, decisions.error().message);
  }
  apply_decisions(decisions.value());
  emit_event(ControllerEvent{});  // default kind is kReevaluate
  return Status::Ok();
}

Status Controller::set_option(InstanceId id, const std::string& bundle,
                              const OptionChoice& choice) {
  assert_owner();
  if (!cluster_finalized()) {
    return Status(ErrorCode::kInvalidArgument, "cluster not finalized");
  }
  EpochScope epoch(*this);
  auto decision = optimizer_->apply_choice(state_, id, bundle, choice, now());
  if (!decision.ok()) {
    return Status(decision.error().code, decision.error().message);
  }
  apply_decisions({decision.value()});
  ControllerEvent event;
  event.kind = ControllerEvent::Kind::kSetOption;
  event.instance = id;
  event.text = bundle;
  event.choice = choice;
  emit_event(std::move(event));
  return Status::Ok();
}

Status Controller::resize(InstanceId id, const std::string& bundle,
                          double workers) {
  assert_owner();
  if (!cluster_finalized()) {
    return Status(ErrorCode::kInvalidArgument, "cluster not finalized");
  }
  InstanceState* instance = state_.find_instance(id);
  if (instance == nullptr) {
    return Status(ErrorCode::kNotFound, "no such instance");
  }
  BundleState* target = instance->find_bundle(bundle);
  if (target == nullptr) {
    return Status(ErrorCode::kNotFound, "no such bundle: " + bundle);
  }
  if (!target->configured) {
    return Status(ErrorCode::kInvalidArgument,
                  "bundle not configured: " + bundle);
  }
  const rsl::OptionSpec* option =
      target->spec.find_option(target->choice.option);
  if (option == nullptr || option->variables.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "configured option exposes no parallelism variable");
  }
  const rsl::VariableSpec& variable = option->variables.front();
  // The new degree must be one of the application's exposed
  // alternatives — which also rejects nonpositive degrees, since a
  // valid bundle never declares them.
  if (workers <= 0 ||
      std::find(variable.values.begin(), variable.values.end(), workers) ==
          variable.values.end()) {
    return Status(ErrorCode::kInvalidArgument,
                  str_format("degree %g is not a declared value of %s.%s",
                             workers, bundle.c_str(),
                             variable.name.c_str()));
  }
  OptionChoice choice = target->choice;
  choice.variables[variable.name] = workers;
  if (choice == target->choice) return Status::Ok();  // already there

  EpochScope epoch(*this);
  auto decision = optimizer_->apply_choice(state_, id, bundle, choice, now());
  if (!decision.ok()) {
    return Status(decision.error().code, decision.error().message);
  }
  apply_decisions({decision.value()});
  metrics_.record(instance->path() + "." + bundle + ".degree", now(), workers);
  ControllerEvent event;
  event.kind = ControllerEvent::Kind::kResize;
  event.instance = id;
  event.text = bundle;
  event.value = workers;
  emit_event(std::move(event));
  return Status::Ok();
}

Status Controller::set_node_online(const std::string& hostname, bool online) {
  assert_owner();
  if (!cluster_finalized()) {
    return Status(ErrorCode::kInvalidArgument, "cluster not finalized");
  }
  auto node = state_.topology().find_by_hostname(hostname);
  if (!node.ok()) return Status(node.error().code, node.error().message);
  if (state_.pool->is_online(node.value()) == online) return Status::Ok();
  EpochScope epoch(*this);
  state_.pool->set_online(node.value(), online);
  state_.touch_node(node.value());
  metrics_.record("cluster." + hostname + ".online", now(), online ? 1 : 0);
  HLOG_INFO("controller") << hostname << (online ? " joined" : " left")
                          << " the cluster";

  std::vector<Decision> decisions;
  if (!online) {
    // Displace everything placed on the departed node.
    for (auto& instance : state_.instances) {
      for (auto& bundle : instance.bundles) {
        if (!bundle.configured) continue;
        bool uses = false;
        for (const auto& entry : bundle.allocation.entries) {
          if (entry.node == node.value()) uses = true;
        }
        if (!uses) continue;
        auto released =
            cluster::Matcher::release(bundle.allocation, *state_.pool);
        HARMONY_ASSERT(released.ok());
        state_.touch_allocation(bundle.allocation);
        bundle.configured = false;
        bundle.allocation = {};
        // A displaced bundle holds no argmin configuration anymore.
        bundle.evaluated_version = 0;
        decisions.push_back(
            Decision{instance.id, bundle.spec.bundle, OptionChoice{}, true});
      }
    }
  }
  // Re-optimize everyone: displaced bundles find new homes (or stay
  // unconfigured), survivors adapt to the new capacity.
  auto reoptimized = optimizer_->reevaluate(state_, now());
  if (!reoptimized.ok()) {
    return Status(reoptimized.error().code, reoptimized.error().message);
  }
  // A displaced bundle that found a home appears in both lists; keep
  // the re-optimization verdict in that case.
  for (auto& displaced : decisions) {
    bool superseded = false;
    for (const auto& decision : reoptimized.value()) {
      if (decision.instance == displaced.instance &&
          decision.bundle == displaced.bundle && decision.changed) {
        superseded = true;
      }
    }
    if (!superseded) reoptimized.value().push_back(displaced);
  }
  apply_decisions(reoptimized.value());
  ControllerEvent event;
  event.kind = ControllerEvent::Kind::kNodeOnline;
  event.text = hostname;
  event.value = online ? 1 : 0;
  emit_event(std::move(event));
  return Status::Ok();
}

Status Controller::report_external_load(const std::string& hostname,
                                        int concurrent_tasks) {
  assert_owner();
  if (!cluster_finalized()) {
    return Status(ErrorCode::kInvalidArgument, "cluster not finalized");
  }
  if (concurrent_tasks < 0) {
    return Status(ErrorCode::kInvalidArgument, "load must be non-negative");
  }
  auto node = state_.topology().find_by_hostname(hostname);
  if (!node.ok()) return Status(node.error().code, node.error().message);
  if (state_.pool->external_load(node.value()) == concurrent_tasks) {
    return Status::Ok();
  }
  EpochScope epoch(*this);
  state_.pool->set_external_load(node.value(), concurrent_tasks);
  // Load-only dirtiness: allocations are untouched, so bundles whose
  // models ignore contention need not re-evaluate (can_skip consults
  // node_load_version only for load-reading models).
  state_.touch_node_load(node.value());
  metrics_.record("cluster." + hostname + ".external_load", now(),
                  concurrent_tasks);
  HLOG_INFO("controller") << hostname << " external load -> "
                          << concurrent_tasks;
  auto decisions = optimizer_->reevaluate(state_, now());
  if (!decisions.ok()) {
    return Status(decisions.error().code, decisions.error().message);
  }
  apply_decisions(decisions.value());
  ControllerEvent event;
  event.kind = ControllerEvent::Kind::kExternalLoad;
  event.text = hostname;
  event.value = concurrent_tasks;
  emit_event(std::move(event));
  return Status::Ok();
}

Status Controller::restore_instance(
    const std::string& script, InstanceId id, double arrival_time,
    const std::vector<RestoredBundle>& bundles) {
  auto finalized = finalize_cluster();
  if (!finalized.ok()) return finalized;
  if (state_.find_instance(id) != nullptr) {
    return Status(ErrorCode::kAlreadyExists, "instance id already restored");
  }
  std::vector<rsl::BundleSpec> specs;
  rsl::RslHost host;
  host.on_bundle([&specs](const rsl::BundleSpec& bundle) {
    specs.push_back(bundle);
    return Status::Ok();
  });
  auto parsed = host.eval_script(script);
  if (!parsed.ok()) return parsed;
  if (specs.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "restored instance has no bundles");
  }

  InstanceState instance;
  instance.id = id;
  instance.application = specs[0].application;
  instance.arrival_time = arrival_time;
  instance.script = script;
  for (auto& spec : specs) {
    BundleState bundle;
    bundle.spec = std::move(spec);
    instance.bundles.push_back(std::move(bundle));
  }
  for (const auto& restored : bundles) {
    BundleState* bundle = instance.find_bundle(restored.bundle);
    if (bundle == nullptr) {
      return Status(ErrorCode::kNotFound,
                    "restored bundle not in spec: " + restored.bundle);
    }
    bundle->choice = restored.choice;
    bundle->configured = restored.configured;
    bundle->last_switch_time = restored.last_switch_time;
    if (!restored.configured) continue;
    // Re-reserve exactly what the matcher reserved pre-crash (memory +
    // one process per placed requirement).
    for (const auto& entry : restored.entries) {
      auto node = state_.topology().find_by_hostname(entry.hostname);
      if (!node.ok()) return Status(node.error().code, node.error().message);
      auto reserved = state_.pool->reserve_memory(node.value(),
                                                  entry.memory_mb);
      if (!reserved.ok()) return reserved;
      state_.pool->add_process(node.value());
      cluster::Allocation::Entry allocated;
      allocated.requirement.role = entry.role;
      allocated.requirement.index = entry.index;
      allocated.requirement.hostname_glob = entry.hostname_glob;
      allocated.requirement.os = entry.os;
      allocated.requirement.memory_mb = entry.memory_mb;
      allocated.node = node.value();
      bundle->allocation.entries.push_back(std::move(allocated));
    }
    state_.touch_allocation(bundle->allocation);
  }
  // Insert in id order: snapshot restores arrive ascending, but a
  // domain merge can restore an older instance into a controller that
  // already holds younger ones, and find_instance binary-searches.
  auto pos = std::lower_bound(
      state_.instances.begin(), state_.instances.end(), id,
      [](const InstanceState& existing, InstanceId key) {
        return existing.id < key;
      });
  pos = state_.instances.insert(pos, std::move(instance));
  next_instance_id_ = std::max(next_instance_id_, id + 1);
  publish_instance(*pos);
  // Refresh the optimizer's view of the namespace, as apply_decisions
  // would after a republish.
  optimizer_->set_names(names_context());
  return Status::Ok();
}

Status Controller::restore_external_load(const std::string& hostname,
                                         int tasks) {
  auto finalized = finalize_cluster();
  if (!finalized.ok()) return finalized;
  auto node = state_.topology().find_by_hostname(hostname);
  if (!node.ok()) return Status(node.error().code, node.error().message);
  state_.pool->set_external_load(node.value(), tasks);
  state_.touch_node_load(node.value());
  return Status::Ok();
}

Status Controller::restore_node_online(const std::string& hostname,
                                       bool online) {
  auto finalized = finalize_cluster();
  if (!finalized.ok()) return finalized;
  auto node = state_.topology().find_by_hostname(hostname);
  if (!node.ok()) return Status(node.error().code, node.error().message);
  state_.pool->set_online(node.value(), online);
  state_.touch_node(node.value());
  return Status::Ok();
}

void Controller::restore_counters(InstanceId next_instance_id,
                                  uint64_t reconfigurations) {
  next_instance_id_ = std::max(next_instance_id_, next_instance_id);
  reconfigurations_ = reconfigurations;
}

Status Controller::subscribe(InstanceId id, UpdateHandler handler) {
  assert_owner();
  if (state_.find_instance(id) == nullptr) {
    return Status(ErrorCode::kNotFound, "no such instance");
  }
  EpochScope epoch(*this);
  subscribers_[id] = std::move(handler);
  // Send the instance its current configuration immediately so late
  // subscribers do not miss the arrival decision. Anything still queued
  // from before the subscription (the arrival decision, or decisions
  // replayed from the journal while no subscriber existed) is
  // superseded by this replay — dropping it is what guarantees a
  // resumed client observes only the latest configuration, never an
  // intermediate one.
  pending_vars_[id].clear();
  const InstanceState* instance = state_.find_instance(id);
  std::vector<Decision> synthetic;
  for (const auto& bundle : instance->bundles) {
    if (bundle.configured) {
      synthetic.push_back(
          Decision{id, bundle.spec.bundle, bundle.choice, true});
    }
  }
  queue_updates(*instance, synthetic);
  return Status::Ok();
}

void Controller::flush_pending_vars() {
  assert_owner();
  if (pending_dirty_.empty()) return;
  // Only instances with something queued are visited: the flush runs at
  // the close of every epoch (every network message under the TCP
  // server), so it must not scale with the number of live instances.
  // Deterministic delivery order: instance id, then queue order.
  std::vector<InstanceId> dirty;
  dirty.swap(pending_dirty_);
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  std::vector<InstanceId> undelivered;
  for (InstanceId id : dirty) {
    auto queued = pending_vars_.find(id);
    if (queued == pending_vars_.end() || queued->second.empty()) continue;
    auto& updates = queued->second;
    auto handler = subscribers_.find(id);
    if (handler == subscribers_.end()) {
      // No subscriber yet (the arrival decision precedes the client
      // library's subscribe): keep the updates queued.
      undelivered.push_back(id);
      continue;
    }
    if (!handler->second) {
      // Empty handler = subscription parked (the TCP server keeps the
      // slot while a resumable client is disconnected). Intermediate
      // values are dropped; resume replays the current configuration.
      updates.clear();
      continue;
    }
    for (const auto& [name, value] : updates) handler->second(name, value);
    updates.clear();
  }
  pending_dirty_.insert(pending_dirty_.end(), undelivered.begin(),
                        undelivered.end());
}

Result<std::string> Controller::get_variable(InstanceId id,
                                             const std::string& name) const {
  assert_owner();
  const InstanceState* instance = state_.find_instance(id);
  if (instance == nullptr) {
    return Err<std::string>(ErrorCode::kNotFound, "no such instance");
  }
  return names_.get_string(instance->path() + "." + name);
}

Result<double> Controller::objective_value() const {
  return optimizer_->objective_value(state_);
}

Result<std::vector<std::pair<InstanceId, double>>> Controller::predictions()
    const {
  return optimizer_->predict_all(state_);
}

std::vector<std::tuple<InstanceId, double, double>> Controller::deadline_terms()
    const {
  std::vector<std::tuple<InstanceId, double, double>> out;
  for (const auto& instance : state_.instances) {
    double deadline = 0, weight = 1;
    if (instance_deadline(instance, &deadline, &weight)) {
      out.emplace_back(instance.id, deadline, weight);
    }
  }
  return out;
}

const BundleState* Controller::bundle_state(InstanceId id,
                                            const std::string& bundle) const {
  const InstanceState* instance = state_.find_instance(id);
  if (instance == nullptr) return nullptr;
  return instance->find_bundle(bundle);
}

void Controller::publish_instance(const InstanceState& instance) {
  const std::string root = instance.path();
  names_.erase(root);
  must_set(names_, root + ".arrival", instance.arrival_time);
  for (const auto& bundle : instance.bundles) {
    if (!bundle.configured) continue;
    const std::string broot = root + "." + bundle.spec.bundle;
    must_set_string(names_, broot + ".option", bundle.choice.option);
    must_set(names_, broot + ".switched", bundle.last_switch_time);
    for (const auto& [var, value] : bundle.choice.variables) {
      must_set(names_, broot + "." + var, value);
    }
    const std::string oroot = broot + "." + bundle.choice.option;
    std::map<std::string, int> role_counts;
    for (const auto& entry : bundle.allocation.entries) {
      const auto& req = entry.requirement;
      const auto& node = state_.topology().node(entry.node);
      ++role_counts[req.role];
      std::string rroot = oroot + "." + req.role;
      if (req.index > 0) rroot += str_format(".%d", req.index);
      must_set_string(names_, rroot + ".node", node.hostname);
      must_set(names_, rroot + ".memory", req.memory_mb);
      must_set(names_, rroot + ".speed", node.speed);
    }
    for (const auto& [role, count] : role_counts) {
      must_set(names_, oroot + "." + role + ".count", count);
    }
  }
}

void Controller::queue_updates(const InstanceState& instance,
                               const std::vector<Decision>& decisions) {
  for (const auto& decision : decisions) {
    if (decision.instance != instance.id || !decision.changed) continue;
    const BundleState* bundle = instance.find_bundle(decision.bundle);
    if (bundle == nullptr) continue;
    auto& queue = pending_vars_[instance.id];
    if (queue.empty()) pending_dirty_.push_back(instance.id);
    if (!bundle->configured) {
      // Displaced with nowhere to go: the application learns its bundle
      // currently has no configuration, and every role's placement
      // variables are cleared so pollers and interrupt handlers never
      // read a stale host list.
      queue.emplace_back(decision.bundle, "");
      std::set<std::string> roles;
      for (const auto& option : bundle->spec.options) {
        for (const auto& node : option.nodes) roles.insert(node.role);
      }
      for (const auto& role : roles) {
        queue.emplace_back(decision.bundle + "." + role + ".node", "");
        queue.emplace_back(decision.bundle + "." + role + ".nodes", "");
      }
      continue;
    }
    queue.emplace_back(decision.bundle, bundle->choice.option);
    for (const auto& [var, value] : bundle->choice.variables) {
      queue.emplace_back(var, format_number(value));
    }
    std::map<std::string, std::vector<std::string>> role_hosts;
    std::map<std::string, double> role_memory;
    for (const auto& entry : bundle->allocation.entries) {
      role_hosts[entry.requirement.role].push_back(
          state_.topology().node(entry.node).hostname);
      if (entry.requirement.index == 0) {
        role_memory[entry.requirement.role] = entry.requirement.memory_mb;
      }
    }
    for (const auto& [role, hosts] : role_hosts) {
      queue.emplace_back(decision.bundle + "." + role + ".node", hosts[0]);
      queue.emplace_back(decision.bundle + "." + role + ".nodes",
                         join(hosts, " "));
      queue.emplace_back(decision.bundle + "." + role + ".memory",
                         format_number(role_memory[role]));
    }
  }
}

void Controller::apply_decisions(const std::vector<Decision>& decisions) {
  epoch_applied_ = true;
  // Republish only instances whose configuration actually changed:
  // everyone else's namespace entries are already current, and leaving
  // them alone is what lets the prediction cache survive quiet epochs.
  std::unordered_set<InstanceId> republish;
  for (const auto& decision : decisions) {
    if (decision.changed) republish.insert(decision.instance);
  }
  for (const auto& instance : state_.instances) {
    if (republish.count(instance.id) == 0) continue;
    publish_instance(instance);
    queue_updates(instance, decisions);
  }
  for (const auto& decision : decisions) {
    if (decision.changed) {
      ++reconfigurations_;
      metrics_.record("controller.reconfigurations", now(),
                      static_cast<double>(reconfigurations_));
    }
  }
  if (config_.record_objective_metric) {
    auto objective = optimizer_->objective_value(state_);
    if (objective.ok()) {
      metrics_.record("controller.objective", now(), objective.value());
    }
  }
  // Namespace content changed only if something was republished; the
  // fresh context reaches the optimizer, whose memoized predictions
  // key on the values read through it and so age out by themselves.
  if (!republish.empty()) optimizer_->set_names(names_context());
  // Variable delivery is deferred to the outermost epoch close.
}

}  // namespace harmony::core
