#include "net/tcp_transport.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/logging.h"
#include "common/strings.h"
#include "metric/telemetry.h"

namespace harmony::net {

Status TcpTransport::connect(const std::string& host, uint16_t port) {
  return connect(std::vector<Endpoint>{{host, port}});
}

Status TcpTransport::connect(std::vector<Endpoint> endpoints) {
  if (endpoints.empty()) {
    return Status(ErrorCode::kInvalidArgument, "no endpoints to connect to");
  }
  endpoints_ = std::move(endpoints);
  endpoint_cursor_ = 0;
  Status last(ErrorCode::kTransport, "connect failed");
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    const Endpoint& endpoint = current_endpoint();
    auto fd = connect_to(endpoint.host, endpoint.port);
    if (fd.ok()) {
      fd_ = std::move(fd).value();
      return Status::Ok();
    }
    last = Status(fd.error().code, fd.error().message);
    ++endpoint_cursor_;
  }
  return last;
}

void TcpTransport::backoff_sleep() {
  const int base = std::max(1, policy_.initial_backoff_ms);
  const int cap = std::max(base, policy_.max_backoff_ms);
  int sleep_ms;
  if (!policy_.jitter) {
    // Legacy deterministic doubling.
    sleep_ms = prev_backoff_ms_ == 0 ? base
                                     : std::min(cap, prev_backoff_ms_ * 2);
  } else {
    // Decorrelated jitter (Brooker): sleep = min(cap, uniform[base,
    // 3 * prev]). Grows like exponential backoff in expectation but
    // every client walks its own path, so a failover's reconnect storm
    // arrives spread instead of in synchronized waves.
    if (!jitter_seeded_) {
      uint64_t seed = policy_.jitter_seed;
      if (seed == 0) {
        seed = static_cast<uint64_t>(
                   std::chrono::steady_clock::now().time_since_epoch().count()) ^
               (reinterpret_cast<uintptr_t>(this) << 16);
      }
      jitter_rng_.reseed(seed);
      jitter_seeded_ = true;
    }
    const int prev = prev_backoff_ms_ == 0 ? base : prev_backoff_ms_;
    const uint64_t span =
        static_cast<uint64_t>(std::max(1, prev * 3 - base)) + 1;
    sleep_ms = static_cast<int>(std::min(
        static_cast<uint64_t>(cap),
        static_cast<uint64_t>(base) + jitter_rng_.next_below(span)));
  }
  prev_backoff_ms_ = sleep_ms;
  std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
}

void TcpTransport::aim_at_hint(const Message& reply) {
  // {ERR not_primary <host:port>}: aim straight at the hinted primary
  // when it parses and is one of ours (or append it); otherwise just
  // try the next endpoint.
  if (reply.args.size() >= 2 && !reply.args[1].empty()) {
    const std::string& hint = reply.args[1];
    const size_t colon = hint.rfind(':');
    long long port = 0;
    if (colon != std::string::npos && colon > 0 &&
        parse_int64(hint.substr(colon + 1), &port) && port > 0 &&
        port <= 65535) {
      Endpoint target{hint.substr(0, colon), static_cast<uint16_t>(port)};
      for (size_t i = 0; i < endpoints_.size(); ++i) {
        if (endpoints_[i].host == target.host &&
            endpoints_[i].port == target.port) {
          endpoint_cursor_ = i;
          return;
        }
      }
      endpoints_.push_back(target);
      endpoint_cursor_ = endpoints_.size() - 1;
      return;
    }
  }
  ++endpoint_cursor_;
}

void TcpTransport::close() { fd_ = Fd(); }

Result<Message> TcpTransport::read_message(bool wait) {
  while (true) {
    auto frame = inbound_.next_frame();
    if (!frame.ok()) {
      return Err<Message>(frame.error().code, frame.error().message);
    }
    if (frame.value().has_value()) return Message::decode(*frame.value());
    // Need more bytes.
    auto status = set_nonblocking(fd_, !wait);
    if (!status.ok()) return Err<Message>(status.error().code, status.error().message);
    char buffer[4096];
    auto n = read_some(fd_, buffer, sizeof(buffer));
    if (!n.ok()) return Err<Message>(n.error().code, n.error().message);
    if (n.value() == 0) {
      if (!wait) {
        return Err<Message>(ErrorCode::kTimeout, "no message available");
      }
      continue;
    }
    inbound_.feed(std::string_view(buffer, n.value()));
  }
}

void TcpTransport::dispatch_update(const Message& message) {
  if (message.args.size() != 2) return;
  if (resuming_) {
    metric::telemetry_counter("client.resume_replays_total").increment();
  }
  if (handlers_.empty()) {
    undelivered_.emplace_back(message.args[0], message.args[1]);
    return;
  }
  // Updates are broadcast per connection; with several instances on one
  // connection every handler sees the stream (names are per instance
  // anyway, and one app per connection is the normal shape).
  for (auto& [id, handler] : handlers_) {
    if (handler) handler(message.args[0], message.args[1]);
  }
}

Result<Message> TcpTransport::call_once(const Message& request) {
  if (!fd_.valid()) {
    return Err<Message>(ErrorCode::kClosed, "not connected");
  }
  auto nb = set_nonblocking(fd_, false);
  if (!nb.ok()) return Err<Message>(nb.error().code, nb.error().message);
  auto sent = write_all(fd_, encode_frame(request.encode()));
  if (!sent.ok()) return Err<Message>(sent.error().code, sent.error().message);
  while (true) {
    auto message = read_message(/*wait=*/true);
    if (!message.ok()) return message;
    if (message.value().verb == "UPDATE") {
      dispatch_update(message.value());
      continue;
    }
    return message;
  }
}

Status TcpTransport::reconnect_fresh() {
  if (endpoints_.empty() || policy_.max_attempts <= 0) {
    return Status(ErrorCode::kClosed, "nowhere to reconnect");
  }
  fd_ = Fd();
  inbound_ = FrameBuffer();
  reset_backoff();
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    backoff_sleep();
    auto fd = connect_to(current_endpoint().host, current_endpoint().port);
    if (!fd.ok()) {
      ++endpoint_cursor_;  // try the next endpoint on the next attempt
      continue;
    }
    fd_ = std::move(fd).value();
    metric::telemetry_counter("client.reconnects_total").increment();
    return Status::Ok();
  }
  return Status(ErrorCode::kTransport, "reconnect attempts exhausted");
}

Status TcpTransport::reconnect_and_resume() {
  if (session_token_.empty() || endpoints_.empty() ||
      policy_.max_attempts <= 0) {
    return Status(ErrorCode::kClosed, "no resumable session");
  }
  fd_ = Fd();
  // Half a frame from the dead connection must not prefix the new one.
  inbound_ = FrameBuffer();
  reset_backoff();
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    backoff_sleep();
    const Endpoint& endpoint = current_endpoint();
    auto fd = connect_to(endpoint.host, endpoint.port);
    if (!fd.ok()) {
      HLOG_DEBUG("transport") << "reconnect attempt " << attempt << " to "
                              << endpoint.host << ":" << endpoint.port
                              << " failed: " << fd.error().message;
      // A refused endpoint may be the dead primary; fan the next
      // attempt to the next one while it (or a promoted standby)
      // comes up.
      ++endpoint_cursor_;
      continue;
    }
    fd_ = std::move(fd).value();
    resuming_ = true;
    auto reply = call_once(Message{"RESUME", {session_token_}});
    resuming_ = false;
    if (!reply.ok()) {
      fd_ = Fd();
      inbound_ = FrameBuffer();
      continue;  // server may still be coming back up
    }
    if (not_primary_error(reply.value())) {
      // A live standby answered: the cluster exists, the primary is
      // elsewhere. Re-aim (the refusal names the primary when the
      // standby knows it) and keep trying.
      fd_ = Fd();
      inbound_ = FrameBuffer();
      aim_at_hint(reply.value());
      continue;
    }
    if (reply.value().verb != "OK") {
      // Connected but the session is gone (expired, or the server lost
      // its state): retrying will not change the answer.
      fd_ = Fd();
      return Status(ErrorCode::kNotFound,
                    reply.value().args.size() == 2 ? reply.value().args[1]
                                                   : "session not resumable");
    }
    // The OK carries the session's instance ids as the server sees
    // them; call() consults the list to decide whether an in-flight
    // REGISTER was applied before the connection died.
    resumed_ids_.clear();
    for (const std::string& id_text : reply.value().args) {
      unsigned long long id = 0;
      if (std::sscanf(id_text.c_str(), "%llu", &id) == 1) {
        resumed_ids_.push_back(static_cast<core::InstanceId>(id));
      }
    }
    HLOG_INFO("transport") << "session resumed after " << attempt
                           << " attempt(s)";
    metric::telemetry_counter("client.reconnects_total").increment();
    return Status::Ok();
  }
  return Status(ErrorCode::kTransport, "reconnect attempts exhausted");
}

Result<Message> TcpTransport::call(const Message& request, bool retry) {
  auto reply = call_once(request);
  if (reply.ok() && retry && not_primary_error(reply.value())) {
    // The endpoint demoted under us (or we connected to a standby
    // before any session existed). Follow the hint to the primary and
    // retransmit: the refused request never touched decision state.
    aim_at_hint(reply.value());
    Status moved = session_token_.empty() ? reconnect_fresh()
                                          : reconnect_and_resume();
    if (!moved.ok()) return reply;  // surface the refusal
    return call_once(request);
  }
  if (reply.ok() || !retry || !transport_failure(reply.error().code)) {
    return reply;
  }
  auto resumed = reconnect_and_resume();
  if (!resumed.ok()) return reply;  // surface the original failure
  if (request.verb == "REGISTER") {
    // The lost REGISTER may have been applied before the connection
    // died; retransmitting would register a duplicate instance that
    // holds cluster reservations until the session ends. RESUME
    // returned the session's ids as the server sees them: an id we
    // never saw a REGISTER reply for is that orphaned registration —
    // adopt it as the reply instead of re-sending.
    std::vector<core::InstanceId> unaccounted;
    for (core::InstanceId id : resumed_ids_) {
      if (std::find(registered_ids_.begin(), registered_ids_.end(), id) ==
          registered_ids_.end()) {
        unaccounted.push_back(id);
      }
    }
    if (unaccounted.size() == 1) {
      return Message::ok(
          {str_format("%llu",
                      static_cast<unsigned long long>(unaccounted[0])),
           session_token_});
    }
    if (!unaccounted.empty()) {
      // Only one REGISTER can be in flight on this synchronous
      // transport; several unaccounted ids mean the session is not
      // what we think it is.
      return Err<Message>(ErrorCode::kProtocol,
                          "resumed session holds instances this client "
                          "never registered");
    }
    // No unaccounted instance: the REGISTER never applied, so the
    // retransmission below is the first delivery.
  }
  // At-most-once retransmission: for the idempotent verbs (GET,
  // REEVALUATE, END-of-gone-instance) a duplicate is safe, and a
  // REGISTER only reaches here once proven unapplied.
  return call_once(request);
}

Result<core::InstanceId> TcpTransport::register_app(
    const std::string& script) {
  auto reply = call(Message{"REGISTER", {script, "2"}});
  if (!reply.ok()) return Err<core::InstanceId>(reply.error().code, reply.error().message);
  if (reply.value().verb != "OK" || reply.value().args.empty()) {
    return Err<core::InstanceId>(
        ErrorCode::kProtocol,
        reply.value().verb == "ERR" && reply.value().args.size() == 2
            ? reply.value().args[1]
            : "unexpected reply");
  }
  unsigned long long id = 0;
  if (std::sscanf(reply.value().args[0].c_str(), "%llu", &id) != 1) {
    return Err<core::InstanceId>(ErrorCode::kProtocol, "bad instance id");
  }
  if (reply.value().args.size() >= 2) {
    session_token_ = reply.value().args[1];
  }
  registered_ids_.push_back(static_cast<core::InstanceId>(id));
  return static_cast<core::InstanceId>(id);
}

Status TcpTransport::unregister(core::InstanceId id) {
  // No reconnect dance on teardown: if the server is unreachable it
  // synthesizes the DEPART itself, and a departing client must not
  // stall in backoff loops.
  auto reply = call(
      Message{"END",
              {str_format("%llu", static_cast<unsigned long long>(id))}},
      /*retry=*/false);
  handlers_.erase(id);
  registered_ids_.erase(
      std::remove(registered_ids_.begin(), registered_ids_.end(), id),
      registered_ids_.end());
  if (!reply.ok()) return Status(reply.error().code, reply.error().message);
  if (reply.value().verb != "OK") {
    return Status(ErrorCode::kProtocol,
                  reply.value().args.size() == 2 ? reply.value().args[1]
                                                 : "unexpected reply");
  }
  return Status::Ok();
}

Status TcpTransport::subscribe(core::InstanceId id, UpdateHandler handler) {
  // The server wires the push channel at REGISTER; locally we only
  // remember where to deliver — and replay anything that arrived before
  // the handler existed (the initial configuration snapshot).
  handlers_[id] = std::move(handler);
  auto replay = std::move(undelivered_);
  undelivered_.clear();
  auto& installed = handlers_[id];
  for (const auto& [name, value] : replay) {
    if (installed) installed(name, value);
  }
  return Status::Ok();
}

Result<std::string> TcpTransport::get_variable(core::InstanceId id,
                                               const std::string& name) {
  auto reply = call(Message{
      "GET",
      {str_format("%llu", static_cast<unsigned long long>(id)), name}});
  if (!reply.ok()) return Err<std::string>(reply.error().code, reply.error().message);
  if (reply.value().verb != "OK" || reply.value().args.size() != 1) {
    return Err<std::string>(ErrorCode::kNotFound,
                            reply.value().args.size() == 2
                                ? reply.value().args[1]
                                : "unexpected reply");
  }
  return reply.value().args[0];
}

Status TcpTransport::pump(bool wait) {
  if (!fd_.valid()) return Status(ErrorCode::kClosed, "not connected");
  bool first = true;
  while (true) {
    auto message = read_message(/*wait=*/wait && first);
    if (!message.ok()) {
      if (message.error().code == ErrorCode::kTimeout) return Status::Ok();
      if (transport_failure(message.error().code) &&
          !session_token_.empty()) {
        // The server went away mid-poll; RESUME replays the current
        // configuration as UPDATE frames, so the caller's
        // wait_for_update contract survives the restart.
        auto resumed = reconnect_and_resume();
        if (!resumed.ok()) return resumed;
        first = false;
        continue;
      }
      return Status(message.error().code, message.error().message);
    }
    first = false;
    if (message.value().verb == "UPDATE") {
      dispatch_update(message.value());
    }
    // Non-UPDATE frames outside a call would be a server bug; drop them.
  }
}

Status TcpTransport::request_reevaluation() {
  auto reply = call(Message{"REEVALUATE", {}});
  if (!reply.ok()) return Status(reply.error().code, reply.error().message);
  return reply.value().verb == "OK"
             ? Status::Ok()
             : Status(ErrorCode::kProtocol, "reevaluate failed");
}

Status TcpTransport::report_load(const std::string& hostname,
                                 int concurrent_tasks) {
  auto reply = call(Message{"LOAD", {hostname, str_format("%d",
                                                          concurrent_tasks)}});
  if (!reply.ok()) return Status(reply.error().code, reply.error().message);
  if (reply.value().verb != "OK") {
    return Status(ErrorCode::kProtocol,
                  reply.value().args.size() == 2 ? reply.value().args[1]
                                                 : "load report failed");
  }
  return Status::Ok();
}

Status TcpTransport::set_option(core::InstanceId id, const std::string& bundle,
                                const std::string& option) {
  auto reply = call(
      Message{"SET",
              {str_format("%llu", static_cast<unsigned long long>(id)),
               bundle, option}});
  if (!reply.ok()) return Status(reply.error().code, reply.error().message);
  if (reply.value().verb != "OK") {
    return Status(ErrorCode::kProtocol,
                  reply.value().args.size() == 2 ? reply.value().args[1]
                                                 : "steering failed");
  }
  return Status::Ok();
}

Status TcpTransport::resize(core::InstanceId id, const std::string& bundle,
                            double workers) {
  auto reply = call(
      Message{"RESIZE",
              {str_format("%llu", static_cast<unsigned long long>(id)),
               bundle, format_number(workers)}});
  if (!reply.ok()) return Status(reply.error().code, reply.error().message);
  if (reply.value().verb != "OK") {
    return Status(ErrorCode::kProtocol,
                  reply.value().args.size() == 2 ? reply.value().args[1]
                                                 : "resize failed");
  }
  return Status::Ok();
}

}  // namespace harmony::net
