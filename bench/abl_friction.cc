// Ablation A2 — frictional cost vs reconfiguration thrash. §3 requires
// the interface to "express the frictional cost of switching from one
// option to another... must be considered when Harmony makes
// re-allocation decisions." Here a third database client oscillates
// (joins, leaves, joins, ...), placing the system right at the QS/DS
// crossover. Without friction the survivors flip on every arrival and
// departure; with friction the controller leaves them alone unless the
// gain exceeds the switching cost.
#include <cstdio>
#include <vector>

#include "apps/scenarios.h"
#include "common/strings.h"
#include "core/controller.h"

namespace {

using namespace harmony;
using namespace harmony::apps;

std::string bundle_with_friction(const std::string& host, int instance,
                                 double friction) {
  return str_format(
      "harmonyBundle DBclient:%d where {\n"
      "  {QS {node server {hostname server} {seconds 18} {memory 20}}\n"
      "      {node client {hostname %s} {seconds 0.1} {memory 2}}\n"
      "      {link client server 0.05} {friction %g}}\n"
      "  {DS {node server {hostname server} {seconds 2} {memory 20}}\n"
      "      {node client {hostname %s} {memory >=17} {seconds 16.2}}\n"
      "      {link client server 2.5} {friction %g}}\n"
      "}\n",
      instance, host.c_str(), host.c_str(), friction, friction);
}

struct OscillationResult {
  uint64_t reconfigurations = 0;
  double final_objective = 0;
  bool ok = true;
};

OscillationResult run_with_friction(double friction, int cycles) {
  core::Controller controller;
  OscillationResult result;
  if (!controller.add_nodes_script(db_cluster_script(3)).ok() ||
      !controller.finalize_cluster().ok()) {
    result.ok = false;
    return result;
  }
  double now = 0;
  controller.set_time_source([&now] { return now; });
  std::vector<core::InstanceId> stable;
  for (int i = 1; i <= 2; ++i) {
    auto id = controller.register_script(
        bundle_with_friction(str_format("sp2-%02d", i - 1), i, friction));
    if (!id.ok()) {
      result.ok = false;
      return result;
    }
    stable.push_back(id.value());
  }
  uint64_t baseline = controller.reconfigurations();
  for (int cycle = 0; cycle < cycles; ++cycle) {
    now += 50;
    auto id = controller.register_script(
        bundle_with_friction("sp2-02", 100 + cycle, friction));
    if (!id.ok()) {
      result.ok = false;
      return result;
    }
    now += 50;
    if (!controller.unregister(id.value()).ok()) {
      result.ok = false;
      return result;
    }
  }
  // Count only the churn on the two stable clients (each oscillation
  // cycle inevitably reconfigures the transient client once).
  result.reconfigurations =
      controller.reconfigurations() - baseline -
      static_cast<uint64_t>(cycles);  // transient arrivals themselves
  auto objective = controller.objective_value();
  result.final_objective = objective.ok() ? objective.value() : -1;
  return result;
}

int run() {
  std::printf("=== Ablation A2: frictional cost damps reconfiguration "
              "thrash ===\n");
  std::printf("scenario: 2 stable DB clients + a third that joins/leaves "
              "every 50 s for 10 cycles\n\n");
  std::printf("friction_s   stable-client reconfigurations   final "
              "objective\n");
  bool ok = true;
  uint64_t no_friction_churn = 0;
  uint64_t high_friction_churn = 0;
  for (double friction : {0.0, 1.0, 5.0, 20.0, 100.0}) {
    auto result = run_with_friction(friction, 10);
    ok = ok && result.ok;
    std::printf("%10.1f   %33llu   %15.3f\n", friction,
                static_cast<unsigned long long>(result.reconfigurations),
                result.final_objective);
    if (friction == 0.0) no_friction_churn = result.reconfigurations;
    if (friction == 100.0) high_friction_churn = result.reconfigurations;
  }
  std::printf("\nsummary: churn without friction = %llu, with heavy friction "
              "= %llu (%s)\n",
              static_cast<unsigned long long>(no_friction_churn),
              static_cast<unsigned long long>(high_friction_churn),
              high_friction_churn < no_friction_churn
                  ? "friction suppresses thrash"
                  : "no effect");
  return ok && high_friction_churn < no_friction_churn ? 0 : 1;
}

}  // namespace

int main() { return run(); }
