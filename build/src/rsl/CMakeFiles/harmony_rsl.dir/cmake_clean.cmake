file(REMOVE_RECURSE
  "CMakeFiles/harmony_rsl.dir/builtins.cc.o"
  "CMakeFiles/harmony_rsl.dir/builtins.cc.o.d"
  "CMakeFiles/harmony_rsl.dir/expr.cc.o"
  "CMakeFiles/harmony_rsl.dir/expr.cc.o.d"
  "CMakeFiles/harmony_rsl.dir/interp.cc.o"
  "CMakeFiles/harmony_rsl.dir/interp.cc.o.d"
  "CMakeFiles/harmony_rsl.dir/parser.cc.o"
  "CMakeFiles/harmony_rsl.dir/parser.cc.o.d"
  "CMakeFiles/harmony_rsl.dir/rsl.cc.o"
  "CMakeFiles/harmony_rsl.dir/rsl.cc.o.d"
  "CMakeFiles/harmony_rsl.dir/spec.cc.o"
  "CMakeFiles/harmony_rsl.dir/spec.cc.o.d"
  "CMakeFiles/harmony_rsl.dir/value.cc.o"
  "CMakeFiles/harmony_rsl.dir/value.cc.o.d"
  "libharmony_rsl.a"
  "libharmony_rsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_rsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
