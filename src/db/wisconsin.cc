#include "db/wisconsin.h"

#include <algorithm>
#include <cstdio>

#include "common/rng.h"

namespace harmony::db {

namespace {

// The classic Wisconsin string attribute: 52 chars, first/last letters
// cycle with the value, padded with 'x'.
void fill_string(std::array<char, 52>* out, int32_t value, char salt) {
  out->fill('x');
  char head[8];
  std::snprintf(head, sizeof(head), "%c%06d", salt, value % 1000000);
  std::copy(head, head + 7, out->begin());
}

}  // namespace

std::vector<WisconsinTuple> generate_wisconsin(size_t n, uint64_t seed) {
  // Random permutation for unique1 via Fisher-Yates with our RNG.
  std::vector<int32_t> permutation(n);
  for (size_t i = 0; i < n; ++i) permutation[i] = static_cast<int32_t>(i);
  Rng rng(seed);
  for (size_t i = n; i > 1; --i) {
    size_t j = rng.next_below(i);
    std::swap(permutation[i - 1], permutation[j]);
  }

  std::vector<WisconsinTuple> tuples(n);
  for (size_t i = 0; i < n; ++i) {
    WisconsinTuple& t = tuples[i];
    int32_t u1 = permutation[i];
    t.unique1 = u1;
    t.unique2 = static_cast<int32_t>(i);
    t.two = u1 % 2;
    t.four = u1 % 4;
    t.ten = u1 % 10;
    t.twenty = u1 % 20;
    t.one_percent = t.unique2 % 100;
    t.ten_percent = t.unique2 % 10;
    t.twenty_percent = u1 % 5;
    t.fifty_percent = u1 % 2;
    t.unique3 = u1;
    t.even_one_percent = t.one_percent * 2;
    t.odd_one_percent = t.one_percent * 2 + 1;
    fill_string(&t.stringu1, u1, 'A');
    fill_string(&t.stringu2, t.unique2, 'B');
    fill_string(&t.string4, u1 % 4, 'V');
  }
  return tuples;
}

}  // namespace harmony::db
