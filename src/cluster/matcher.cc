#include "cluster/matcher.h"

#include <algorithm>

#include "common/strings.h"

namespace harmony::cluster {

const char* match_policy_name(MatchPolicy policy) {
  switch (policy) {
    case MatchPolicy::kFirstFit: return "first-fit";
    case MatchPolicy::kBestFit: return "best-fit";
    case MatchPolicy::kWorstFit: return "worst-fit";
  }
  return "unknown";
}

NodeId Allocation::find(const std::string& role, int index) const {
  for (const auto& entry : entries) {
    if (entry.requirement.role == role && entry.requirement.index == index) {
      return entry.node;
    }
  }
  return kInvalidNode;
}

std::vector<NodeId> Allocation::nodes_for(const std::string& role) const {
  std::vector<std::pair<int, NodeId>> hits;
  for (const auto& entry : entries) {
    if (entry.requirement.role == role) {
      hits.emplace_back(entry.requirement.index, entry.node);
    }
  }
  std::sort(hits.begin(), hits.end());
  std::vector<NodeId> nodes;
  nodes.reserve(hits.size());
  for (const auto& [index, node] : hits) nodes.push_back(node);
  return nodes;
}

bool Allocation::same_placement(const Allocation& other) const {
  if (entries.size() != other.entries.size()) return false;
  for (const auto& entry : entries) {
    if (other.find(entry.requirement.role, entry.requirement.index) !=
        entry.node) {
      return false;
    }
  }
  return true;
}

namespace {

// Backtracking placement. Clusters are small (the paper's testbed was an
// SP-2 partition), so exhaustive backtracking with policy-ordered
// candidates is affordable and strictly more capable than pure greedy:
// it still *prefers* the policy's choice but can recover from dead ends.
class Search {
 public:
  Search(const std::vector<NodeRequirement>& requirements,
         const std::vector<LinkRequirement>& links, ResourceView& pool,
         MatchPolicy policy)
      : requirements_(requirements),
        links_(links),
        pool_(pool),
        policy_(policy),
        placed_(requirements.size(), kInvalidNode) {}

  bool run() { return place(0); }

  Allocation take_allocation() {
    Allocation allocation;
    for (size_t i = 0; i < requirements_.size(); ++i) {
      allocation.entries.push_back({requirements_[i], placed_[i]});
    }
    return allocation;
  }

 private:
  bool node_admissible(const NodeRequirement& req, const NodeInfo& node) const {
    if (!glob_match(req.hostname_glob, node.hostname)) return false;
    if (!req.os.empty() && node.os != req.os) return false;
    return true;
  }

  bool links_satisfied(size_t placed_index) const {
    const Topology& topo = pool_.topology();
    for (const auto& link : links_) {
      if (link.from >= placed_.size() || link.to >= placed_.size()) continue;
      NodeId a = placed_[link.from];
      NodeId b = placed_[link.to];
      if (a == kInvalidNode || b == kInvalidNode) continue;
      // Only re-check constraints involving the node just placed.
      if (link.from != placed_index && link.to != placed_index) continue;
      if (!topo.connected(a, b)) return false;
      if (link.min_bandwidth_mbps > 0 &&
          topo.path_bandwidth(a, b) < link.min_bandwidth_mbps) {
        return false;
      }
    }
    return true;
  }

  bool role_conflict(size_t req_index, NodeId candidate) const {
    const auto& req = requirements_[req_index];
    for (size_t i = 0; i < req_index; ++i) {
      if (requirements_[i].role == req.role && placed_[i] == candidate) {
        return true;  // replicas of a role need distinct nodes
      }
    }
    return false;
  }

  std::vector<NodeId> candidates(const NodeRequirement& req) const {
    std::vector<NodeId> out;
    for (const auto& node : pool_.topology().nodes()) {
      if (!pool_.is_online(node.id)) continue;
      if (!node_admissible(req, node)) continue;
      if (pool_.available_memory(node.id) + 1e-9 < req.memory_mb) continue;
      out.push_back(node.id);
    }
    // Least-loaded first; the policy breaks ties.
    switch (policy_) {
      case MatchPolicy::kFirstFit:
        std::stable_sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
          return pool_.effective_load(a) < pool_.effective_load(b);
        });
        break;  // ties stay in topology order
      case MatchPolicy::kBestFit:
        std::stable_sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
          if (pool_.effective_load(a) != pool_.effective_load(b)) {
            return pool_.effective_load(a) < pool_.effective_load(b);
          }
          return pool_.available_memory(a) < pool_.available_memory(b);
        });
        break;
      case MatchPolicy::kWorstFit:
        std::stable_sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
          if (pool_.effective_load(a) != pool_.effective_load(b)) {
            return pool_.effective_load(a) < pool_.effective_load(b);
          }
          return pool_.available_memory(a) > pool_.available_memory(b);
        });
        break;
    }
    return out;
  }

  bool place(size_t index) {
    if (index == requirements_.size()) return true;
    const auto& req = requirements_[index];
    for (NodeId candidate : candidates(req)) {
      if (role_conflict(index, candidate)) continue;
      if (!pool_.reserve_memory(candidate, req.memory_mb).ok()) continue;
      pool_.add_process(candidate);
      placed_[index] = candidate;
      if (links_satisfied(index) && place(index + 1)) return true;
      placed_[index] = kInvalidNode;
      auto removed = pool_.remove_process(candidate);
      HARMONY_ASSERT(removed.ok());
      auto status = pool_.release_memory(candidate, req.memory_mb);
      HARMONY_ASSERT(status.ok());
    }
    return false;
  }

  const std::vector<NodeRequirement>& requirements_;
  const std::vector<LinkRequirement>& links_;
  ResourceView& pool_;
  MatchPolicy policy_;
  std::vector<NodeId> placed_;
};

}  // namespace

Result<Allocation> Matcher::match(
    const std::vector<NodeRequirement>& requirements,
    const std::vector<LinkRequirement>& links, ResourceView& pool) const {
  for (const auto& link : links) {
    if (link.from >= requirements.size() || link.to >= requirements.size()) {
      return Err<Allocation>(ErrorCode::kInvalidArgument,
                             "link requirement references missing node");
    }
  }
  for (const auto& req : requirements) {
    if (req.memory_mb < 0) {
      return Err<Allocation>(ErrorCode::kInvalidArgument,
                             "negative memory requirement for role " + req.role);
    }
  }
  Search search(requirements, links, pool, policy_);
  if (!search.run()) {
    return Err<Allocation>(
        ErrorCode::kNoMatch,
        str_format("no placement for %zu requirements under %s",
                   requirements.size(), match_policy_name(policy_)));
  }
  return search.take_allocation();
}

Status Matcher::release(const Allocation& allocation, ResourceView& pool) {
  for (const auto& entry : allocation.entries) {
    auto status = pool.release_memory(entry.node, entry.requirement.memory_mb);
    if (!status.ok()) return status;
    status = pool.remove_process(entry.node);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

}  // namespace harmony::cluster
