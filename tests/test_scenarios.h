// Shared scenario builders for core/controller tests and benches: the
// paper's SP-2-like cluster, the Figure 2 applications (Simple, Bag) and
// the Figure 3 client-server database bundles.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/controller.h"
#include "core/domain.h"
#include "rsl/spec.h"

namespace harmony::testing {

// Serializes everything a decision can influence, at full precision:
// per-bundle configuration, choice variables, memory grants, switch
// times, placements, the reconfiguration counter and the objective.
// Two controllers with equal fingerprints have made identical decision
// sequences. Used by the incremental-vs-full differential test and by
// the crash-recovery tests (recovered state must fingerprint-match the
// pre-crash controller).
inline void fingerprint_instance(const core::InstanceState& instance,
                                 std::string& out) {
  out += str_format("i%llu:%s\n",
                    static_cast<unsigned long long>(instance.id),
                    instance.application.c_str());
  for (const auto& bundle : instance.bundles) {
    out += str_format(" b=%s cfg=%d", bundle.spec.bundle.c_str(),
                      bundle.configured ? 1 : 0);
    if (bundle.configured) {
      out += " choice=" + bundle.choice.option;
      for (const auto& [name, value] : bundle.choice.variables) {
        out += str_format(" %s=%.17g", name.c_str(), value);
      }
      out += str_format(" grant=%.17g switched=%.17g",
                        bundle.choice.memory_grant,
                        bundle.last_switch_time);
      for (const auto& entry : bundle.allocation.entries) {
        out += str_format(" [%s.%d@%u mem=%.17g]",
                          entry.requirement.role.c_str(),
                          entry.requirement.index, entry.node,
                          entry.requirement.memory_mb);
      }
    }
    out += '\n';
  }
}

inline std::string fingerprint(const core::Controller& controller) {
  std::string out;
  for (const auto& instance : controller.state().instances) {
    fingerprint_instance(instance, out);
  }
  out += str_format("reconfigs=%llu\n",
                    static_cast<unsigned long long>(
                        controller.reconfigurations()));
  auto objective = controller.objective_value();
  out += objective.ok() ? str_format("objective=%.17g\n", objective.value())
                        : ("objective_err=" + objective.error().message + "\n");
  return out;
}

// Router fingerprint in the same format: instances across all domains
// in global id order, reconfigurations including retired domains, and
// the merged objective — directly comparable against a single-domain
// reference controller's fingerprint.
inline std::string fingerprint(const core::DomainRouter& router) {
  std::vector<const core::InstanceState*> instances;
  for (const core::Controller* controller : router.domain_controllers()) {
    for (const auto& instance : controller->state().instances) {
      instances.push_back(&instance);
    }
  }
  std::sort(instances.begin(), instances.end(),
            [](const core::InstanceState* a, const core::InstanceState* b) {
              return a->id < b->id;
            });
  std::string out;
  for (const core::InstanceState* instance : instances) {
    fingerprint_instance(*instance, out);
  }
  out += str_format("reconfigs=%llu\n",
                    static_cast<unsigned long long>(
                        router.reconfigurations()));
  auto objective = router.objective_value();
  out += objective.ok() ? str_format("objective=%.17g\n", objective.value())
                        : ("objective_err=" + objective.error().message + "\n");
  return out;
}

// n worker nodes "sp2-XX" (speed 1, 64 MB) plus one server host
// "server" (speed 2, 512 MB), full switch at `mbps` (default 320, the
// paper's high performance switch).
inline std::string sp2_cluster_script(int n, double worker_memory_mb = 64,
                                      double mbps = 320) {
  std::string script;
  for (int i = 0; i < n; ++i) {
    script += str_format("harmonyNode sp2-%02d {speed 1.0} {memory %g} {os aix}",
                         i, worker_memory_mb);
    for (int j = 0; j < i; ++j) {
      script += str_format(" {link sp2-%02d %g 0.05}", j, mbps);
    }
    script += " {link server " + format_number(mbps) + " 0.05}\n";
  }
  script += "harmonyNode server {speed 2.0} {memory 512} {os aix}\n";
  return script;
}

// Figure 2(a): generic parallel application on `workers` dedicated
// nodes. Default model (no performance tag).
inline std::string simple_bundle(int workers = 4, double seconds = 300,
                                 double memory = 32) {
  return str_format(
      "harmonyBundle Simple:1 config {\n"
      "  {fixed\n"
      "    {node worker {seconds %g} {memory %g} {replicate %d}}\n"
      "    {communication 10}}\n"
      "}\n",
      seconds, memory, workers);
}

// Figure 2(b): bag-of-tasks with variable parallelism and the paper's
// speedup curve as an explicit performance model.
inline std::string bag_bundle(const std::string& workers = "1 2 3 4 5 6 7 8",
                              double granularity = 0) {
  return str_format(
      "harmonyBundle Bag:1 parallelism {\n"
      "  {var\n"
      "    {variable workerNodes {%s}}\n"
      "    {node worker {seconds {1200.0 / workerNodes}} {memory 16}\n"
      "          {replicate {workerNodes}}}\n"
      "    {communication {0.5 * workerNodes * workerNodes}}\n"
      "    {performance {{1 1250} {2 640} {3 450} {4 340} {5 290} {6 270} "
      "{7 260} {8 255}}}\n"
      "    {granularity %g}}\n"
      "}\n",
      workers.c_str(), granularity);
}

// `groups` isolated node groups of `per_group` hosts named <prefix>-NN.
// The switch is a full mesh — links never partition the namespace, only
// admissible node sets do — so cross-group bundles stay expressible.
// The workhorse cluster of the partitioned-decision-core tests and the
// multi-tenant bench.
inline std::string grouped_cluster_script(
    const std::vector<std::string>& groups, int per_group) {
  std::vector<std::string> hosts;
  for (const auto& group : groups) {
    for (int i = 0; i < per_group; ++i) {
      hosts.push_back(str_format("%s-%02d", group.c_str(), i));
    }
  }
  std::string script;
  for (size_t i = 0; i < hosts.size(); ++i) {
    script += str_format("harmonyNode %s {speed 1.0} {memory 64} {os aix}",
                         hosts[i].c_str());
    for (size_t j = 0; j < i; ++j) {
      script += str_format(" {link %s 320 0.05}", hosts[j].c_str());
    }
    script += "\n";
  }
  return script;
}

// Two-option application confined to one group's nodes by hostname
// glob; the group pin is what makes its optimization domain independent
// of every other group's.
inline std::string pinned_group_bundle(const std::string& group, int tag) {
  return str_format(
      "harmonyBundle App%s:%d layout {\n"
      "  {wide\n"
      "    {node worker {hostname %s-*} {seconds 240} {memory 24} "
      "{replicate 2}}\n"
      "    {communication 10}}\n"
      "  {narrow\n"
      "    {node worker {hostname %s-*} {seconds 420} {memory 12}}\n"
      "    {communication 2}}\n"
      "}\n",
      group.c_str(), tag, group.c_str(), group.c_str());
}

// An application whose admissible set spans two groups — registering it
// merges their optimization domains; its departure splits them again.
inline std::string bridge_bundle(const std::string& group_a,
                                 const std::string& group_b, int tag) {
  return str_format(
      "harmonyBundle Bridge:%d where {\n"
      "  {span\n"
      "    {node left {hostname %s-*} {seconds 60} {memory 16}}\n"
      "    {node right {hostname %s-*} {seconds 60} {memory 16}}\n"
      "    {link left right 8}}\n"
      "}\n",
      tag, group_a.c_str(), group_b.c_str());
}

// Figure 3: hybrid client-server database bundle. Numbers follow the
// paper's structure (QS loads the server, DS loads the client; DS moves
// more data) with magnitudes chosen so the QS->DS crossover falls at
// three clients on the sp2 cluster, as in Figure 7.
//
// The paper's DS link expression is OCR-garbled in our source
// ("44 + (client.memory > 24 ? 24 : client.memory) - 17"); §3.5 states
// the intent — more client memory reduces bandwidth — so we use the
// decreasing form 61 - min(client.memory, 24).
inline std::string db_client_bundle(const std::string& client_host,
                                    int instance = 1) {
  return str_format(
      "harmonyBundle DBclient:%d where {\n"
      "  {QS\n"
      "    {node server {hostname server} {seconds 9} {memory 20}}\n"
      "    {node client {hostname %s} {seconds 1} {memory 2}}\n"
      "    {link client server 10}}\n"
      "  {DS\n"
      "    {node server {hostname server} {seconds 1} {memory 20}}\n"
      "    {node client {hostname %s} {memory >=17} {seconds 9}}\n"
      "    {link client server {61 - (client.memory > 24 ? 24 : "
      "client.memory)}}}\n"
      "}\n",
      instance, client_host.c_str(), client_host.c_str());
}

}  // namespace harmony::testing
