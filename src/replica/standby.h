// Standby-side replication client: a background thread that dials the
// primary, attaches to its journal stream with {REPL HELLO}, and feeds
// every received frame into the local Persistence mirror —
// apply_replicated for BATCH frames, install_snapshot for the
// SNAP/SNAPC/SNAPE full-resync sequence, apply_compaction for COMPACT
// markers — acking its applied watermark back so the primary's
// semi-sync replies can release.
//
// The thread owns the connection and is the only writer to the
// controller while the node is a standby (the standby's own server
// never touches it). Promotion stops this thread first, then calls
// Persistence::promote().
//
// A connection loss reconnects with bounded backoff, rotating through
// the configured peers and re-HELLOing from the committed position
// (any torn stream tail is dropped; those bytes are re-sent). A
// divergence the mirror cannot absorb in place — install_snapshot
// against a non-fresh controller — raises needs_reset(): the HA node
// must tear this standby down and rebuild it from scratch.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "metric/telemetry.h"
#include "net/tcp_transport.h"
#include "persist/persistence.h"

namespace harmony::replica {

struct StandbyConfig {
  // Client-port endpoints of the peers that may be primary; tried in
  // order, rotating on failure.
  std::vector<net::Endpoint> peers;
  // This node's name in HELLO (diagnostics on the primary).
  std::string node_id = "standby";
  // Idle ack cadence; applied batches are acked immediately regardless.
  int ack_interval_ms = 50;
  // Reconnect backoff: doubles from initial to max per failed attempt.
  int initial_backoff_ms = 50;
  int max_backoff_ms = 1000;
  // Per-poll wait; bounds both frame latency and stop() latency.
  int poll_interval_ms = 50;
};

class StandbyReplicator {
 public:
  StandbyReplicator(StandbyConfig config, persist::Persistence* persistence);
  ~StandbyReplicator();

  StandbyReplicator(const StandbyReplicator&) = delete;
  StandbyReplicator& operator=(const StandbyReplicator&) = delete;

  void start();
  // Signals the thread and joins it. Latency is bounded by
  // poll_interval_ms (or one backoff sleep slice).
  void stop();

  bool running() const { return thread_.joinable(); }
  bool connected() const { return connected_.load(std::memory_order_relaxed); }
  // The mirror diverged beyond in-place repair; rebuild the standby.
  bool needs_reset() const {
    return needs_reset_.load(std::memory_order_relaxed);
  }
  uint64_t records_applied() const {
    return records_applied_.load(std::memory_order_relaxed);
  }
  uint64_t resyncs() const { return resyncs_.load(std::memory_order_relaxed); }

 private:
  void run();
  // One connection lifetime: dial, HELLO, stream until error/stop.
  Status session(const net::Endpoint& peer);
  Status send_ack(const net::Fd& fd);

  StandbyConfig config_;
  persist::Persistence* persistence_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> connected_{false};
  std::atomic<bool> needs_reset_{false};
  std::atomic<uint64_t> records_applied_{0};
  std::atomic<uint64_t> resyncs_{0};

  metric::Counter* reconnects_total_ =
      &metric::telemetry_counter("replica.standby_reconnects_total");
  metric::Counter* bytes_applied_total_ =
      &metric::telemetry_counter("replica.standby_bytes_applied_total");
};

}  // namespace harmony::replica
