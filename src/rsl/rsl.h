// RslHost wires the RSL commands (harmonyBundle, harmonyNode) into an
// interpreter and hands the parsed typed specs to the embedding
// component (the adaptation controller, or a test).
#pragma once

#include <functional>
#include <string>

#include "common/result.h"
#include "rsl/interp.h"
#include "rsl/spec.h"

namespace harmony::rsl {

class RslHost {
 public:
  using BundleHandler = std::function<Status(const BundleSpec&)>;
  using NodeHandler = std::function<Status(const NodeAd&)>;

  void on_bundle(BundleHandler handler) { bundle_handler_ = std::move(handler); }
  void on_node(NodeHandler handler) { node_handler_ = std::move(handler); }

  // Registers harmonyBundle / harmonyNode with the interpreter. The host
  // must outlive the interpreter registration.
  void register_with(Interp& interp);

  // Convenience: evaluates a whole RSL script in a fresh interpreter.
  Status eval_script(std::string_view script);

 private:
  BundleHandler bundle_handler_;
  NodeHandler node_handler_;
};

}  // namespace harmony::rsl
