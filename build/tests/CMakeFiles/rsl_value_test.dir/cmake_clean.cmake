file(REMOVE_RECURSE
  "CMakeFiles/rsl_value_test.dir/rsl_value_test.cc.o"
  "CMakeFiles/rsl_value_test.dir/rsl_value_test.cc.o.d"
  "rsl_value_test"
  "rsl_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsl_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
