// Recovery differential: a persisted controller and an unpersisted
// reference are driven through the same event sequence; after a
// simulated crash (destroy controller + persistence, keep the files) a
// fresh controller recovered from snapshot + journal must fingerprint
// bit-identically to the reference — decision for decision, placement
// for placement. Reuses the differential harness of
// core_incremental_test via testing::fingerprint.
#include "persist/persistence.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/controller.h"
#include "test_scenarios.h"

namespace harmony::persist {
namespace {

using harmony::testing::bag_bundle;
using harmony::testing::db_client_bundle;
using harmony::testing::fingerprint;
using harmony::testing::simple_bundle;
using harmony::testing::sp2_cluster_script;

constexpr int kLastStep = 13;

// One step of the scripted history. Every kind of journal-able event
// appears at least once: registrations (script and reconstructed),
// departures, load reports, node offline/online, re-evaluations.
void apply_step(core::Controller& c, int s) {
  switch (s) {
    case 1:
      ASSERT_TRUE(c.add_nodes_script(sp2_cluster_script(6)).ok());
      ASSERT_TRUE(c.finalize_cluster().ok());
      break;
    case 2: ASSERT_TRUE(c.register_script(bag_bundle("1 2 3 4", 0)).ok()); break;
    case 3: ASSERT_TRUE(c.register_script(db_client_bundle("sp2-00", 1)).ok()); break;
    case 4: ASSERT_TRUE(c.report_external_load("sp2-01", 3).ok()); break;
    case 5: ASSERT_TRUE(c.register_script(db_client_bundle("sp2-01", 2)).ok()); break;
    case 6: ASSERT_TRUE(c.set_node_online("sp2-02", false).ok()); break;
    case 7: ASSERT_TRUE(c.reevaluate().ok()); break;
    case 8: ASSERT_TRUE(c.register_script(db_client_bundle("sp2-03", 3)).ok()); break;
    case 9: ASSERT_TRUE(c.unregister(2).ok()); break;
    case 10: ASSERT_TRUE(c.set_node_online("sp2-02", true).ok()); break;
    case 11: ASSERT_TRUE(c.report_external_load("sp2-01", 0).ok()); break;
    case 12: ASSERT_TRUE(c.register_script(simple_bundle(2)).ok()); break;
    case 13: ASSERT_TRUE(c.reevaluate().ok()); break;
  }
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "recovery_" + std::to_string(::getpid()) +
           "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    clean();
  }
  void TearDown() override { clean(); }

  void clean() {
    std::remove((dir_ + "/journal.wal").c_str());
    std::remove((dir_ + "/snapshot.hsn").c_str());
    std::remove((dir_ + "/snapshot.tmp").c_str());
    ::rmdir(dir_.c_str());
  }

  // Both controllers share the test clock; the persisted one records
  // event times into the journal, so the recovered one replays them.
  void install_clock(core::Controller& controller) {
    controller.set_time_source([this] { return clock_; });
  }

  // Applies steps [from, to] to every controller, advancing the shared
  // clock once per step so both see identical event times.
  void drive(std::initializer_list<core::Controller*> controllers, int from,
             int to) {
    for (int s = from; s <= to; ++s) {
      clock_ += 5.0;
      for (core::Controller* c : controllers) apply_step(*c, s);
    }
  }

  PersistConfig config(uint64_t snapshot_every = 0,
                       uint64_t fsync_every = 4) {
    PersistConfig config;
    config.dir = dir_;
    config.snapshot_every_epochs = snapshot_every;
    // Compact on epoch count alone: the test histories are far smaller
    // than the production size threshold.
    config.snapshot_min_journal_bytes = 0;
    config.fsync_every_epochs = fsync_every;
    return config;
  }

  std::string dir_;
  double clock_ = 0.0;
};

TEST_F(RecoveryTest, RecoveredControllerMatchesReferenceBitForBit) {
  core::Controller reference;
  install_clock(reference);

  std::string pre_crash;
  {
    core::Controller live;
    install_clock(live);
    auto persistence = Persistence::open(config(), live);
    ASSERT_TRUE(persistence.ok()) << persistence.error().to_string();
    EXPECT_FALSE((*persistence)->recovery().recovered);
    drive({&live, &reference}, 1, kLastStep);
    ASSERT_TRUE((*persistence)->flush().ok());
    pre_crash = fingerprint(live);
    // Crash: controller and persistence die; the files survive.
  }

  core::Controller recovered;
  auto persistence = Persistence::open(config(), recovered);
  ASSERT_TRUE(persistence.ok()) << persistence.error().to_string();
  EXPECT_TRUE((*persistence)->recovery().recovered);
  EXPECT_FALSE((*persistence)->recovery().journal_truncated);

  EXPECT_EQ(fingerprint(recovered), pre_crash);
  EXPECT_EQ(fingerprint(recovered), fingerprint(reference));
}

TEST_F(RecoveryTest, RecoveredControllerKeepsWorkingAndStaysIdentical) {
  core::Controller reference;
  install_clock(reference);

  {
    core::Controller live;
    install_clock(live);
    auto persistence = Persistence::open(config(), live);
    ASSERT_TRUE(persistence.ok());
    drive({&live, &reference}, 1, 8);
    ASSERT_TRUE((*persistence)->flush().ok());
  }

  core::Controller recovered;
  auto persistence = Persistence::open(config(), recovered);
  ASSERT_TRUE(persistence.ok()) << persistence.error().to_string();
  EXPECT_EQ(fingerprint(recovered), fingerprint(reference));

  // Life goes on after recovery: rejoin the shared clock and apply the
  // remaining history to both. Decisions must keep matching — and keep
  // being journaled, so a second recovery sees them too.
  install_clock(recovered);
  drive({&recovered, &reference}, 9, kLastStep);
  ASSERT_TRUE((*persistence)->flush().ok());
  EXPECT_EQ(fingerprint(recovered), fingerprint(reference));

  // Detach the live persistence before reopening the same files.
  persistence.value().reset();
  core::Controller recovered_again;
  auto persistence2 = Persistence::open(config(), recovered_again);
  ASSERT_TRUE(persistence2.ok()) << persistence2.error().to_string();
  EXPECT_EQ(fingerprint(recovered_again), fingerprint(reference));
}

TEST_F(RecoveryTest, CompactionPreservesDecisions) {
  core::Controller reference;
  install_clock(reference);

  {
    core::Controller live;
    install_clock(live);
    // Snapshot every other epoch: most of the history lives in the
    // snapshot, only a short tail in the journal.
    auto persistence = Persistence::open(config(/*snapshot_every=*/2), live);
    ASSERT_TRUE(persistence.ok());
    drive({&live, &reference}, 1, kLastStep);
    ASSERT_TRUE((*persistence)->flush().ok());
    EXPECT_GT((*persistence)->journal().commits(), 0u);
  }
  {
    std::ifstream snapshot(dir_ + "/snapshot.hsn", std::ios::binary);
    ASSERT_TRUE(snapshot.good()) << "compaction never wrote a snapshot";
  }

  core::Controller recovered;
  auto persistence = Persistence::open(config(/*snapshot_every=*/2), recovered);
  ASSERT_TRUE(persistence.ok()) << persistence.error().to_string();
  EXPECT_GT((*persistence)->recovery().snapshot_records, 0u);
  EXPECT_EQ(fingerprint(recovered), fingerprint(reference));
}

TEST_F(RecoveryTest, TornJournalTailIsDiscardedNotFatal) {
  std::string pre_tail;
  {
    core::Controller live;
    install_clock(live);
    auto persistence = Persistence::open(config(), live);
    ASSERT_TRUE(persistence.ok());
    drive({&live}, 1, 7);
    ASSERT_TRUE((*persistence)->flush().ok());
    pre_tail = fingerprint(live);
  }
  // A crash mid-write leaves half a record at the tail.
  {
    std::ofstream journal(dir_ + "/journal.wal",
                          std::ios::binary | std::ios::app);
    journal.write("\x00\x00\x01\x00garbage", 11);
  }

  core::Controller recovered;
  auto persistence = Persistence::open(config(), recovered);
  ASSERT_TRUE(persistence.ok()) << persistence.error().to_string();
  EXPECT_TRUE((*persistence)->recovery().journal_truncated);
  EXPECT_EQ(fingerprint(recovered), pre_tail);

  // The repair truncated the file: recovering again reports no tail.
  persistence.value().reset();
  core::Controller recovered2;
  auto persistence2 = Persistence::open(config(), recovered2);
  ASSERT_TRUE(persistence2.ok());
  EXPECT_FALSE((*persistence2)->recovery().journal_truncated);
  EXPECT_EQ(fingerprint(recovered2), pre_tail);
}

TEST_F(RecoveryTest, StaleJournalAfterCompactionCrashIsDiscardedNotFatal) {
  // Simulates a crash inside snapshot compaction between the snapshot
  // rename and the journal truncation: disk holds the NEW snapshot plus
  // the stale pre-snapshot journal. The journal's REG records describe
  // registrations the snapshot already contains; replaying them would
  // trip the id-divergence check. Recovery must recognize the journal
  // as belonging to an older generation and discard it.
  std::string pre_crash;
  std::string stale_journal;
  {
    core::Controller live;
    install_clock(live);
    auto persistence = Persistence::open(config(), live);
    ASSERT_TRUE(persistence.ok()) << persistence.error().to_string();
    drive({&live}, 1, 7);
    ASSERT_TRUE((*persistence)->flush().ok());
    {
      std::ifstream in(dir_ + "/journal.wal", std::ios::binary);
      ASSERT_TRUE(in.good());
      std::stringstream buffer;
      buffer << in.rdbuf();
      stale_journal = buffer.str();
    }
    ASSERT_FALSE(stale_journal.empty());
    ASSERT_TRUE((*persistence)->snapshot_now().ok());
    pre_crash = fingerprint(live);
  }
  // The crash: the snapshot landed, the truncation never did.
  {
    std::ofstream out(dir_ + "/journal.wal",
                      std::ios::binary | std::ios::trunc);
    out << stale_journal;
  }

  core::Controller recovered;
  auto persistence = Persistence::open(config(), recovered);
  ASSERT_TRUE(persistence.ok()) << persistence.error().to_string();
  EXPECT_TRUE((*persistence)->recovery().journal_discarded_stale);
  EXPECT_EQ((*persistence)->recovery().journal_records, 0u);
  EXPECT_EQ(fingerprint(recovered), pre_crash);

  // The discard emptied the file: a second recovery starts clean and
  // sees only the first recovery's own verification pass.
  persistence.value().reset();
  core::Controller recovered2;
  auto persistence2 = Persistence::open(config(), recovered2);
  ASSERT_TRUE(persistence2.ok()) << persistence2.error().to_string();
  EXPECT_FALSE((*persistence2)->recovery().journal_discarded_stale);
  EXPECT_EQ(fingerprint(recovered2), pre_crash);
}

TEST_F(RecoveryTest, SessionsSurviveRecovery) {
  {
    core::Controller live;
    install_clock(live);
    auto persistence = Persistence::open(config(), live);
    ASSERT_TRUE(persistence.ok());
    drive({&live}, 1, 3);
    {
      core::Controller::EpochScope epoch(live);
      (*persistence)->record_session("tok-a", {1});
      (*persistence)->record_session("tok-b", {2});
      (*persistence)->record_session("tok-gone", {2});
      (*persistence)->drop_session("tok-gone");
    }
    ASSERT_TRUE((*persistence)->flush().ok());
  }

  core::Controller recovered;
  auto persistence = Persistence::open(config(), recovered);
  ASSERT_TRUE(persistence.ok()) << persistence.error().to_string();
  const auto& sessions = (*persistence)->sessions();
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions.at("tok-a"), std::vector<core::InstanceId>{1});
  EXPECT_EQ(sessions.at("tok-b"), std::vector<core::InstanceId>{2});
}

}  // namespace
}  // namespace harmony::persist
