# Empty compiler generated dependencies file for abl_perfmodel.
# This may be replaced when dependencies are built.
