// Malleability ablation — what live grow/shrink (the {RESIZE} path and
// the bag's interrupt-mode join/retire protocol) buys over classic
// iteration-boundary polling, and what the deadline/period model does
// to a mixed batch+interactive cluster.
//
// Three measured sections, all on the deterministic simulation harness
// (seeded RNG, virtual clock — every number below is exactly
// reproducible):
//
//   mix       a bag-of-tasks job shares 6 nodes with two deadline
//             (period/tardiness) interactive services that arrive
//             mid-iteration and depart mid-iteration. Run twice, with
//             the bag polling (malleability off) vs interrupt-driven
//             (malleability on). Gates: malleability strictly improves
//             the mix makespan and cluster utilization, and the
//             interactive apps' mean tardiness drops to ~0 because the
//             bag vacates their nodes as soon as the optimizer
//             preempts it — instead of squatting until the iteration
//             boundary.
//   steer     an explicit controller resize() lands mid-iteration; the
//             measured quantity is sim-time from the verb to the app
//             actually running at the new degree. Polling pays the
//             remaining-iteration latency; interrupt mode pays one
//             in-flight task.
//   identity  the same steering-free, deadline-free scenario run with
//             malleability off and on must make bit-identical decisions
//             (equal controller fingerprints at a fixed instant, equal
//             reconfiguration counts, equal makespans): the malleable
//             flag only changes reaction latency, never the decision
//             path, so non-malleable apps see zero behavior change.
//
// Results go to BENCH_malleable.json; the run exits nonzero if any
// gate fails.
#include <cmath>
#include <cstdio>
#include <string>

#include "apps/bag_app.h"
#include "apps/interactive_app.h"
#include "apps/scenarios.h"
#include "apps/sim_context.h"
#include "common/strings.h"
#include "test_scenarios.h"

namespace {

using namespace harmony;
using namespace harmony::apps;

constexpr int kNodes = 6;
constexpr double kSimCap = 20000.0;

struct Options {
  int bag_iterations = 3;
  int requests = 6;  // per interactive service
  bool smoke = false;
};

BagConfig mix_bag_config(const Options& options, bool malleable) {
  BagConfig config;
  config.instance = 1;
  config.seed = 7;
  config.workers = "1 2 3 4 5 6";
  config.sequential_ref_s = 50;
  config.parallel_ref_s = 1000;
  config.max_iterations = options.bag_iterations;
  config.malleable = malleable;
  return config;
}

InteractiveConfig mix_interactive_config(const Options& options,
                                         int instance) {
  InteractiveConfig config;
  config.instance = instance;
  config.period_s = 30;
  config.service_ref_s = 20;
  // Two services cannot share a 64 MB node (2 x 40 > 64), so the
  // resource matcher spreads them; a 16 MB bag worker still fits
  // alongside (40 + 16 < 64), so vacating the service nodes is the
  // tardiness term's call, not the matcher's.
  config.memory_mb = 40;
  // Lateness is expensive relative to batch seconds: the optimizer
  // narrows the bag off the interactive nodes rather than co-locate.
  config.tardiness_weight = 20;
  config.max_requests = options.requests;
  return config;
}

// Steps the simulation in small increments until `done` holds (or the
// cap trips); returns the sim time when it first held, or -1.
template <typename Done>
double step_until(sim::SimEngine& sim, double step, Done done) {
  while (sim.now() < kSimCap) {
    if (done()) return sim.now();
    sim.run_until(sim.now() + step);
  }
  return done() ? sim.now() : -1;
}

// --- mixed batch+interactive scenario --------------------------------------
struct MixResult {
  double makespan_s = 0;      // last useful work completes
  double utilization = 0;     // reference work / (nodes * makespan)
  double mean_tardiness_s = 0;
  int bag_iterations = 0;
  bool ok = true;
  std::string error;
};

MixResult run_mix(const Options& options, bool malleable) {
  MixResult result;
  SimHarness harness;
  if (!harness.controller().add_nodes_script(worker_cluster_script(kNodes))
           .ok() ||
      !harness.finalize().ok()) {
    result.ok = false;
    result.error = "cluster setup failed";
    return result;
  }
  auto& sim = harness.engine();

  BagApp bag(harness.context(), mix_bag_config(options, malleable));
  InteractiveApp service1(harness.context(),
                          mix_interactive_config(options, 1));
  InteractiveApp service2(harness.context(),
                          mix_interactive_config(options, 2));

  if (!bag.start().ok()) {
    result.ok = false;
    result.error = "bag start failed";
    return result;
  }
  // Both services arrive while the bag is mid-iteration: the optimizer
  // preempts two bag workers, and the two modes differ in when the bag
  // honors that.
  sim.schedule(120, [&] {
    if (!service1.start().ok()) std::fprintf(stderr, "service1 failed\n");
  });
  sim.schedule(135, [&] {
    if (!service2.start().ok()) std::fprintf(stderr, "service2 failed\n");
  });

  const double end = step_until(sim, 5, [&] {
    return bag.finished() && service1.finished() && service2.finished();
  });
  if (end < 0) {
    result.ok = false;
    result.error = "mix did not finish before the sim cap";
    return result;
  }

  const auto* iterations = harness.metrics().find("bag.1.iteration_time");
  if (iterations == nullptr || iterations->empty()) {
    result.ok = false;
    result.error = "no bag iterations recorded";
    return result;
  }
  result.bag_iterations = bag.iterations_completed();
  result.makespan_s = iterations->samples().back().time;
  // Reference work is identical across the two modes (same seed, same
  // request counts), so the utilization ratio compares cleanly even
  // though the task-pool estimate ignores per-task jitter.
  const double work_ref_s =
      result.bag_iterations * (50.0 + 1000.0) +
      2.0 * options.requests * 20.0;
  result.utilization = work_ref_s / (kNodes * result.makespan_s);
  result.mean_tardiness_s =
      (service1.mean_tardiness() + service2.mean_tardiness()) / 2;
  return result;
}

// --- steering latency: resize-verb-to-applied ------------------------------
struct SteerResult {
  double shrink_latency_s = 0;  // resize 6 -> 2 lands in the app
  double grow_latency_s = 0;    // resize 2 -> 6 lands in the app
  bool ok = true;
  std::string error;
};

SteerResult run_steer(bool malleable) {
  SteerResult result;
  SimHarness harness;
  if (!harness.controller().add_nodes_script(worker_cluster_script(kNodes))
           .ok() ||
      !harness.finalize().ok()) {
    result.ok = false;
    result.error = "cluster setup failed";
    return result;
  }
  auto& sim = harness.engine();

  BagConfig config;
  config.instance = 1;
  config.seed = 7;
  config.workers = "1 2 3 4 5 6";
  config.sequential_ref_s = 50;
  config.parallel_ref_s = 1000;
  // A wide granularity window: the steered degree must hold against
  // the controller's own re-evaluation passes, so the measured latency
  // is purely the application's.
  config.granularity_s = 100000;
  config.malleable = malleable;
  BagApp bag(harness.context(), config);
  if (!bag.start().ok()) {
    result.ok = false;
    result.error = "bag start failed";
    return result;
  }

  auto steer_to = [&](double workers, double* latency) {
    const double issued = sim.now();
    auto status = harness.controller().resize(bag.instance_id(),
                                              "parallelism", workers);
    if (!status.ok()) {
      result.ok = false;
      result.error = "resize failed: " + status.to_string();
      return;
    }
    const double applied = step_until(sim, 1, [&] {
      return bag.current_workers() == static_cast<int>(workers);
    });
    if (applied < 0) {
      result.ok = false;
      result.error = str_format("resize to %g never applied", workers);
      return;
    }
    *latency = applied - issued;
  };

  sim.run_until(150);  // well inside iteration 1's parallel phase
  steer_to(2, &result.shrink_latency_s);
  if (!result.ok) return result;
  sim.run_until(sim.now() + 30);  // well inside a width-2 stretch
  steer_to(6, &result.grow_latency_s);
  if (!result.ok) return result;

  bag.stop();
  sim.run_until(sim.now() + 2000);
  return result;
}

// --- decision-path bit-identity across the malleable flag ------------------
struct IdentityResult {
  bool identical = false;
  bool deadline_terms_clean = false;
  double makespan_off_s = 0;
  double makespan_on_s = 0;
  bool ok = true;
  std::string error;
};

IdentityResult run_identity() {
  IdentityResult result;
  std::string fingerprints[2];
  double makespans[2] = {0, 0};
  bool terms_clean[2] = {false, false};
  for (int mode = 0; mode < 2; ++mode) {
    SimHarness harness;
    if (!harness.controller()
             .add_nodes_script(worker_cluster_script(kNodes))
             .ok() ||
        !harness.finalize().ok()) {
      result.ok = false;
      result.error = "cluster setup failed";
      return result;
    }
    auto& sim = harness.engine();
    BagConfig config;
    config.instance = 1;
    config.seed = 7;
    config.workers = "1 2 3 4 5 6";
    config.sequential_ref_s = 50;
    config.parallel_ref_s = 1000;
    config.granularity_s = 10000;
    config.max_iterations = 2;
    config.malleable = mode == 1;
    BagApp bag(harness.context(), config);
    if (!bag.start().ok()) {
      result.ok = false;
      result.error = "bag start failed";
      return result;
    }
    // Snapshot at a fixed instant mid-run: full bundle state, choice
    // variables, placements, switch times and the objective, at full
    // precision.
    sim.run_until(260);
    fingerprints[mode] = harmony::testing::fingerprint(harness.controller());
    terms_clean[mode] = harness.controller().deadline_terms().empty();
    if (step_until(sim, 5, [&] { return bag.finished(); }) < 0) {
      result.ok = false;
      result.error = "identity run did not finish";
      return result;
    }
    const auto* iterations = harness.metrics().find("bag.1.iteration_time");
    if (iterations == nullptr || iterations->empty()) {
      result.ok = false;
      result.error = "no bag iterations recorded";
      return result;
    }
    makespans[mode] = iterations->samples().back().time;
  }
  result.makespan_off_s = makespans[0];
  result.makespan_on_s = makespans[1];
  result.identical =
      fingerprints[0] == fingerprints[1] && makespans[0] == makespans[1];
  result.deadline_terms_clean = terms_clean[0] && terms_clean[1];
  return result;
}

int run(const Options& options) {
  std::printf("=== Malleability ablation: live grow/shrink vs "
              "iteration-boundary polling ===\n");
  std::printf("cluster: %d worker nodes; bag %d iterations; 2 interactive "
              "services x %d requests (period 30 s, tardiness weight 20)\n\n",
              kNodes, options.bag_iterations, options.requests);

  bool ok = true;

  MixResult off = run_mix(options, false);
  MixResult on = run_mix(options, true);
  if (!off.ok || !on.ok) {
    std::printf("!! mix phase: %s\n",
                (!off.ok ? off.error : on.error).c_str());
    ok = false;
  }
  const bool makespan_gate = on.ok && off.ok && on.makespan_s < off.makespan_s;
  const bool utilization_gate =
      on.ok && off.ok && on.utilization > off.utilization;
  const bool tardiness_gate = on.ok && on.mean_tardiness_s < 1.0 &&
                              on.mean_tardiness_s < off.mean_tardiness_s;
  std::printf("--- mixed batch+interactive (6 nodes) ---\n");
  std::printf("%12s %12s %12s %15s\n", "mode", "makespan_s", "utilization",
              "mean_tardy_s");
  std::printf("%12s %12.1f %12.3f %15.2f\n", "polling", off.makespan_s,
              off.utilization, off.mean_tardiness_s);
  std::printf("%12s %12.1f %12.3f %15.2f\n", "malleable", on.makespan_s,
              on.utilization, on.mean_tardiness_s);
  std::printf("makespan improves:    %s\n", makespan_gate ? "PASS" : "FAIL");
  std::printf("utilization improves: %s\n",
              utilization_gate ? "PASS" : "FAIL");
  std::printf("tardiness ~0 under preemption (%.2f s): %s\n",
              on.mean_tardiness_s, tardiness_gate ? "PASS" : "FAIL");
  ok = ok && makespan_gate && utilization_gate && tardiness_gate;

  SteerResult steer_off = run_steer(false);
  SteerResult steer_on = run_steer(true);
  if (!steer_off.ok || !steer_on.ok) {
    std::printf("!! steer phase: %s\n",
                (!steer_off.ok ? steer_off.error : steer_on.error).c_str());
    ok = false;
  }
  const bool steer_gate =
      steer_off.ok && steer_on.ok &&
      steer_on.shrink_latency_s < steer_off.shrink_latency_s &&
      steer_on.grow_latency_s < steer_off.grow_latency_s;
  std::printf("\n--- resize-verb-to-applied latency (sim seconds) ---\n");
  std::printf("%12s %12s %12s\n", "mode", "shrink_6to2", "grow_2to6");
  std::printf("%12s %12.1f %12.1f\n", "polling", steer_off.shrink_latency_s,
              steer_off.grow_latency_s);
  std::printf("%12s %12.1f %12.1f\n", "malleable", steer_on.shrink_latency_s,
              steer_on.grow_latency_s);
  std::printf("interrupt mode applies strictly sooner: %s\n",
              steer_gate ? "PASS" : "FAIL");
  ok = ok && steer_gate;

  IdentityResult identity = run_identity();
  if (!identity.ok) {
    std::printf("!! identity phase: %s\n", identity.error.c_str());
    ok = false;
  }
  std::printf("\n--- decision-path bit-identity (no steering, no deadlines) "
              "---\n");
  std::printf("fingerprints + makespans identical across the malleable flag: "
              "%s (makespan %.6f vs %.6f)\n",
              identity.identical ? "PASS" : "FAIL", identity.makespan_off_s,
              identity.makespan_on_s);
  std::printf("no spurious deadline terms for deadline-free apps: %s\n",
              identity.deadline_terms_clean ? "PASS" : "FAIL");
  ok = ok && identity.identical && identity.deadline_terms_clean;

  FILE* out = std::fopen("BENCH_malleable.json", "w");
  if (out != nullptr) {
    std::fprintf(
        out,
        "{\n  \"bench\": \"abl_malleable\",\n  \"nodes\": %d,\n"
        "  \"bag_iterations\": %d,\n  \"requests_per_service\": %d,\n"
        "  \"mix\": {\n"
        "    \"polling\": {\"makespan_s\": %.3f, \"utilization\": %.4f, "
        "\"mean_tardiness_s\": %.3f},\n"
        "    \"malleable\": {\"makespan_s\": %.3f, \"utilization\": %.4f, "
        "\"mean_tardiness_s\": %.3f}\n  },\n"
        "  \"steer_latency_s\": {\n"
        "    \"polling\": {\"shrink\": %.3f, \"grow\": %.3f},\n"
        "    \"malleable\": {\"shrink\": %.3f, \"grow\": %.3f}\n  },\n"
        "  \"gates\": {\n"
        "    \"makespan_improves\": %s,\n"
        "    \"utilization_improves\": %s,\n"
        "    \"tardiness_near_zero\": %s,\n"
        "    \"steering_applies_sooner\": %s,\n"
        "    \"decisions_bit_identical\": %s,\n"
        "    \"deadline_terms_clean\": %s\n  }\n}\n",
        kNodes, options.bag_iterations, options.requests, off.makespan_s,
        off.utilization, off.mean_tardiness_s, on.makespan_s, on.utilization,
        on.mean_tardiness_s, steer_off.shrink_latency_s,
        steer_off.grow_latency_s, steer_on.shrink_latency_s,
        steer_on.grow_latency_s, makespan_gate ? "true" : "false",
        utilization_gate ? "true" : "false", tardiness_gate ? "true" : "false",
        steer_gate ? "true" : "false", identity.identical ? "true" : "false",
        identity.deadline_terms_clean ? "true" : "false");
    std::fclose(out);
    std::printf("\nwrote BENCH_malleable.json\n");
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_int = [&](int fallback) {
      return (i + 1 < argc) ? std::atoi(argv[++i]) : fallback;
    };
    if (arg == "--iterations") {
      options.bag_iterations = next_int(options.bag_iterations);
    } else if (arg == "--requests") {
      options.requests = next_int(options.requests);
    } else if (arg == "--smoke") {
      // The harness is a virtual-clock simulation, so even the full
      // scenario is sub-second of wall time; smoke just trims the mix.
      options.smoke = true;
      options.bag_iterations = 2;
      options.requests = 4;
    } else {
      std::fprintf(stderr,
                   "usage: abl_malleable [--iterations N] [--requests K] "
                   "[--smoke]\n");
      return 2;
    }
  }
  return run(options);
}
