file(REMOVE_RECURSE
  "CMakeFiles/abl_objective.dir/abl_objective.cc.o"
  "CMakeFiles/abl_objective.dir/abl_objective.cc.o.d"
  "abl_objective"
  "abl_objective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_objective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
