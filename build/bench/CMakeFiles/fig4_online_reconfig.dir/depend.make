# Empty dependencies file for fig4_online_reconfig.
# This may be replaced when dependencies are built.
