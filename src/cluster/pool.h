// Resource accounting over a Topology. The paper (§4.1): "As nodes and
// links are matched, we decrease the available resources based on the
// application's RSL entries." Memory is reserved exclusively; CPU is
// time-shared, so the pool tracks per-node load (number of resident
// processes) which the performance models use for contention scaling.
//
// Two implementations of the ResourceView interface exist: the live
// ResourcePool, and PoolOverlay — a copy-on-write delta view used by
// the planning engine to evaluate candidate placements speculatively
// without ever mutating (and having to roll back) live state.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cluster/scope.h"
#include "cluster/topology.h"
#include "common/result.h"

namespace harmony::cluster {

// What the matcher and planner need from a pool: capacity queries plus
// reserve/release mutations. ResourcePool is the live implementation;
// PoolOverlay layers speculative deltas over any base view.
class ResourceView {
 public:
  virtual ~ResourceView() = default;

  virtual const Topology& topology() const = 0;

  // The node set this view accounts for, or nullptr when it covers the
  // whole topology. The matcher iterates this instead of every node:
  // scope order is topology order, so candidate enumeration (and hence
  // every decision) is unchanged, only cheaper.
  virtual const NodeScope* scope() const { return nullptr; }

  // --- memory ---------------------------------------------------------------
  virtual double total_memory(NodeId node) const = 0;
  virtual double available_memory(NodeId node) const = 0;
  virtual Status reserve_memory(NodeId node, double mb) = 0;
  virtual Status release_memory(NodeId node, double mb) = 0;

  // --- CPU load -------------------------------------------------------------
  // Number of processes resident on the node; the default performance
  // model scales CPU time by this (processor sharing).
  virtual int process_count(NodeId node) const = 0;
  virtual void add_process(NodeId node) = 0;
  virtual Status remove_process(NodeId node) = 0;

  // --- external load --------------------------------------------------------
  // Load from work outside Harmony's control (§4.3), as observed
  // through the metric interface. Never speculated on by overlays.
  virtual int external_load(NodeId node) const = 0;
  // process_count + external load: the contention the models see.
  int effective_load(NodeId node) const {
    return process_count(node) + external_load(node);
  }

  // --- availability ---------------------------------------------------------
  virtual bool is_online(NodeId node) const = 0;
};

class ResourcePool final : public ResourceView {
 public:
  // Full-cluster pool: dense state for every topology node.
  explicit ResourcePool(const Topology* topology);
  // Scoped pool: dense state only for `scope` nodes (a domain's
  // footprint). Accesses outside the scope fail the same way accesses
  // to nonexistent nodes do.
  ResourcePool(const Topology* topology, std::vector<NodeId> scope);

  const Topology& topology() const override { return *topology_; }
  const NodeScope* scope() const override {
    return scoped_ ? &scope_ : nullptr;
  }

  // Number of dense per-node slots (scope size, or node_count when
  // unscoped). Version arrays in SystemState are sized to match.
  size_t slot_count() const;
  // Dense index for `node`: identity when unscoped, scope slot (or
  // NodeScope::kNoSlot) when scoped.
  size_t slot_of(NodeId node) const;

  // Grow the scope to cover `nodes` as well (domain merge / footprint
  // annexation), preserving existing per-node state. Returns the
  // old-slot -> new-slot mapping (empty when nothing was added) so
  // owners of parallel slot-indexed arrays can re-lay them out.
  std::vector<size_t> extend_scope(const std::vector<NodeId>& nodes);

  // Process-wide count of dense slots ever allocated by pool
  // construction or scope extension. Regression hook: creating a domain
  // over an N-node footprint in a huge cluster must allocate O(N)
  // slots, not O(cluster).
  static uint64_t slots_allocated();

  // --- memory ---------------------------------------------------------------
  double total_memory(NodeId node) const override;
  double available_memory(NodeId node) const override;
  Status reserve_memory(NodeId node, double mb) override;
  Status release_memory(NodeId node, double mb) override;

  // --- CPU load ---------------------------------------------------------------
  int process_count(NodeId node) const override;
  void add_process(NodeId node) override;
  Status remove_process(NodeId node) override;

  // Sum of processes across the cluster (diagnostics).
  int total_processes() const;

  // --- external load -------------------------------------------------------
  // "changes out of Harmony's control (such as network traffic due to
  // other applications)" — contributes to contention estimates and to
  // the matcher's least-loaded ordering, but reserves nothing.
  void set_external_load(NodeId node, int tasks);
  int external_load(NodeId node) const override;

  // --- availability ------------------------------------------------------
  // Nodes can leave and rejoin the pool at runtime ("the addition or
  // deletion of nodes" the paper's abstract calls out). An offline node
  // is never matched; existing reservations are the controller's job to
  // migrate.
  void set_online(NodeId node, bool online);
  bool is_online(NodeId node) const override;
  size_t online_count() const;

  // Invariant check: no node over-committed, no negative counters.
  // Used by property tests and debug assertions.
  bool invariants_hold() const;

 private:
  void allocate_slots(size_t count);

  const Topology* topology_;
  bool scoped_ = false;
  NodeScope scope_;  // meaningful only when scoped_
  // Indexed by slot (== NodeId when unscoped).
  std::vector<double> reserved_memory_;
  std::vector<int> processes_;
  std::vector<int> external_load_;
  std::vector<bool> online_;
};

// Copy-on-write view over a base pool. Reserve/release/process changes
// accumulate as per-node deltas (plus an undo log) without touching the
// base; queries merge the delta with the base on the fly. The planning
// engine builds one overlay per bundle optimization, rewinds it between
// candidate trials, and throws it away afterwards — live state is only
// mutated when a winning plan is committed.
//
// Validation (capacity checks, epsilon tolerances) mirrors ResourcePool
// exactly so the matcher behaves identically against either view.
class PoolOverlay final : public ResourceView {
 public:
  explicit PoolOverlay(const ResourceView* base);

  const Topology& topology() const override { return base_->topology(); }
  const NodeScope* scope() const override { return base_->scope(); }

  double total_memory(NodeId node) const override;
  double available_memory(NodeId node) const override;
  Status reserve_memory(NodeId node, double mb) override;
  Status release_memory(NodeId node, double mb) override;

  int process_count(NodeId node) const override;
  void add_process(NodeId node) override;
  Status remove_process(NodeId node) override;

  int external_load(NodeId node) const override {
    return base_->external_load(node);
  }
  bool is_online(NodeId node) const override { return base_->is_online(node); }

  // Cheap transactional trial support: mark() snapshots the undo-log
  // position, rewind() reverses every delta applied since. A trial is
  //   auto m = overlay.mark(); ... speculate ...; overlay.rewind(m);
  struct Mark {
    size_t log_size = 0;
  };
  Mark mark() const { return Mark{log_.size()}; }
  void rewind(Mark mark);
  // Drop every delta (back to a pristine view of the base).
  void reset();
  // True when the overlay currently diverges from the base.
  bool dirty() const { return !log_.empty(); }

 private:
  struct Delta {
    double memory_mb = 0.0;  // extra reserved relative to base
    int processes = 0;       // extra processes relative to base
  };
  struct LogEntry {
    NodeId node = kInvalidNode;
    double memory_mb = 0.0;
    int processes = 0;
  };
  double reserved_delta(NodeId node) const;
  void apply(NodeId node, double memory_mb, int processes);

  const ResourceView* base_;
  std::unordered_map<NodeId, Delta> deltas_;
  std::vector<LogEntry> log_;
};

// RAII reservation of memory on a set of nodes. Releases on destruction
// unless committed. Keeps the matcher exception-safe: a partially
// completed match rolls back automatically.
class MemoryReservation {
 public:
  explicit MemoryReservation(ResourceView* pool) : pool_(pool) {}
  ~MemoryReservation() { rollback(); }
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  Status reserve(NodeId node, double mb);
  // Keeps the reservations; the caller owns releasing them later.
  void commit() { held_.clear(); }
  void rollback();

 private:
  ResourceView* pool_;
  std::vector<std::pair<NodeId, double>> held_;
};

}  // namespace harmony::cluster
