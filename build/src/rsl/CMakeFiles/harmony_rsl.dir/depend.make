# Empty dependencies file for harmony_rsl.
# This may be replaced when dependencies are built.
