// Ablation A4 — first-fit vs best-fit vs worst-fit matching under
// memory fragmentation. §4.1: "Our current approach uses a simple
// first-fit allocation strategy. In the future, we plan to extend the
// matching to use more sophisticated policies that try to avoid
// fragmentation." This bench measures exactly that: a random
// arrive/depart stream of jobs with mixed memory footprints on a
// heterogeneous cluster, scoring each policy by admission rate.
#include <cstdio>
#include <vector>

#include "cluster/matcher.h"
#include "common/rng.h"
#include "common/strings.h"

namespace {

using namespace harmony;
using namespace harmony::cluster;

struct PolicyScore {
  int admitted = 0;
  int rejected = 0;
};

PolicyScore run_policy(MatchPolicy policy, uint64_t seed) {
  // Heterogeneous memory: 4 small (64), 3 medium (128), 2 large (512).
  Topology topo;
  int node_index = 0;
  auto add = [&](double memory, int count) {
    for (int i = 0; i < count; ++i) {
      auto id = topo.add_node(str_format("n%02d", node_index++), 1.0, memory);
      HARMONY_ASSERT(id.ok());
    }
  };
  add(64, 4);
  add(128, 3);
  add(512, 2);
  for (size_t i = 0; i < topo.node_count(); ++i) {
    for (size_t j = i + 1; j < topo.node_count(); ++j) {
      auto linked = topo.add_link(static_cast<NodeId>(i),
                                  static_cast<NodeId>(j), 320);
      HARMONY_ASSERT(linked.ok());
    }
  }
  ResourcePool pool(&topo);
  Matcher matcher(policy);
  Rng rng(seed);

  struct LiveJob {
    Allocation allocation;
    int departs_at;
  };
  std::vector<LiveJob> live;
  PolicyScore score;

  for (int step = 0; step < 2000; ++step) {
    // Departures first.
    for (size_t i = 0; i < live.size();) {
      if (live[i].departs_at <= step) {
        auto released = Matcher::release(live[i].allocation, pool);
        HARMONY_ASSERT(released.ok());
        live[i] = std::move(live.back());
        live.pop_back();
      } else {
        ++i;
      }
    }
    // One arrival per step: replicated workers with mixed footprints.
    int replicas = static_cast<int>(rng.next_int(1, 4));
    double memory = std::vector<double>{16, 32, 48, 96, 200}[rng.next_below(5)];
    std::vector<NodeRequirement> requirements;
    for (int r = 0; r < replicas; ++r) {
      requirements.push_back({"w", r, "*", "", memory});
    }
    auto allocation = matcher.match(requirements, {}, pool);
    if (allocation.ok()) {
      ++score.admitted;
      live.push_back({std::move(allocation).value(),
                      step + static_cast<int>(rng.next_int(5, 40))});
    } else {
      ++score.rejected;
    }
    HARMONY_ASSERT(pool.invariants_hold());
  }
  for (auto& job : live) {
    auto released = Matcher::release(job.allocation, pool);
    HARMONY_ASSERT(released.ok());
  }
  return score;
}

int run() {
  std::printf("=== Ablation A4: matching policy vs fragmentation ===\n");
  std::printf("cluster: 4x64MB + 3x128MB + 2x512MB; 2000 arrivals of 1-4 "
              "replicas x {16..200} MB, random lifetimes\n\n");
  std::printf("policy      admitted  rejected  admission_rate  (mean over 5 "
              "seeds)\n");
  bool ok = true;
  double best_rate = 0;
  const char* best_policy = "";
  for (MatchPolicy policy : {MatchPolicy::kFirstFit, MatchPolicy::kBestFit,
                             MatchPolicy::kWorstFit}) {
    double admitted = 0, rejected = 0;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      auto score = run_policy(policy, seed * 7919);
      admitted += score.admitted;
      rejected += score.rejected;
    }
    admitted /= 5;
    rejected /= 5;
    double rate = admitted / (admitted + rejected);
    std::printf("%-10s  %8.0f  %8.0f  %13.1f%%\n", match_policy_name(policy),
                admitted, rejected, 100 * rate);
    if (rate > best_rate) {
      best_rate = rate;
      best_policy = match_policy_name(policy);
    }
    ok = ok && rate > 0.5;
  }
  std::printf("\nsummary: %s admits the most under this mix. The gap between "
              "policies is small because the load-aware pre-ordering (least "
              "loaded first) already spreads jobs; the paper's plain "
              "first-fit is a reasonable default, as §4.1 assumes.\n",
              best_policy);
  return ok ? 0 : 1;
}

}  // namespace

int main() { return run(); }
