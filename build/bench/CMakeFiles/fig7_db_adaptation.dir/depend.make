# Empty dependencies file for fig7_db_adaptation.
# This may be replaced when dependencies are built.
