// Shared scenario builders for core/controller tests and benches: the
// paper's SP-2-like cluster, the Figure 2 applications (Simple, Bag) and
// the Figure 3 client-server database bundles.
#pragma once

#include <string>
#include <vector>

#include "common/strings.h"
#include "core/controller.h"
#include "rsl/spec.h"

namespace harmony::testing {

// Serializes everything a decision can influence, at full precision:
// per-bundle configuration, choice variables, memory grants, switch
// times, placements, the reconfiguration counter and the objective.
// Two controllers with equal fingerprints have made identical decision
// sequences. Used by the incremental-vs-full differential test and by
// the crash-recovery tests (recovered state must fingerprint-match the
// pre-crash controller).
inline std::string fingerprint(const core::Controller& controller) {
  std::string out;
  for (const auto& instance : controller.state().instances) {
    out += str_format("i%llu:%s\n",
                      static_cast<unsigned long long>(instance.id),
                      instance.application.c_str());
    for (const auto& bundle : instance.bundles) {
      out += str_format(" b=%s cfg=%d", bundle.spec.bundle.c_str(),
                        bundle.configured ? 1 : 0);
      if (bundle.configured) {
        out += " choice=" + bundle.choice.option;
        for (const auto& [name, value] : bundle.choice.variables) {
          out += str_format(" %s=%.17g", name.c_str(), value);
        }
        out += str_format(" grant=%.17g switched=%.17g",
                          bundle.choice.memory_grant,
                          bundle.last_switch_time);
        for (const auto& entry : bundle.allocation.entries) {
          out += str_format(" [%s.%d@%u mem=%.17g]",
                            entry.requirement.role.c_str(),
                            entry.requirement.index, entry.node,
                            entry.requirement.memory_mb);
        }
      }
      out += '\n';
    }
  }
  out += str_format("reconfigs=%llu\n",
                    static_cast<unsigned long long>(
                        controller.reconfigurations()));
  auto objective = controller.objective_value();
  out += objective.ok() ? str_format("objective=%.17g\n", objective.value())
                        : ("objective_err=" + objective.error().message + "\n");
  return out;
}

// n worker nodes "sp2-XX" (speed 1, 64 MB) plus one server host
// "server" (speed 2, 512 MB), full switch at `mbps` (default 320, the
// paper's high performance switch).
inline std::string sp2_cluster_script(int n, double worker_memory_mb = 64,
                                      double mbps = 320) {
  std::string script;
  for (int i = 0; i < n; ++i) {
    script += str_format("harmonyNode sp2-%02d {speed 1.0} {memory %g} {os aix}",
                         i, worker_memory_mb);
    for (int j = 0; j < i; ++j) {
      script += str_format(" {link sp2-%02d %g 0.05}", j, mbps);
    }
    script += " {link server " + format_number(mbps) + " 0.05}\n";
  }
  script += "harmonyNode server {speed 2.0} {memory 512} {os aix}\n";
  return script;
}

// Figure 2(a): generic parallel application on `workers` dedicated
// nodes. Default model (no performance tag).
inline std::string simple_bundle(int workers = 4, double seconds = 300,
                                 double memory = 32) {
  return str_format(
      "harmonyBundle Simple:1 config {\n"
      "  {fixed\n"
      "    {node worker {seconds %g} {memory %g} {replicate %d}}\n"
      "    {communication 10}}\n"
      "}\n",
      seconds, memory, workers);
}

// Figure 2(b): bag-of-tasks with variable parallelism and the paper's
// speedup curve as an explicit performance model.
inline std::string bag_bundle(const std::string& workers = "1 2 3 4 5 6 7 8",
                              double granularity = 0) {
  return str_format(
      "harmonyBundle Bag:1 parallelism {\n"
      "  {var\n"
      "    {variable workerNodes {%s}}\n"
      "    {node worker {seconds {1200.0 / workerNodes}} {memory 16}\n"
      "          {replicate {workerNodes}}}\n"
      "    {communication {0.5 * workerNodes * workerNodes}}\n"
      "    {performance {{1 1250} {2 640} {3 450} {4 340} {5 290} {6 270} "
      "{7 260} {8 255}}}\n"
      "    {granularity %g}}\n"
      "}\n",
      workers.c_str(), granularity);
}

// Figure 3: hybrid client-server database bundle. Numbers follow the
// paper's structure (QS loads the server, DS loads the client; DS moves
// more data) with magnitudes chosen so the QS->DS crossover falls at
// three clients on the sp2 cluster, as in Figure 7.
//
// The paper's DS link expression is OCR-garbled in our source
// ("44 + (client.memory > 24 ? 24 : client.memory) - 17"); §3.5 states
// the intent — more client memory reduces bandwidth — so we use the
// decreasing form 61 - min(client.memory, 24).
inline std::string db_client_bundle(const std::string& client_host,
                                    int instance = 1) {
  return str_format(
      "harmonyBundle DBclient:%d where {\n"
      "  {QS\n"
      "    {node server {hostname server} {seconds 9} {memory 20}}\n"
      "    {node client {hostname %s} {seconds 1} {memory 2}}\n"
      "    {link client server 10}}\n"
      "  {DS\n"
      "    {node server {hostname server} {seconds 1} {memory 20}}\n"
      "    {node client {hostname %s} {memory >=17} {seconds 9}}\n"
      "    {link client server {61 - (client.memory > 24 ? 24 : "
      "client.memory)}}}\n"
      "}\n",
      instance, client_host.c_str(), client_host.c_str());
}

}  // namespace harmony::testing
