#include "db/executor.h"

#include <unordered_map>

namespace harmony::db {

WorkCounters& WorkCounters::operator+=(const WorkCounters& other) {
  rows_selected_left += other.rows_selected_left;
  rows_selected_right += other.rows_selected_right;
  rows_examined += other.rows_examined;
  join_build_rows += other.join_build_rows;
  join_probe_rows += other.join_probe_rows;
  result_rows += other.result_rows;
  result_bytes += other.result_bytes;
  return *this;
}

std::vector<JoinedRow> hash_join(const Table& left,
                                 const std::vector<RowId>& left_rows,
                                 const Table& right,
                                 const std::vector<RowId>& right_rows,
                                 Attr join_attr, WorkCounters* counters) {
  const bool left_builds = left_rows.size() <= right_rows.size();
  const Table& build_table = left_builds ? left : right;
  const Table& probe_table = left_builds ? right : left;
  const auto& build_rows = left_builds ? left_rows : right_rows;
  const auto& probe_rows = left_builds ? right_rows : left_rows;

  std::unordered_multimap<int32_t, RowId> hash;
  hash.reserve(build_rows.size());
  for (RowId id : build_rows) {
    hash.emplace(attr_value(build_table.row(id), join_attr), id);
  }
  if (counters) counters->join_build_rows += build_rows.size();

  std::vector<JoinedRow> out;
  for (RowId probe_id : probe_rows) {
    auto [lo, hi] =
        hash.equal_range(attr_value(probe_table.row(probe_id), join_attr));
    for (auto it = lo; it != hi; ++it) {
      JoinedRow row;
      row.left = left_builds ? it->second : probe_id;
      row.right = left_builds ? probe_id : it->second;
      out.push_back(row);
    }
  }
  if (counters) {
    counters->join_probe_rows += probe_rows.size();
    counters->result_rows += out.size();
    counters->result_bytes += out.size() * 2 * kTupleBytes;
  }
  return out;
}

QueryResult run_benchmark_query(const Table& left, const Table& right,
                                const BenchmarkQuery& query) {
  QueryResult result;
  auto left_rows = left.select_eq(Attr::kTenPercent, query.left_ten_percent,
                                  &result.work.rows_examined);
  auto right_rows = right.select_eq(Attr::kTenPercent, query.right_ten_percent,
                                    &result.work.rows_examined);
  result.work.rows_selected_left = left_rows.size();
  result.work.rows_selected_right = right_rows.size();
  result.rows = hash_join(left, left_rows, right, right_rows, Attr::kUnique1,
                          &result.work);
  return result;
}

}  // namespace harmony::db
