#include "core/state.h"

#include <algorithm>

#include "common/assert.h"
#include "common/strings.h"

namespace harmony::core {

std::string OptionChoice::to_string() const {
  std::string out = option;
  for (const auto& [name, value] : variables) {
    out += str_format(" %s=%s", name.c_str(), format_number(value).c_str());
  }
  if (memory_grant != 1.0) {
    out += str_format(" mem*%s", format_number(memory_grant).c_str());
  }
  return out;
}

std::vector<OptionChoice> enumerate_choices(const rsl::OptionSpec& option) {
  std::vector<OptionChoice> out;
  out.push_back(OptionChoice{option.name, {}});
  for (const auto& variable : option.variables) {
    std::vector<OptionChoice> expanded;
    expanded.reserve(out.size() * variable.values.size());
    for (const auto& base : out) {
      for (double value : variable.values) {
        OptionChoice next = base;
        next.variables[variable.name] = value;
        expanded.push_back(std::move(next));
      }
    }
    out = std::move(expanded);
  }
  return out;
}

std::vector<OptionChoice> enumerate_choices(const rsl::BundleSpec& bundle) {
  std::vector<OptionChoice> out;
  for (const auto& option : bundle.options) {
    auto choices = enumerate_choices(option);
    out.insert(out.end(), choices.begin(), choices.end());
  }
  return out;
}

BundleState* InstanceState::find_bundle(const std::string& name) {
  for (auto& bundle : bundles) {
    if (bundle.spec.bundle == name) return &bundle;
  }
  return nullptr;
}

const BundleState* InstanceState::find_bundle(const std::string& name) const {
  for (const auto& bundle : bundles) {
    if (bundle.spec.bundle == name) return &bundle;
  }
  return nullptr;
}

std::string InstanceState::path() const {
  return application + "." + str_format("%llu",
                                        static_cast<unsigned long long>(id));
}

InstanceState* SystemState::find_instance(InstanceId id) {
  return const_cast<InstanceState*>(
      static_cast<const SystemState*>(this)->find_instance(id));
}

const InstanceState* SystemState::find_instance(InstanceId id) const {
  // Ids are assigned monotonically and instances are appended in
  // arrival order, so the vector stays sorted by id; every GET/SET the
  // network front end dispatches lands here, which makes the lookup
  // latency-critical at swarm scale. The scan fallback covers any
  // restore path that might break the ordering.
  auto it = std::lower_bound(
      instances.begin(), instances.end(), id,
      [](const InstanceState& instance, InstanceId want) {
        return instance.id < want;
      });
  if (it != instances.end() && it->id == id) return &*it;
  for (const auto& instance : instances) {
    if (instance.id == id) return &instance;
  }
  return nullptr;
}

const std::vector<cluster::NodeId>& BundleState::admissible(
    const cluster::Topology& topology) const {
  if (admissible_cached) return admissible_nodes;
  admissible_nodes.clear();
  for (const auto& node : topology.nodes()) {
    bool admits = false;
    for (const auto& option : spec.options) {
      for (const auto& req : option.nodes) {
        if (!glob_match(req.hostname, node.hostname)) continue;
        if (!req.os.empty() && node.os != req.os) continue;
        admits = true;
        break;
      }
      if (admits) break;
    }
    if (admits) admissible_nodes.push_back(node.id);
  }
  admissible_cached = true;
  return admissible_nodes;
}

void SystemState::touch_node(cluster::NodeId node) {
  if (node >= node_version.size()) return;
  node_version[node] = ++version;
}

void SystemState::touch_allocation(const cluster::Allocation& allocation) {
  for (const auto& entry : allocation.entries) touch_node(entry.node);
}

void SystemState::touch_all() {
  ++version;
  std::fill(node_version.begin(), node_version.end(), version);
  std::fill(node_load_version.begin(), node_load_version.end(), version);
}

void SystemState::touch_node_load(cluster::NodeId node) {
  if (node >= node_load_version.size()) return;
  node_load_version[node] = ++version;
}

uint64_t SystemState::max_node_version(
    const std::vector<cluster::NodeId>& nodes) const {
  uint64_t max = 0;
  for (cluster::NodeId node : nodes) {
    if (node < node_version.size()) max = std::max(max, node_version[node]);
  }
  return max;
}

uint64_t SystemState::max_node_load_version(
    const std::vector<cluster::NodeId>& nodes) const {
  uint64_t max = 0;
  for (cluster::NodeId node : nodes) {
    if (node < node_load_version.size()) {
      max = std::max(max, node_load_version[node]);
    }
  }
  return max;
}

PlanOverlay::PlanOverlay(const SystemState& state, const BundleState* bundle)
    : overlay_(state.pool.get()) {
  // Base contention: every configured allocation except the bundle
  // under optimization, mirroring SystemState::node_load()'s presence
  // semantics (nodes appear only with a positive count).
  for (const auto& instance : state.instances) {
    for (const auto& other : instance.bundles) {
      if (&other == bundle || !other.configured) continue;
      for (const auto& entry : other.allocation.entries) {
        ++base_load_[entry.node];
      }
    }
  }
  for (cluster::NodeId id = 0; id < state.topology.node_count(); ++id) {
    int external = state.pool->external_load(id);
    if (external > 0) base_load_[id] += external;
  }
  // Release the bundle's current allocation inside the overlay only:
  // candidates are matched as if this bundle held nothing.
  if (bundle != nullptr && bundle->configured) {
    auto released = cluster::Matcher::release(bundle->allocation, overlay_);
    HARMONY_ASSERT_MSG(released.ok(),
                       "releasing current allocation in overlay failed");
  }
}

std::map<cluster::NodeId, int> PlanOverlay::load_with(
    const cluster::Allocation& candidate) const {
  std::map<cluster::NodeId, int> load = base_load_;
  for (const auto& entry : candidate.entries) ++load[entry.node];
  return load;
}

std::map<cluster::NodeId, int> SystemState::node_load() const {
  std::map<cluster::NodeId, int> load;
  for (const auto& instance : instances) {
    for (const auto& bundle : instance.bundles) {
      if (!bundle.configured) continue;
      for (const auto& entry : bundle.allocation.entries) {
        ++load[entry.node];
      }
    }
  }
  // Load from outside Harmony's control, as reported through the
  // metric interface (§4.3).
  if (pool != nullptr) {
    for (cluster::NodeId id = 0; id < topology.node_count(); ++id) {
      int external = pool->external_load(id);
      if (external > 0) load[id] += external;
    }
  }
  return load;
}

}  // namespace harmony::core
