file(REMOVE_RECURSE
  "CMakeFiles/harmony_common.dir/logging.cc.o"
  "CMakeFiles/harmony_common.dir/logging.cc.o.d"
  "CMakeFiles/harmony_common.dir/stats.cc.o"
  "CMakeFiles/harmony_common.dir/stats.cc.o.d"
  "CMakeFiles/harmony_common.dir/strings.cc.o"
  "CMakeFiles/harmony_common.dir/strings.cc.o.d"
  "libharmony_common.a"
  "libharmony_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
