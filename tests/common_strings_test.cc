#include "common/strings.h"

#include <gtest/gtest.h>

namespace harmony {
namespace {

TEST(Split, PreservesEmptyFields) {
  EXPECT_EQ(split("a.b.c", '.'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a..c", '.'), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(split(".", '.'), (std::vector<std::string>{"", ""}));
}

TEST(SplitWhitespace, CollapsesRuns) {
  EXPECT_EQ(split_whitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_whitespace("   ").empty());
  EXPECT_TRUE(split_whitespace("").empty());
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Join, RoundTripsWithSplit) {
  std::vector<std::string> parts{"alpha", "beta", "gamma"};
  EXPECT_EQ(join(parts, "."), "alpha.beta.gamma");
  EXPECT_EQ(split(join(parts, "."), '.'), parts);
  EXPECT_EQ(join({}, "."), "");
  EXPECT_EQ(join({"solo"}, "."), "solo");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("harmony.cs.umd.edu", "harmony"));
  EXPECT_FALSE(starts_with("ha", "harmony"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(StrFormat, FormatsLikePrintf) {
  EXPECT_EQ(str_format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(str_format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(str_format("empty%s", ""), "empty");
}

TEST(ParseDouble, AcceptsCompleteNumbersOnly) {
  double v = 0;
  EXPECT_TRUE(parse_double("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(parse_double("  -2e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_FALSE(parse_double("3.5x", &v));
  EXPECT_FALSE(parse_double("", &v));
  EXPECT_FALSE(parse_double("abc", &v));
}

TEST(ParseInt64, AcceptsCompleteIntegersOnly) {
  long long v = 0;
  EXPECT_TRUE(parse_int64("-17", &v));
  EXPECT_EQ(v, -17);
  EXPECT_FALSE(parse_int64("17.5", &v));
  EXPECT_FALSE(parse_int64("x", &v));
}

TEST(ParseInt64, RejectsOutOfRange) {
  long long v = 0;
  // strtoll saturates at the limits and sets ERANGE; accepting the
  // clamped value would silently corrupt ids and counts.
  EXPECT_FALSE(parse_int64("9223372036854775808", &v));   // INT64_MAX + 1
  EXPECT_FALSE(parse_int64("-9223372036854775809", &v));  // INT64_MIN - 1
  EXPECT_FALSE(parse_int64("99999999999999999999999999", &v));
  // The exact limits still parse.
  EXPECT_TRUE(parse_int64("9223372036854775807", &v));
  EXPECT_EQ(v, 9223372036854775807LL);
  EXPECT_TRUE(parse_int64("-9223372036854775808", &v));
  EXPECT_EQ(v, -9223372036854775807LL - 1);
}

TEST(ParseDouble, RejectsOverflow) {
  double v = 0;
  EXPECT_FALSE(parse_double("1e999", &v));
  EXPECT_FALSE(parse_double("-1e999", &v));
  // Underflow to a denormal (or zero) is accepted: format_number's
  // round-trip loop emits such values and must be able to reread them.
  EXPECT_TRUE(parse_double("1e-320", &v));
  EXPECT_GT(v, 0.0);
  EXPECT_TRUE(parse_double("1e308", &v));
}

TEST(FormatNumber, IntegralValuesPrintWithoutPoint) {
  EXPECT_EQ(format_number(42.0), "42");
  EXPECT_EQ(format_number(-3.0), "-3");
  EXPECT_EQ(format_number(0.0), "0");
}

TEST(FormatNumber, FractionsRoundTrip) {
  for (double v : {0.5, 3.14159, -0.001, 1.0 / 3.0, 1e-10}) {
    double parsed = 0;
    ASSERT_TRUE(parse_double(format_number(v), &parsed)) << v;
    EXPECT_DOUBLE_EQ(parsed, v);
  }
}

struct GlobCase {
  const char* pattern;
  const char* text;
  bool match;
};

class GlobMatchTest : public ::testing::TestWithParam<GlobCase> {};

TEST_P(GlobMatchTest, Matches) {
  const auto& c = GetParam();
  EXPECT_EQ(glob_match(c.pattern, c.text), c.match)
      << c.pattern << " vs " << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, GlobMatchTest,
    ::testing::Values(
        GlobCase{"*", "", true}, GlobCase{"*", "anything", true},
        GlobCase{"", "", true}, GlobCase{"", "x", false},
        GlobCase{"abc", "abc", true}, GlobCase{"abc", "abd", false},
        GlobCase{"a*c", "abc", true}, GlobCase{"a*c", "ac", true},
        GlobCase{"a*c", "abcd", false}, GlobCase{"a?c", "abc", true},
        GlobCase{"a?c", "ac", false},
        GlobCase{"harmony.*", "harmony.cs.umd.edu", true},
        GlobCase{"*.umd.edu", "harmony.cs.umd.edu", true},
        GlobCase{"*.mit.edu", "harmony.cs.umd.edu", false},
        GlobCase{"sp2-[0-9][0-9]", "sp2-07", true},
        GlobCase{"sp2-[0-9][0-9]", "sp2-ab", false},
        GlobCase{"node*", "node", true},
        GlobCase{"*node", "supernode", true},
        GlobCase{"a**b", "a-x-b", true}));

}  // namespace
}  // namespace harmony
