// Parses TCL-subset scripts into command sequences. Substitution ($var,
// [command], backslash escapes) is recorded structurally here and
// performed later by the interpreter, as in real TCL.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace harmony::rsl {

enum class SegKind {
  kLiteral,   // text copied verbatim
  kVariable,  // $name or ${name}: text is the variable name
  kCommand,   // [script]: text is the nested script
};

struct Segment {
  SegKind kind;
  std::string text;
};

enum class WordKind {
  kBraced,  // {…}: no substitution, literal holds the body
  kSimple,  // bare or "quoted": segments are concatenated after substitution
};

struct Word {
  WordKind kind = WordKind::kSimple;
  std::string literal;            // kBraced only
  std::vector<Segment> segments;  // kSimple only
  int line = 0;

  // True when the word is a single literal segment (fast path, and used
  // to detect commands whose arguments need no substitution).
  bool is_literal() const {
    return kind == WordKind::kBraced ||
           (segments.size() == 1 && segments[0].kind == SegKind::kLiteral);
  }
  const std::string& literal_text() const {
    return kind == WordKind::kBraced ? literal : segments[0].text;
  }
};

struct ParsedCommand {
  std::vector<Word> words;
  int line = 0;
};

// Splits a script into commands (separated by newlines / semicolons,
// honoring braces, quotes and [] nesting) and each command into words.
Result<std::vector<ParsedCommand>> parse_script(std::string_view script);

}  // namespace harmony::rsl
