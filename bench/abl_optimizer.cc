// Ablation A1 — greedy one-bundle-at-a-time vs exhaustive joint search.
// The paper (§4.3) chooses greedy: "a simple form of greedy
// optimization that will not necessarily produce a globally optimal
// value, but it is simple and easy to implement." This bench quantifies
// the tradeoff: objective quality vs candidate evaluations and decision
// wall time, as database clients accumulate.
//
// A1b — incremental planning engine. Steady-state re-evaluation cost of
// the dirty-set + prediction-cache path against a forced full pass, for
// a quiet system and for localized perturbations. Results (decisions/s,
// candidates per decision, cache hit rate) also land in
// BENCH_optimizer.json for machine consumption.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/db_app.h"
#include "apps/scenarios.h"
#include "common/strings.h"
#include "core/controller.h"
#include "core/domain.h"
#include "metric/telemetry.h"
#include "persist/persistence.h"
#include "rsl/program.h"
#include "test_scenarios.h"

namespace {

using namespace harmony;
using namespace harmony::apps;

struct RunResult {
  double objective = 0;
  uint64_t candidates = 0;
  double wall_ms = 0;
  bool ok = true;
};

RunResult run_mode(core::OptimizerConfig::Mode mode, int clients) {
  core::ControllerConfig config;
  config.optimizer.mode = mode;
  core::Controller controller(config);
  RunResult result;
  if (!controller.add_nodes_script(db_cluster_script(clients)).ok() ||
      !controller.finalize_cluster().ok()) {
    result.ok = false;
    return result;
  }
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 1; i <= clients; ++i) {
    DbClientConfig client;
    client.client_host = str_format("sp2-%02d", i - 1);
    client.instance = i;
    auto id = controller.register_script(db_client_bundle_script(client));
    if (!id.ok()) {
      result.ok = false;
      return result;
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  result.candidates = controller.optimizer().candidates_evaluated();
  auto objective = controller.objective_value();
  result.objective = objective.ok() ? objective.value() : -1;
  return result;
}

// --- A1b: steady-state re-evaluation --------------------------------------

struct SteadyResult {
  double wall_ms = 0;
  uint64_t decisions = 0;
  uint64_t candidates = 0;
  uint64_t predictor_calls = 0;
  uint64_t bundles_skipped = 0;
  // RSL expression evaluations (rsl::expr_evaluations() delta): the
  // per-decision expression work the prediction cache and dirty-set
  // skipping avoid.
  uint64_t expr_evals = 0;
  double cache_hit_rate = 0;
  bool ok = true;

  double decisions_per_sec() const {
    return wall_ms > 0 ? decisions / (wall_ms / 1000.0) : 0;
  }
  double candidates_per_decision() const {
    return decisions > 0 ? static_cast<double>(candidates) / decisions : 0;
  }
  double expr_evals_per_decision() const {
    return decisions > 0 ? static_cast<double>(expr_evals) / decisions : 0;
  }
};

// Perturbation applied between re-evaluation rounds.
enum class Scenario { kQuiet, kSpareNodeLoad, kClientNodeLoad };

const char* scenario_name(Scenario scenario) {
  switch (scenario) {
    case Scenario::kQuiet: return "quiet";
    case Scenario::kSpareNodeLoad: return "spare_node_load";
    case Scenario::kClientNodeLoad: return "client_node_load";
  }
  return "?";
}

std::string persist_dir() {
  return str_format("/tmp/abl_optimizer_wal_%d", static_cast<int>(::getpid()));
}

void clean_persist_dir() {
  const std::string dir = persist_dir();
  std::remove((dir + "/journal.wal").c_str());
  std::remove((dir + "/snapshot.hsn").c_str());
  std::remove((dir + "/snapshot.tmp").c_str());
  ::rmdir(dir.c_str());
}

SteadyResult run_steady(bool incremental, Scenario scenario, int clients,
                        int rounds, bool journaled = false) {
  core::ControllerConfig config;
  config.optimizer.incremental = incremental;
  config.optimizer.memoize_predictions = incremental;
  core::Controller controller(config);
  SteadyResult result;
  double t = 0;
  controller.set_time_source([&t] { return t; });
  std::unique_ptr<persist::Persistence> persistence;
  if (journaled) {
    clean_persist_dir();  // a leftover journal would trigger recovery
    persist::PersistConfig persist_config;
    persist_config.dir = persist_dir();
    auto opened = persist::Persistence::open(persist_config, controller);
    if (!opened.ok()) {
      result.ok = false;
      return result;
    }
    persistence = std::move(opened).value();
  }
  // One spare worker beyond the clients, so kSpareNodeLoad can perturb
  // a node no application can ever be placed on.
  if (!controller.add_nodes_script(db_cluster_script(clients + 1)).ok() ||
      !controller.finalize_cluster().ok()) {
    result.ok = false;
    return result;
  }
  for (int i = 1; i <= clients; ++i) {
    DbClientConfig client;
    client.client_host = str_format("sp2-%02d", i - 1);
    client.instance = i;
    auto id = controller.register_script(db_client_bundle_script(client));
    if (!id.ok()) {
      result.ok = false;
      return result;
    }
    t += 10;
  }
  // Settle: one pass so every bundle holds its argmin configuration.
  t += 10;
  if (!controller.reevaluate().ok()) {
    result.ok = false;
    return result;
  }

  auto& optimizer = controller.optimizer();
  const uint64_t candidates0 = optimizer.candidates_evaluated();
  const uint64_t predictor0 = optimizer.predictor_calls();
  const uint64_t skipped0 = optimizer.bundles_skipped();
  const uint64_t exprs0 = rsl::expr_evaluations();
  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) {
    t += 10;
    Status status = Status::Ok();
    switch (scenario) {
      case Scenario::kQuiet:
        status = controller.reevaluate();
        break;
      case Scenario::kSpareNodeLoad:
        // Flip external load on the worker nobody can run on; the
        // re-evaluation it triggers finds no affected bundle.
        status = controller.report_external_load(
            str_format("sp2-%02d", clients), round % 2 ? 0 : 2);
        break;
      case Scenario::kClientNodeLoad:
        // Flip load under client 1; its bundle (and everyone coupled to
        // it through the shared server) must be re-evaluated.
        status = controller.report_external_load("sp2-00",
                                                 round % 2 ? 0 : 2);
        break;
    }
    if (!status.ok()) {
      result.ok = false;
      return result;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  // One decision per (instance, bundle) per pass, skipped or not.
  result.decisions = static_cast<uint64_t>(rounds) * clients;
  result.candidates = optimizer.candidates_evaluated() - candidates0;
  result.predictor_calls = optimizer.predictor_calls() - predictor0;
  result.bundles_skipped = optimizer.bundles_skipped() - skipped0;
  result.expr_evals = rsl::expr_evaluations() - exprs0;
  result.cache_hit_rate = optimizer.cache_stats().hit_rate();
  return result;
}

double ratio(uint64_t full, uint64_t incremental) {
  if (incremental == 0) return full > 0 ? 1e9 : 1.0;
  return static_cast<double>(full) / static_cast<double>(incremental);
}

// --- Partitioned decision core: multi-tenant scaling ----------------------
// kTenantGroups isolated app groups (hostname-pinned bundles, so the
// bundle/node sharing graph has one connected component per group)
// behind one decision core. Each round flips external load under one
// group, round-robin. The single-domain reference re-establishes the
// system argmin by re-deciding every bundle; the partitioned core
// routes the event to the owning domain and proves every out-of-domain
// bundle unchanged without touching it — per-event cost O(domain)
// instead of O(system). Decision identity is asserted on the final
// configuration fingerprint.

constexpr int kTenantGroups = 8;
constexpr int kTenantNodesPerGroup = 3;
constexpr int kTenantAppsPerGroup = 3;
constexpr int kTenantRounds = 200;

struct PartitionRun {
  double wall_ms = 0;
  std::string fingerprint;
  bool ok = true;
};

PartitionRun run_partition_mode(bool single_domain) {
  core::DomainRouterConfig config;
  config.single_domain = single_domain;
  // One worker for both modes: the quantity measured here is the
  // algorithmic per-event cost, not thread parallelism (on multi-core
  // hosts more workers stack a parallel speedup on top).
  config.workers = 1;
  // Full decision pass per event on BOTH sides. The dirty-set engine is
  // ablated separately (A1b above) and composes multiplicatively; this
  // section isolates what the domain decomposition alone saves.
  config.controller.optimizer.incremental = false;
  config.controller.optimizer.memoize_predictions = false;
  core::DomainRouter router(config);
  PartitionRun result;
  double t = 0;
  router.set_time_source([&t] { return t; });
  std::vector<std::string> groups;
  for (int g = 0; g < kTenantGroups; ++g) {
    groups.push_back(str_format("g%02d", g));
  }
  if (!router
           .add_nodes_script(harmony::testing::grouped_cluster_script(
               groups, kTenantNodesPerGroup))
           .ok() ||
      !router.finalize_cluster().ok()) {
    result.ok = false;
    return result;
  }
  int tag = 1;
  for (const auto& group : groups) {
    for (int i = 0; i < kTenantAppsPerGroup; ++i) {
      t += 10;
      if (!router.register_script(
                    harmony::testing::pinned_group_bundle(group, tag++))
               .ok()) {
        result.ok = false;
        return result;
      }
    }
  }
  router.quiesce();
  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < kTenantRounds; ++round) {
    t += 10;
    const std::string host = str_format("g%02d-00", round % kTenantGroups);
    if (!router.report_external_load(host, round % 2 ? 0 : 2).ok()) {
      result.ok = false;
      return result;
    }
  }
  router.quiesce();
  const auto t1 = std::chrono::steady_clock::now();
  result.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  result.fingerprint = harmony::testing::fingerprint(router);
  return result;
}

int run() {
  std::printf("=== Ablation A1: greedy vs exhaustive option search ===\n");
  std::printf("scenario: N database clients arriving on an N-client cluster; "
              "objective = mean predicted completion time\n\n");
  std::printf("clients   greedy_obj  exhaust_obj  gap%%   greedy_cands  "
              "exhaust_cands   greedy_ms  exhaust_ms\n");
  bool greedy_ever_worse = false;
  bool ok = true;
  std::string json_a1;
  for (int clients : {1, 2, 3, 4, 5, 6}) {
    auto greedy = run_mode(core::OptimizerConfig::Mode::kGreedy, clients);
    auto exhaustive =
        run_mode(core::OptimizerConfig::Mode::kExhaustive, clients);
    ok = ok && greedy.ok && exhaustive.ok;
    double gap = exhaustive.objective > 0
                     ? 100.0 * (greedy.objective - exhaustive.objective) /
                           exhaustive.objective
                     : 0;
    if (gap > 1e-6) greedy_ever_worse = true;
    std::printf("%7d   %10.3f  %11.3f  %5.1f  %12llu  %13llu  %10.2f  %10.2f\n",
                clients, greedy.objective, exhaustive.objective, gap,
                static_cast<unsigned long long>(greedy.candidates),
                static_cast<unsigned long long>(exhaustive.candidates),
                greedy.wall_ms, exhaustive.wall_ms);
    if (!json_a1.empty()) json_a1 += ",";
    json_a1 += str_format(
        "\n    {\"clients\": %d, \"greedy_objective\": %.6g, "
        "\"exhaustive_objective\": %.6g, \"gap_percent\": %.3g, "
        "\"greedy_candidates\": %llu, \"exhaustive_candidates\": %llu, "
        "\"greedy_ms\": %.3f, \"exhaustive_ms\": %.3f}",
        clients, greedy.objective, exhaustive.objective, gap,
        static_cast<unsigned long long>(greedy.candidates),
        static_cast<unsigned long long>(exhaustive.candidates),
        greedy.wall_ms, exhaustive.wall_ms);
  }
  std::printf("\nsummary: greedy matches the exhaustive optimum on this "
              "workload: %s\n", greedy_ever_worse ? "no (gap above)" : "yes");
  std::printf("exhaustive candidate count grows as 2^N (joint space); greedy "
              "grows linearly per pass.\n");

  const int clients = 6;
  const int rounds = 200;
  std::printf("\n=== Ablation A1b: incremental planning engine ===\n");
  std::printf("scenario: %d settled clients, %d steady-state re-evaluation "
              "rounds per perturbation pattern\n\n", clients, rounds);
  std::printf("%-17s %-12s %10s %12s %12s %10s %12s %10s %10s\n", "scenario",
              "engine", "wall_ms", "decisions/s", "cands/dec", "cands",
              "pred_calls", "exprs/dec", "hit_rate");
  std::string json_steady;
  bool reduction_met = true;
  for (Scenario scenario : {Scenario::kQuiet, Scenario::kSpareNodeLoad,
                            Scenario::kClientNodeLoad}) {
    auto incremental = run_steady(true, scenario, clients, rounds);
    auto full = run_steady(false, scenario, clients, rounds);
    ok = ok && incremental.ok && full.ok;
    for (const auto* row : {&incremental, &full}) {
      std::printf(
          "%-17s %-12s %10.2f %12.0f %12.2f %10llu %12llu %10.2f %10.3f\n",
          scenario_name(scenario),
          row == &incremental ? "incremental" : "full",
          row->wall_ms, row->decisions_per_sec(),
          row->candidates_per_decision(),
          static_cast<unsigned long long>(row->candidates),
          static_cast<unsigned long long>(row->predictor_calls),
          row->expr_evals_per_decision(), row->cache_hit_rate);
    }
    const double candidate_ratio = ratio(full.candidates,
                                         incremental.candidates);
    const double predictor_ratio = ratio(full.predictor_calls,
                                         incremental.predictor_calls);
    std::printf("%-17s reduction: %.1fx candidates, %.1fx predictor calls\n",
                "", candidate_ratio, predictor_ratio);
    // Acceptance: >=2x less steady-state work on candidates or
    // predictor calls.
    if (candidate_ratio < 2.0 && predictor_ratio < 2.0) reduction_met = false;
    if (!json_steady.empty()) json_steady += ",";
    auto engine_json = [](const SteadyResult& r) {
      return str_format(
          "{\"wall_ms\": %.3f, \"decisions\": %llu, "
          "\"decisions_per_sec\": %.1f, \"candidates\": %llu, "
          "\"candidates_per_decision\": %.4f, \"predictor_calls\": %llu, "
          "\"bundles_skipped\": %llu, \"expr_evaluations\": %llu, "
          "\"expr_evaluations_per_decision\": %.4f, "
          "\"cache_hit_rate\": %.4f}",
          r.wall_ms, static_cast<unsigned long long>(r.decisions),
          r.decisions_per_sec(),
          static_cast<unsigned long long>(r.candidates),
          r.candidates_per_decision(),
          static_cast<unsigned long long>(r.predictor_calls),
          static_cast<unsigned long long>(r.bundles_skipped),
          static_cast<unsigned long long>(r.expr_evals),
          r.expr_evals_per_decision(), r.cache_hit_rate);
    };
    json_steady += str_format(
        "\n    {\"scenario\": \"%s\", \"clients\": %d, \"rounds\": %d,\n"
        "     \"incremental\": %s,\n"
        "     \"full\": %s,\n"
        "     \"candidate_reduction\": %.1f, \"predictor_reduction\": %.1f}",
        scenario_name(scenario), clients, rounds,
        engine_json(incremental).c_str(), engine_json(full).c_str(),
        candidate_ratio, predictor_ratio);
  }
  std::printf("\nsteady-state >=2x work reduction: %s\n",
              reduction_met ? "yes" : "NO");

  // --- Durability: journaling overhead on the decision path ---------------
  // Same steady-state loop, incremental engine, with the write-ahead
  // journal attached (default policy: one write(2) per epoch, fsync
  // every 32 epochs, snapshot every 64). Acceptance: <10% wall-time
  // regression on the steady-state decision path.
  std::printf("\n=== Durability: journaling overhead on the decision path "
              "===\n");
  std::printf("%-17s %12s %12s %12s\n", "scenario", "plain_ms",
              "journaled_ms", "regression");
  std::string json_journal;
  double plain_total = 0, journaled_total = 0;
  for (Scenario scenario : {Scenario::kQuiet, Scenario::kClientNodeLoad}) {
    // Interleaved best-of-10: multi-tenant machines throttle and steal
    // in bursts lasting several runs, so both variants need many shots
    // at a quiet window. The journal's cost is systematic and survives
    // the min; the noise is not and doesn't.
    double plain_ms = 1e18, journaled_ms = 1e18;
    for (int repeat = 0; repeat < 10; ++repeat) {
      auto plain = run_steady(true, scenario, clients, rounds);
      auto journaled = run_steady(true, scenario, clients, rounds,
                                  /*journaled=*/true);
      ok = ok && plain.ok && journaled.ok;
      plain_ms = std::min(plain_ms, plain.wall_ms);
      journaled_ms = std::min(journaled_ms, journaled.wall_ms);
    }
    const double regression =
        plain_ms > 0 ? 100.0 * (journaled_ms - plain_ms) / plain_ms : 0;
    plain_total += plain_ms;
    journaled_total += journaled_ms;
    std::printf("%-17s %12.3f %12.3f %11.1f%%\n", scenario_name(scenario),
                plain_ms, journaled_ms, regression);
    if (!json_journal.empty()) json_journal += ",";
    json_journal += str_format(
        "\n    {\"scenario\": \"%s\", \"clients\": %d, \"rounds\": %d, "
        "\"plain_ms\": %.3f, \"journaled_ms\": %.3f, "
        "\"regression_percent\": %.2f}",
        scenario_name(scenario), clients, rounds, plain_ms, journaled_ms,
        regression);
  }
  clean_persist_dir();
  const double journal_regression =
      plain_total > 0 ? 100.0 * (journaled_total - plain_total) / plain_total
                      : 0;
  const bool journal_gate_met = journal_regression < 10.0;
  std::printf("aggregate steady-state regression with journaling: %.1f%% "
              "(<10%% required): %s\n",
              journal_regression, journal_gate_met ? "yes" : "NO");

  // --- Telemetry: instrument overhead on the decision path ----------------
  // The same steady-state loop with the process-global telemetry flag on
  // vs off. Recording is a relaxed load plus (when on) relaxed atomic
  // adds into padded cells, so the systematic cost must stay under 2%.
  // Interleaved best-of-10 minima for the same noise reasons as above.
  std::printf("\n=== Telemetry: instrument overhead on the decision path "
              "===\n");
  std::printf("%-17s %12s %12s %12s\n", "scenario", "off_ms", "on_ms",
              "overhead");
  std::string json_telemetry;
  double telemetry_off_total = 0, telemetry_on_total = 0;
  for (Scenario scenario : {Scenario::kQuiet, Scenario::kClientNodeLoad}) {
    double off_ms = 1e18, on_ms = 1e18;
    for (int repeat = 0; repeat < 10; ++repeat) {
      metric::set_telemetry_enabled(false);
      auto off = run_steady(true, scenario, clients, rounds);
      metric::set_telemetry_enabled(true);
      auto on = run_steady(true, scenario, clients, rounds);
      ok = ok && off.ok && on.ok;
      off_ms = std::min(off_ms, off.wall_ms);
      on_ms = std::min(on_ms, on.wall_ms);
    }
    const double overhead =
        off_ms > 0 ? 100.0 * (on_ms - off_ms) / off_ms : 0;
    telemetry_off_total += off_ms;
    telemetry_on_total += on_ms;
    std::printf("%-17s %12.3f %12.3f %11.1f%%\n", scenario_name(scenario),
                off_ms, on_ms, overhead);
    if (!json_telemetry.empty()) json_telemetry += ",";
    json_telemetry += str_format(
        "\n    {\"scenario\": \"%s\", \"clients\": %d, \"rounds\": %d, "
        "\"telemetry_off_ms\": %.3f, \"telemetry_on_ms\": %.3f, "
        "\"overhead_percent\": %.2f}",
        scenario_name(scenario), clients, rounds, off_ms, on_ms, overhead);
  }
  metric::set_telemetry_enabled(true);
  const double telemetry_overhead =
      telemetry_off_total > 0
          ? 100.0 * (telemetry_on_total - telemetry_off_total) /
                telemetry_off_total
          : 0;
  const bool telemetry_gate_met = telemetry_overhead < 2.0;
  std::printf("aggregate decision-path overhead with telemetry on: %.2f%% "
              "(<2%% required): %s\n",
              telemetry_overhead, telemetry_gate_met ? "yes" : "NO");

  // --- Partitioned decision core: multi-tenant scaling --------------------
  // Acceptance: >=4x equivalent decisions/s over the --single-domain
  // reference on >=8 independent app groups, with a bit-equal final
  // configuration fingerprint.
  const uint64_t tenant_instances =
      static_cast<uint64_t>(kTenantGroups) * kTenantAppsPerGroup;
  const uint64_t tenant_decisions =
      static_cast<uint64_t>(kTenantRounds) * tenant_instances;
  std::printf("\n=== Partitioned decision core: multi-tenant scaling ===\n");
  std::printf("scenario: %d hostname-pinned app groups (%d apps each, %d "
              "nodes each), %d load-flip rounds round-robin across groups\n\n",
              kTenantGroups, kTenantAppsPerGroup, kTenantNodesPerGroup,
              kTenantRounds);
  double reference_ms = 1e18, partitioned_ms = 1e18;
  bool identity_match = true;
  for (int repeat = 0; repeat < 5; ++repeat) {
    auto reference = run_partition_mode(/*single_domain=*/true);
    auto partitioned = run_partition_mode(/*single_domain=*/false);
    ok = ok && reference.ok && partitioned.ok;
    identity_match = identity_match && reference.ok && partitioned.ok &&
                     reference.fingerprint == partitioned.fingerprint;
    reference_ms = std::min(reference_ms, reference.wall_ms);
    partitioned_ms = std::min(partitioned_ms, partitioned.wall_ms);
  }
  const double partition_speedup =
      partitioned_ms > 0 ? reference_ms / partitioned_ms : 0;
  const double reference_dps =
      reference_ms > 0 ? tenant_decisions / (reference_ms / 1000.0) : 0;
  const double partitioned_dps =
      partitioned_ms > 0 ? tenant_decisions / (partitioned_ms / 1000.0) : 0;
  const bool partition_gate_met = partition_speedup >= 4.0 && identity_match;
  std::printf("%-17s %12s %12s %12s %10s\n", "mode", "wall_ms",
              "decisions/s", "speedup", "identity");
  std::printf("%-17s %12.3f %12.0f %12s %10s\n", "single_domain",
              reference_ms, reference_dps, "1.0x", "-");
  std::printf("%-17s %12.3f %12.0f %11.1fx %10s\n", "partitioned",
              partitioned_ms, partitioned_dps, partition_speedup,
              identity_match ? "bit-equal" : "DIVERGED");
  std::printf("partitioned >=4x decisions/s with bit-equal decisions: %s\n",
              partition_gate_met ? "yes" : "NO");

  // Telemetry overhead gate re-run with domains enabled: per-domain
  // epoch counters/histograms and the domain.reevaluate span must stay
  // inside the same <2% envelope as the single-controller instruments.
  double domains_off_ms = 1e18, domains_on_ms = 1e18;
  for (int repeat = 0; repeat < 5; ++repeat) {
    metric::set_telemetry_enabled(false);
    auto off = run_partition_mode(/*single_domain=*/false);
    metric::set_telemetry_enabled(true);
    auto on = run_partition_mode(/*single_domain=*/false);
    ok = ok && off.ok && on.ok;
    domains_off_ms = std::min(domains_off_ms, off.wall_ms);
    domains_on_ms = std::min(domains_on_ms, on.wall_ms);
  }
  metric::set_telemetry_enabled(true);
  const double domains_telemetry_overhead =
      domains_off_ms > 0
          ? 100.0 * (domains_on_ms - domains_off_ms) / domains_off_ms
          : 0;
  const bool domains_telemetry_gate_met = domains_telemetry_overhead < 2.0;
  std::printf("telemetry overhead with domains enabled: %.2f%% "
              "(<2%% required): %s\n",
              domains_telemetry_overhead,
              domains_telemetry_gate_met ? "yes" : "NO");

  FILE* out = std::fopen("BENCH_optimizer.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n  \"bench\": \"abl_optimizer\",\n"
                 "  \"greedy_vs_exhaustive\": [%s\n  ],\n"
                 "  \"steady_state\": [%s\n  ],\n"
                 "  \"steady_state_reduction_met\": %s,\n"
                 "  \"journaling\": [%s\n  ],\n"
                 "  \"journaling_regression_percent\": %.2f,\n"
                 "  \"journaling_gate_met\": %s,\n"
                 "  \"telemetry\": [%s\n  ],\n"
                 "  \"telemetry_overhead_percent\": %.2f,\n"
                 "  \"telemetry_gate_met\": %s,\n"
                 "  \"partitioned\": {\n"
                 "    \"groups\": %d, \"nodes_per_group\": %d, "
                 "\"apps_per_group\": %d, \"rounds\": %d,\n"
                 "    \"decisions\": %llu,\n"
                 "    \"single_domain_ms\": %.3f, \"partitioned_ms\": %.3f,\n"
                 "    \"single_domain_decisions_per_sec\": %.1f,\n"
                 "    \"partitioned_decisions_per_sec\": %.1f,\n"
                 "    \"speedup\": %.2f, \"identity_match\": %s,\n"
                 "    \"speedup_gate_met\": %s,\n"
                 "    \"telemetry_off_ms\": %.3f, \"telemetry_on_ms\": %.3f,\n"
                 "    \"telemetry_overhead_percent\": %.2f,\n"
                 "    \"telemetry_gate_met\": %s\n  }\n}\n",
                 json_a1.c_str(), json_steady.c_str(),
                 reduction_met ? "true" : "false", json_journal.c_str(),
                 journal_regression, journal_gate_met ? "true" : "false",
                 json_telemetry.c_str(), telemetry_overhead,
                 telemetry_gate_met ? "true" : "false", kTenantGroups,
                 kTenantNodesPerGroup, kTenantAppsPerGroup, kTenantRounds,
                 static_cast<unsigned long long>(tenant_decisions),
                 reference_ms, partitioned_ms, reference_dps, partitioned_dps,
                 partition_speedup, identity_match ? "true" : "false",
                 partition_gate_met ? "true" : "false", domains_off_ms,
                 domains_on_ms, domains_telemetry_overhead,
                 domains_telemetry_gate_met ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_optimizer.json\n");
  }
  return ok && reduction_met && journal_gate_met && telemetry_gate_met &&
                 partition_gate_met && domains_telemetry_gate_met
             ? 0
             : 1;
}

}  // namespace

int main() { return run(); }
