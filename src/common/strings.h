// String helpers shared across the RSL parser, namespace code, and wire
// protocol. Kept deliberately small; no locale dependence.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace harmony {

// Splits on a single character; empty fields are preserved
// ("a..b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char sep);

// Splits on runs of ASCII whitespace; no empty fields.
std::vector<std::string> split_whitespace(std::string_view text);

std::string_view trim(std::string_view text);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view text, std::string_view prefix);

// printf-style formatting into std::string.
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Parses a complete string as a number; returns false on trailing junk.
bool parse_double(std::string_view text, double* out);
bool parse_int64(std::string_view text, long long* out);

// Formats a double the way TCL does: integral values print without a
// decimal point ("42"), others with shortest round-trip precision.
std::string format_number(double value);

// Glob matching with '*', '?' and '[a-z]' character classes. Used for
// TCL `string match` and for hostname patterns in RSL node requirements
// (e.g. {hostname *}).
bool glob_match(std::string_view pattern, std::string_view text);

// Lowercase hex codec for embedding binary payloads (journal record
// batches, snapshot chunks) in the TCL-list wire messages, whose codec
// is text-oriented.
std::string to_hex(std::string_view bytes);
// Strict decode: even length, hex digits only. Returns false without
// touching *out on malformed input.
bool from_hex(std::string_view hex, std::string* out);

}  // namespace harmony
