// Thread-safe process-wide telemetry: counters, gauges, log-scale
// latency histograms, and an opt-in trace-span ring. This is the
// production-side complement to MetricRegistry (which stores
// simulation-time series and is single-threaded by design): I/O shard
// threads, the persistence sync thread, and client threads all record
// here, and any thread may scrape without coordinating with the
// controller.
//
// Hot-path cost model: recording is one relaxed atomic add into a
// cache-line-padded per-thread cell (counters) or a relaxed add into a
// log2 bucket (histograms). Aggregation across cells happens at scrape
// time only. A process-global enable flag (relaxed load + predictable
// branch) lets benches measure telemetry-on vs telemetry-off; see the
// <2% overhead gates in bench/abl_optimizer and bench/abl_server.
//
// Scrapes are intentionally lock-free with respect to writers: a
// snapshot taken while counters advance is approximate (each value is
// individually atomic, the set is not), which is the standard
// Prometheus contract.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace harmony::metric {

namespace detail {
extern std::atomic<bool> g_telemetry_enabled;
extern std::atomic<uint32_t> g_next_thread_slot;
// Stable small id per thread; picks the counter cell and trace tid.
inline uint32_t thread_slot() {
  thread_local uint32_t slot =
      g_next_thread_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}
}  // namespace detail

inline bool telemetry_enabled() {
  return detail::g_telemetry_enabled.load(std::memory_order_relaxed);
}
void set_telemetry_enabled(bool on);

// Microseconds since process start (steady clock).
uint64_t telemetry_now_us();

// Monotonic counter. Writers add into a per-thread padded cell so
// concurrent shards never contend on one cache line; value() sums the
// cells at scrape time.
class Counter {
 public:
  void add(uint64_t n) {
    if (!telemetry_enabled()) return;
    cells_[detail::thread_slot() % kCells].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void increment() { add(1); }

  uint64_t value() const {
    uint64_t total = 0;
    for (const Cell& c : cells_) total += c.value.load(std::memory_order_relaxed);
    return total;
  }

  void reset() {
    for (Cell& c : cells_) c.value.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kCells = 16;
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  Cell cells_[kCells];
};

// Point-in-time value (connection count, mailbox depth). record_max
// keeps a high-water mark.
class Gauge {
 public:
  void set(int64_t v) {
    if (!telemetry_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(int64_t delta) {
    if (!telemetry_enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void record_max(int64_t v) {
    if (!telemetry_enabled()) return;
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-boundary log-scale histogram for latencies in microseconds.
// Bucket i >= 1 holds values v with bit_width(v) == i, i.e. the
// half-open range [2^(i-1), 2^i); bucket 0 holds zero. The last bucket
// absorbs overflow. Recording is two relaxed adds; no allocation, no
// locks, no floating point.
class Histogram {
 public:
  static constexpr size_t kBuckets = 40;  // covers up to ~2^39 us (~6 days)

  static size_t bucket_index(uint64_t v) {
    if (v == 0) return 0;
    return std::min<size_t>(kBuckets - 1, std::bit_width(v));
  }
  // Inclusive upper bound of bucket i (2^i - 1); last bucket is +Inf.
  static uint64_t bucket_upper_bound(size_t i) {
    return i == 0 ? 0 : (uint64_t{1} << i) - 1;
  }

  void record(uint64_t v) {
    if (!telemetry_enabled()) return;
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t count() const;
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  // Nearest-rank percentile resolved to the bucket's upper bound;
  // q in [0, 1]. Returns 0 when empty.
  uint64_t percentile(double q) const;
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

// One completed span for the Chrome trace_event ("chrome://tracing" /
// Perfetto) dump: a complete event, ph "X".
struct TraceSpan {
  const char* name = "";  // must point at a string literal
  uint64_t ts_us = 0;     // start, microseconds since process start
  uint64_t dur_us = 0;
  uint32_t tid = 0;
};

// Bounded ring of recent spans. Opt-in: recording is a relaxed bool
// load when disabled (the default), so epoch tracing costs nothing in
// steady state. Enable via set_enabled(true) or HARMONY_TRACE=1.
class TraceBuffer {
 public:
  static TraceBuffer& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // `name` must be a string literal (stored by pointer).
  void record(const char* name, uint64_t ts_us, uint64_t dur_us);

  std::vector<TraceSpan> snapshot() const;
  // {"traceEvents":[...]} — loadable by chrome://tracing and Perfetto.
  std::string render_chrome_json() const;
  uint64_t total_recorded() const;
  void clear();

 private:
  static constexpr size_t kCapacity = 16384;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceSpan> ring_;
  size_t next_ = 0;             // ring write cursor once full
  uint64_t total_recorded_ = 0;
};

// RAII span: samples the clock only when tracing is enabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (TraceBuffer::instance().enabled()) {
      name_ = name;
      start_us_ = telemetry_now_us();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      TraceBuffer::instance().record(name_, start_us_,
                                     telemetry_now_us() - start_us_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_us_ = 0;
};

// Process-global instrument registry. Instruments are created on first
// lookup and never destroyed (stable addresses), so hot paths resolve
// their instruments once and keep the pointer.
class Telemetry {
 public:
  static Telemetry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Prometheus text exposition format. Dotted names are mapped to
  // underscores and prefixed "harmony_".
  std::string render_prometheus() const;
  // JSON variant keyed by the dotted names.
  std::string render_json() const;

  // Zeroes every instrument (benches and tests; callers quiesce first).
  void reset();

 private:
  Telemetry();

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Shorthand for one-off lookups; hot paths should cache the reference.
inline Counter& telemetry_counter(const std::string& name) {
  return Telemetry::instance().counter(name);
}
inline Gauge& telemetry_gauge(const std::string& name) {
  return Telemetry::instance().gauge(name);
}
inline Histogram& telemetry_histogram(const std::string& name) {
  return Telemetry::instance().histogram(name);
}

}  // namespace harmony::metric
