#include "rsl/rsl.h"

namespace harmony::rsl {

void RslHost::register_with(Interp& interp) {
  interp.register_command(
      "harmonyBundle",
      [this](Interp&, const std::vector<std::string>& argv)
          -> Result<std::string> {
        if (argv.size() != 4) {
          return Err<std::string>(
              ErrorCode::kEvalError,
              "wrong # args: should be \"harmonyBundle app:inst bundle "
              "{options}\"");
        }
        auto bundle = parse_bundle(argv[1], argv[2], argv[3]);
        if (!bundle.ok()) {
          return Err<std::string>(bundle.error().code, bundle.error().message);
        }
        if (bundle_handler_) {
          auto status = bundle_handler_(bundle.value());
          if (!status.ok()) {
            return Err<std::string>(status.error().code,
                                    status.error().message);
          }
        }
        return bundle.value().application + "." + bundle.value().instance +
               "." + bundle.value().bundle;
      });

  interp.register_command(
      "harmonyNode",
      [this](Interp&, const std::vector<std::string>& argv)
          -> Result<std::string> {
        auto ad = parse_node_ad(argv);
        if (!ad.ok()) {
          return Err<std::string>(ad.error().code, ad.error().message);
        }
        if (node_handler_) {
          auto status = node_handler_(ad.value());
          if (!status.ok()) {
            return Err<std::string>(status.error().code,
                                    status.error().message);
          }
        }
        return ad.value().name;
      });
}

Status RslHost::eval_script(std::string_view script) {
  Interp interp;
  register_with(interp);
  auto result = interp.eval(script);
  if (!result.ok()) return Status(result.error().code, result.error().message);
  return Status::Ok();
}

}  // namespace harmony::rsl
