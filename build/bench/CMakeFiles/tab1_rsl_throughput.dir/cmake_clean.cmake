file(REMOVE_RECURSE
  "CMakeFiles/tab1_rsl_throughput.dir/tab1_rsl_throughput.cc.o"
  "CMakeFiles/tab1_rsl_throughput.dir/tab1_rsl_throughput.cc.o.d"
  "tab1_rsl_throughput"
  "tab1_rsl_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_rsl_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
