file(REMOVE_RECURSE
  "CMakeFiles/harmony_client.dir/capi.cc.o"
  "CMakeFiles/harmony_client.dir/capi.cc.o.d"
  "CMakeFiles/harmony_client.dir/client.cc.o"
  "CMakeFiles/harmony_client.dir/client.cc.o.d"
  "CMakeFiles/harmony_client.dir/transport.cc.o"
  "CMakeFiles/harmony_client.dir/transport.cc.o.d"
  "libharmony_client.a"
  "libharmony_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
