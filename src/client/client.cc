#include "client/client.h"

#include "common/logging.h"
#include "common/strings.h"
#include "rsl/value.h"

namespace harmony::client {

HarmonyClient::HarmonyClient(Transport* transport) : transport_(transport) {
  HARMONY_ASSERT(transport != nullptr);
}

HarmonyClient::~HarmonyClient() {
  if (registered_ && !ended_) {
    auto status = end();
    if (!status.ok()) {
      HLOG_WARN("client") << "harmony_end on destruction failed: "
                          << status.to_string();
    }
  }
}

Status HarmonyClient::startup(const std::string& unique_id,
                              bool use_interrupts) {
  if (!unique_id_.empty()) {
    return Status(ErrorCode::kAlreadyExists, "startup already called");
  }
  if (unique_id.empty()) {
    return Status(ErrorCode::kInvalidArgument, "unique id must not be empty");
  }
  use_interrupts_ = use_interrupts;
  unique_id_ = unique_id;
  return Status::Ok();
}

Status HarmonyClient::bundle_setup(const std::string& bundle_definition) {
  if (unique_id_.empty()) {
    return Status(ErrorCode::kInvalidArgument, "call startup first");
  }
  if (registered_) {
    return Status(ErrorCode::kClosed, "bundles already committed");
  }
  bundle_scripts_.push_back(bundle_definition);
  return Status::Ok();
}

const std::string* HarmonyClient::add_variable(const std::string& name,
                                               std::string default_value) {
  auto& slot = variables_[name];
  if (slot == nullptr) {
    slot = std::make_unique<std::string>(std::move(default_value));
  } else {
    *slot = std::move(default_value);
  }
  return slot.get();
}

Status HarmonyClient::commit() {
  if (registered_) return Status::Ok();
  if (bundle_scripts_.empty()) {
    return Status(ErrorCode::kInvalidArgument, "no bundles to register");
  }
  std::string script;
  for (const auto& bundle : bundle_scripts_) {
    script += bundle;
    script += "\n";
  }
  auto id = transport_->register_app(script);
  if (!id.ok()) return Status(id.error().code, id.error().message);
  instance_id_ = id.value();
  registered_ = true;
  auto subscribed = transport_->subscribe(
      instance_id_, [this](const std::string& name, const std::string& value) {
        if (use_interrupts_) {
          // Interrupt mode: apply immediately and fire the handler.
          apply_update(name, value);
          if (interrupt_handler_) interrupt_handler_(name, value);
        } else {
          pending_.emplace_back(name, value);
        }
      });
  if (!subscribed.ok()) return subscribed;
  return Status::Ok();
}

void HarmonyClient::apply_update(const std::string& name,
                                 const std::string& value) {
  auto it = variables_.find(name);
  if (it == variables_.end()) {
    // Undeclared variables are still tracked so late add_variable calls
    // see the latest value.
    variables_[name] = std::make_unique<std::string>(value);
  } else {
    *it->second = value;
  }
}

bool HarmonyClient::poll_updates() {
  bool changed = false;
  for (auto& [name, value] : pending_) {
    auto it = variables_.find(name);
    if (it == variables_.end() || *it->second != value) changed = true;
    apply_update(name, value);
  }
  pending_.clear();
  return changed;
}

Status HarmonyClient::wait_for_update() {
  auto committed = commit();
  if (!committed.ok()) return committed;
  poll_updates();
  return Status::Ok();
}

Status HarmonyClient::end() {
  if (!registered_) return Status(ErrorCode::kClosed, "not registered");
  if (ended_) return Status(ErrorCode::kClosed, "already ended");
  ended_ = true;
  // Crash-safe teardown: the DEPART is best-effort. If the server is
  // already gone (or goes away mid-call) it synthesizes the departure
  // from the hangup itself, so an unreachable peer is not a client
  // error — report success and let the destructor stay quiet.
  Status status = transport_->unregister(instance_id_);
  if (!status.ok()) {
    const ErrorCode code = status.error().code;
    if (code == ErrorCode::kTransport || code == ErrorCode::kClosed ||
        code == ErrorCode::kIo) {
      HLOG_DEBUG("client") << "harmony_end: server unreachable ("
                           << status.to_string()
                           << "); departure left to the server";
      return Status::Ok();
    }
  }
  return status;
}

std::string HarmonyClient::var(const std::string& name) const {
  auto it = variables_.find(name);
  return it == variables_.end() ? std::string() : *it->second;
}

double HarmonyClient::var_number(const std::string& name,
                                 double fallback) const {
  double out = 0;
  if (parse_double(var(name), &out)) return out;
  return fallback;
}

std::vector<std::string> HarmonyClient::var_list(const std::string& name) const {
  auto parsed = rsl::list_parse(var(name));
  return parsed.ok() ? parsed.value() : std::vector<std::string>{};
}

Result<std::string> HarmonyClient::fetch(const std::string& name) {
  if (!registered_) {
    return Err<std::string>(ErrorCode::kClosed, "not registered");
  }
  return transport_->get_variable(instance_id_, name);
}

}  // namespace harmony::client
