# Empty compiler generated dependencies file for abl_friction.
# This may be replaced when dependencies are built.
