// TCL-subset interpreter. Executes scripts parsed by parser.h with
// variable frames, user-defined procs, and a pluggable command table.
// This is the execution substrate for the Harmony RSL: bundle
// specifications, performance-model scripts, and controller policy
// snippets all run here.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "rsl/parser.h"

namespace harmony::rsl {

class Interp {
 public:
  using CommandFn =
      std::function<Result<std::string>(Interp&, const std::vector<std::string>&)>;

  Interp();

  // --- script evaluation ------------------------------------------------
  Result<std::string> eval(std::string_view script);
  // Invokes a command directly with already-substituted arguments
  // (argv[0] is the command name).
  Result<std::string> eval_argv(const std::vector<std::string>& argv);

  // --- command table ------------------------------------------------------
  void register_command(const std::string& name, CommandFn fn);
  bool has_command(const std::string& name) const;
  std::vector<std::string> command_names() const;

  // --- variables ----------------------------------------------------------
  void set_var(const std::string& name, std::string value);
  void set_global(const std::string& name, std::string value);
  Result<std::string> get_var(const std::string& name) const;
  bool has_var(const std::string& name) const;
  void unset_var(const std::string& name);

  // Resolver consulted by `expr` for bare dotted identifiers (e.g.
  // "client.memory") that are not interpreter variables. The controller
  // installs a namespace-backed resolver here.
  using NameResolver = std::function<bool(const std::string&, double*)>;
  void set_name_resolver(NameResolver resolver) {
    name_resolver_ = std::move(resolver);
  }
  const NameResolver& name_resolver() const { return name_resolver_; }

  // --- control flow (used by builtins) -------------------------------------
  enum class Flow { kNormal, kReturn, kBreak, kContinue };
  Flow flow() const { return flow_; }
  void set_flow(Flow flow) { flow_ = flow; }

  // --- captured `puts` output ----------------------------------------------
  const std::string& output() const { return output_; }
  void clear_output() { output_.clear(); }
  void append_output(std::string_view text) { output_.append(text); }

  // --- proc support ---------------------------------------------------------
  struct Proc {
    std::vector<std::pair<std::string, std::string>> params;  // name, default
    bool has_varargs = false;  // trailing "args" parameter
    std::string body;
  };
  Status define_proc(const std::string& name, Proc proc);
  const Proc* find_proc(const std::string& name) const;

  void push_frame();
  void pop_frame();
  size_t frame_depth() const { return frames_.size(); }

  // Recursion guard: scripts from applications are untrusted; a runaway
  // recursion should be an error, not a stack overflow.
  static constexpr size_t kMaxFrameDepth = 256;

 private:
  Result<std::string> exec_command(const ParsedCommand& cmd);
  Result<std::string> substitute_word(const Word& word);

  using Frame = std::unordered_map<std::string, std::string>;
  std::vector<Frame> frames_;  // frames_[0] is the global frame
  std::unordered_map<std::string, CommandFn> commands_;
  std::unordered_map<std::string, Proc> procs_;
  NameResolver name_resolver_;
  Flow flow_ = Flow::kNormal;
  std::string output_;
};

// Registers the builtin command set (set, expr, if, while, foreach, proc,
// list operations, string operations, ...). Called by the constructor.
void register_builtins(Interp& interp);

}  // namespace harmony::rsl
